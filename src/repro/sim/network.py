"""Mutable network state: VC buffers, credits, routing tables, sources.

The state model follows the paper's Fig. 1 router:

* every link that ends at a router (injection links and router-to-router
  links) terminates in a per-VC FIFO input buffer of depth ``buf(Ξ)``;
  since every flow owns a distinct priority — hence a distinct VC — buffers
  are keyed ``(link_id, flow_index)``;
* the sender on a link holds a **credit counter** per VC, initialised to
  the downstream buffer depth: it is decremented when a flit is sent
  (reserving the slot) and incremented, after ``credit_delay`` cycles,
  when a flit leaves the downstream buffer;
* ejection links end at a node's sink, which consumes flits at link rate
  (no credit, no buffer);
* routing is static per flow (deterministic XY), so the per-router routing
  decision is a precomputed "next link" lookup; the header still pays
  ``routl`` cycles at every router before becoming eligible, which is how
  Equation 1's ``routl·(|route|−1)`` term arises in simulation.
"""

from __future__ import annotations

from collections import deque

from repro.flows.flowset import FlowSet
from repro.noc.topology import LinkKind
from repro.sim.packet import Flit, Packet


class NetworkState:
    """All mutable wormhole state for one simulation run."""

    def __init__(self, flowset: FlowSet, *, credit_delay: int = 1):
        if credit_delay < 0:
            raise ValueError(f"credit_delay must be >= 0, got {credit_delay}")
        self.flowset = flowset
        self.platform = flowset.platform
        self.credit_delay = credit_delay
        topology = self.platform.topology

        flows = flowset.flows
        self.num_flows = len(flows)
        self.priority_of = [f.priority for f in flows]
        #: per flow: next link after sitting at the downstream buffer of a
        #: given link; the first route link is reached from key ``None``.
        self.next_link: list[dict[int | None, int | None]] = []
        self.routes: list[tuple[int, ...]] = []
        for flow in flows:
            route = flowset.route(flow.name)
            table: dict[int | None, int | None] = {}
            if route:
                table[None] = route[0]
                for here, nxt in zip(route, route[1:]):
                    table[here] = nxt
                table[route[-1]] = None  # delivered after the ejection link
            self.next_link.append(table)
            self.routes.append(route)

        #: is the link's downstream end a router input buffer?
        self.buffered_link = [
            topology.link(link.id).kind is not LinkKind.EJECTION
            for link in topology.links
        ]
        #: (link_id, flow) -> FIFO of [flit, ready_time]; created lazily.
        self.buffers: dict[tuple[int, int], deque] = {}
        #: (link_id, flow) -> remaining credit toward the downstream buffer.
        self.credits: dict[tuple[int, int], int] = {}
        #: per-flow source queue of released packets, FIFO.
        self.source_queue: list[deque[Packet]] = [deque() for _ in flows]
        #: flits of the head source packet already injected.
        self.injected_of_head: list[int] = [0] * self.num_flows
        #: flits currently inside the network (buffers + in flight).
        self.flits_in_network = 0

    # -- credits --------------------------------------------------------------

    def capacity(self, link_id: int) -> int:
        """Depth of the VC buffers at the downstream end of ``link_id``."""
        return self.platform.buf_of_link(link_id)

    def credit(self, link_id: int, flow: int) -> int:
        """Remaining credit for sending flow ``flow`` onto ``link_id``."""
        key = (link_id, flow)
        found = self.credits.get(key)
        if found is None:
            found = self.capacity(link_id)
            self.credits[key] = found
        return found

    def take_credit(self, link_id: int, flow: int) -> None:
        """Reserve one downstream buffer slot (a flit is being sent)."""
        remaining = self.credit(link_id, flow)
        if remaining <= 0:
            raise AssertionError(
                f"sent on link {link_id} for flow {flow} without credit"
            )
        self.credits[(link_id, flow)] = remaining - 1

    def return_credit(self, link_id: int, flow: int) -> None:
        """Free one downstream slot (a flit left the downstream buffer)."""
        key = (link_id, flow)
        capacity = self.capacity(link_id)
        self.credits[key] = self.credits.get(key, capacity) + 1
        if self.credits[key] > capacity:
            raise AssertionError(
                f"credit overflow on link {link_id} flow {flow}: "
                f"{self.credits[key]} > buf={capacity}"
            )

    # -- buffers --------------------------------------------------------------

    def buffer(self, link_id: int, flow: int) -> deque:
        """The FIFO at the downstream end of ``link_id`` for one VC."""
        key = (link_id, flow)
        found = self.buffers.get(key)
        if found is None:
            found = deque()
            self.buffers[key] = found
        return found

    def enqueue_flit(
        self, link_id: int, flow: int, flit: Flit, ready_time: int
    ) -> None:
        """Flit arrives into the downstream buffer of ``link_id``."""
        dq = self.buffer(link_id, flow)
        if len(dq) >= self.capacity(link_id):
            raise AssertionError(
                f"buffer overflow on link {link_id} flow {flow}; "
                "credit flow control should prevent this"
            )
        dq.append((flit, ready_time))

    # -- sources --------------------------------------------------------------

    def release(self, packet: Packet) -> None:
        """A packet becomes ready at its source node."""
        self.source_queue[packet.flow_index].append(packet)

    def source_head_flit(self, flow: int) -> Flit | None:
        """Next flit awaiting injection for ``flow`` (None when idle)."""
        queue = self.source_queue[flow]
        if not queue:
            return None
        return Flit(queue[0], self.injected_of_head[flow])

    def pop_source_flit(self, flow: int) -> Flit:
        """Consume the next source flit, advancing the packet queue."""
        queue = self.source_queue[flow]
        packet = queue[0]
        flit = Flit(packet, self.injected_of_head[flow])
        self.injected_of_head[flow] += 1
        if self.injected_of_head[flow] == packet.length:
            queue.popleft()
            self.injected_of_head[flow] = 0
        return flit

    # -- invariants -------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """No flits buffered, in flight, or awaiting injection."""
        return (
            self.flits_in_network == 0
            and all(not q for q in self.source_queue)
            and all(not dq for dq in self.buffers.values())
        )

    def check_buffer_occupancy(self) -> None:
        """Debug invariant: occupancy + credit == buf for every VC buffer.

        Only exact between credit-return events; tests call this on a
        drained network where it must hold everywhere.
        """
        for (link_id, flow), dq in self.buffers.items():
            capacity = self.capacity(link_id)
            credit = self.credits.get((link_id, flow), capacity)
            if len(dq) + credit != capacity:
                raise AssertionError(
                    f"occupancy {len(dq)} + credit {credit} != buf "
                    f"{capacity} on link {link_id} flow {flow}"
                )
