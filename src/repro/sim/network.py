"""Mutable network state: VC buffers, credits, routing tables, sources.

The state model follows the paper's Fig. 1 router:

* every link that ends at a router (injection links and router-to-router
  links) terminates in a per-VC FIFO input buffer of depth ``buf(Ξ)``;
  since every flow owns a distinct priority — hence a distinct VC — buffers
  are keyed ``(link_id, flow_index)``;
* the sender on a link holds a **credit counter** per VC, initialised to
  the downstream buffer depth: it is decremented when a flit is sent
  (reserving the slot) and incremented, after ``credit_delay`` cycles,
  when a flit leaves the downstream buffer;
* ejection links end at a node's sink, which consumes flits at link rate
  (no credit, no buffer);
* routing is static per flow (deterministic XY), so the per-router routing
  decision is a precomputed "next link" lookup; the header still pays
  ``routl`` cycles at every router before becoming eligible, which is how
  Equation 1's ``routl·(|route|−1)`` term arises in simulation.

Hot-path layout (see DESIGN.md, "Simulation performance"): every
``(link, flow)`` pair maps to the flat **slot** ``link * num_flows +
flow``, and all per-VC quantities live in flat lists indexed by slot —
``credits`` (integer credit counters), ``buffers`` (a deque per slot on
some flow's route, ``None`` elsewhere) and ``next_of`` (id of the link a
flit leaving this buffer is forwarded on).  The slot-indexed tables are
immutable per ``(flowset, platform)`` pair and cached on the flow set, so
repeated runs — the offset search fires thousands — only pay a
``list.copy`` of the credit template plus fresh deques.  ``occupied``
(non-empty buffer slots) and ``source_active`` (flows with queued
packets) are maintained incrementally by the simulator so arbitration
never rescans empty state.  The name-keyed, pair-keyed accessors of the
original implementation survive as thin wrappers over the arrays; the
simulator's inner loop bypasses them entirely.
"""

from __future__ import annotations

import weakref
from collections import deque

from repro.flows.flowset import FlowSet
from repro.noc.topology import LinkKind
from repro.sim.packet import Flit, Packet


class SimTables:
    """Immutable slot-indexed tables shared by every run of one flow set.

    Everything here depends only on the flow set and its platform — never
    on releases or elapsed time — which is what makes the cache safe.
    """

    __slots__ = (
        "num_flows", "num_links", "priority_of", "is_local", "flow_names",
        "first_link", "next_of", "route_slots", "capacity", "buffered",
        "ejection", "credit_template", "routes", "cext",
    )

    def __init__(self, flowset: FlowSet):
        platform = flowset.platform
        topology = platform.topology
        flows = flowset.flows
        nf = self.num_flows = len(flows)
        nl = self.num_links = topology.num_links
        self.priority_of = [f.priority for f in flows]
        self.is_local = [f.is_local for f in flows]
        self.flow_names = [f.name for f in flows]
        self.buffered = [
            link.kind is not LinkKind.EJECTION for link in topology.links
        ]
        self.ejection = [not b for b in self.buffered]
        self.capacity = [platform.buf_of_link(link) for link in range(nl)]

        #: first route link per flow (-1 for local flows).
        self.first_link = [-1] * nf
        #: slot -> link the buffered flit is forwarded on (-1 off-route).
        self.next_of = [-1] * (nl * nf)
        #: slots that own a FIFO: every buffered route link of every flow.
        self.route_slots: list[int] = []
        self.routes: list[tuple[int, ...]] = []
        for index, flow in enumerate(flows):
            route = flowset.route(flow.name)
            self.routes.append(route)
            if not route:
                continue
            self.first_link[index] = route[0]
            for here, nxt in zip(route, route[1:]):
                slot = here * nf + index
                self.next_of[slot] = nxt
                self.route_slots.append(slot)

        #: per-slot initial credit = downstream buffer depth of the link.
        template = [0] * (nl * nf)
        for link in range(nl):
            base = link * nf
            depth = self.capacity[link]
            for flow in range(nf):
                template[base + flow] = depth
        self.credit_template = template
        #: lazily built flat-array mirror for the compiled backend
        #: (:meth:`repro.core.backend.CextBackend._sim_static`).
        self.cext = None


#: Per-flow-set table cache, keyed by instance identity so entries die
#: with their flow set and never leak into pickles (parallel searches
#: ship the bare flow set; each worker rebuilds its tables once).
_TABLE_CACHE: "weakref.WeakKeyDictionary[FlowSet, tuple]" = (
    weakref.WeakKeyDictionary()
)


def tables_for(flowset: FlowSet) -> SimTables:
    """The flow set's slot tables, built once per (flowset, platform).

    ``FlowSet.on_platform`` returns a distinct instance (cache miss), and
    the platform identity guard catches any in-place platform swap.
    """
    cached = _TABLE_CACHE.get(flowset)
    if cached is not None and cached[0] is flowset.platform:
        return cached[1]
    tables = SimTables(flowset)
    _TABLE_CACHE[flowset] = (flowset.platform, tables)
    return tables


class NetworkState:
    """All mutable wormhole state for one simulation run."""

    def __init__(self, flowset: FlowSet, *, credit_delay: int = 1):
        if credit_delay < 0:
            raise ValueError(f"credit_delay must be >= 0, got {credit_delay}")
        self.flowset = flowset
        self.platform = flowset.platform
        self.credit_delay = credit_delay
        tables = self.tables = tables_for(flowset)

        self.num_flows = tables.num_flows
        self.num_links = tables.num_links
        self.priority_of = tables.priority_of
        self.routes = tables.routes
        self.buffered_link = tables.buffered

        #: slot-indexed credit counters toward each downstream buffer.
        self.credits: list[int] = tables.credit_template.copy()
        #: slot-indexed FIFOs of ``(ready_time, flit_index, packet)``;
        #: only slots on some flow's route own a deque.
        self.buffers: list[deque | None] = [None] * (
            tables.num_links * tables.num_flows
        )
        for slot in tables.route_slots:
            self.buffers[slot] = deque()
        #: slots whose FIFO is currently non-empty.
        self.occupied: set[int] = set()
        #: per-flow source queue of released packets, FIFO.
        self.source_queue: list[deque[Packet]] = [
            deque() for _ in range(tables.num_flows)
        ]
        #: flows with at least one queued source packet.
        self.source_active: set[int] = set()
        #: flits of the head source packet already injected.
        self.injected_of_head: list[int] = [0] * tables.num_flows
        #: flits currently inside the network (buffers + in flight).
        self.flits_in_network = 0
        #: FIFO creation order, assigned on first enqueue per slot.  Only
        #: consulted when ``credit_delay == 0``, where instant credit
        #: returns make the arbitration *visit order* observable and the
        #: contract is to match the reference's dict-creation order.
        self.slot_seq: dict[int, int] = {}

    # -- compatibility accessors (tests, tools; not the simulator loop) ----

    @property
    def next_link(self) -> list[dict[int | None, int | None]]:
        """Name-free next-link tables in the original dict shape."""
        out: list[dict[int | None, int | None]] = []
        for route in self.routes:
            table: dict[int | None, int | None] = {}
            if route:
                table[None] = route[0]
                for here, nxt in zip(route, route[1:]):
                    table[here] = nxt
                table[route[-1]] = None
            out.append(table)
        return out

    # -- credits --------------------------------------------------------------

    def capacity(self, link_id: int) -> int:
        """Depth of the VC buffers at the downstream end of ``link_id``."""
        return self.tables.capacity[link_id]

    def credit(self, link_id: int, flow: int) -> int:
        """Remaining credit for sending flow ``flow`` onto ``link_id``."""
        return self.credits[link_id * self.num_flows + flow]

    def take_credit(self, link_id: int, flow: int) -> None:
        """Reserve one downstream buffer slot (a flit is being sent)."""
        slot = link_id * self.num_flows + flow
        if self.credits[slot] <= 0:
            raise AssertionError(
                f"sent on link {link_id} for flow {flow} without credit"
            )
        self.credits[slot] -= 1

    def return_credit(self, link_id: int, flow: int) -> None:
        """Free one downstream slot (a flit left the downstream buffer)."""
        slot = link_id * self.num_flows + flow
        self.credits[slot] += 1
        if self.credits[slot] > self.tables.capacity[link_id]:
            raise AssertionError(
                f"credit overflow on link {link_id} flow {flow}: "
                f"{self.credits[slot]} > buf={self.tables.capacity[link_id]}"
            )

    # -- buffers --------------------------------------------------------------

    def buffer(self, link_id: int, flow: int) -> deque:
        """The FIFO at the downstream end of ``link_id`` for one VC."""
        slot = link_id * self.num_flows + flow
        found = self.buffers[slot]
        if found is None:
            found = deque()
            self.buffers[slot] = found
        return found

    def enqueue_flit(
        self, link_id: int, flow: int, flit: Flit, ready_time: int
    ) -> None:
        """Flit arrives into the downstream buffer of ``link_id``."""
        dq = self.buffer(link_id, flow)
        if len(dq) >= self.tables.capacity[link_id]:
            raise AssertionError(
                f"buffer overflow on link {link_id} flow {flow}; "
                "credit flow control should prevent this"
            )
        dq.append((ready_time, flit.index, flit.packet))
        self.occupied.add(link_id * self.num_flows + flow)

    # -- sources --------------------------------------------------------------

    def release(self, packet: Packet) -> None:
        """A packet becomes ready at its source node."""
        self.source_queue[packet.flow_index].append(packet)
        self.source_active.add(packet.flow_index)

    def source_head_flit(self, flow: int) -> Flit | None:
        """Next flit awaiting injection for ``flow`` (None when idle)."""
        queue = self.source_queue[flow]
        if not queue:
            return None
        return Flit(queue[0], self.injected_of_head[flow])

    def pop_source_flit(self, flow: int) -> Flit:
        """Consume the next source flit, advancing the packet queue."""
        queue = self.source_queue[flow]
        packet = queue[0]
        flit = Flit(packet, self.injected_of_head[flow])
        self.injected_of_head[flow] += 1
        if self.injected_of_head[flow] == packet.length:
            queue.popleft()
            self.injected_of_head[flow] = 0
            if not queue:
                self.source_active.discard(flow)
        return flit

    # -- invariants -------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """No flits buffered, in flight, or awaiting injection."""
        return (
            self.flits_in_network == 0
            and not self.source_active
            and not self.occupied
        )

    def check_buffer_occupancy(self) -> None:
        """Debug invariant: occupancy + credit == buf for every VC buffer.

        Only exact between credit-return events; tests call this on a
        drained network where it must hold everywhere.
        """
        nf = self.num_flows
        for slot, dq in enumerate(self.buffers):
            if dq is None:
                continue
            link_id, flow = divmod(slot, nf)
            capacity = self.tables.capacity[link_id]
            credit = self.credits[slot]
            if len(dq) + credit != capacity:
                raise AssertionError(
                    f"occupancy {len(dq)} + credit {credit} != buf "
                    f"{capacity} on link {link_id} flow {flow}"
                )
