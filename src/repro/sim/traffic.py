"""Packet release plans for the simulator.

A :class:`ReleasePlan` turns a flow set into concrete packet release times.
:class:`PeriodicReleases` covers the model of the paper: each flow τi
releases packet *n* at ``offset_i + n·T_i + jitter_i(n)`` with
``0 ≤ jitter_i(n) ≤ J_i``.  Release offsets are the lever the worst-case
search (:mod:`repro.sim.worstcase`) moves to expose multi-point
progressive blocking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.flows.flowset import FlowSet
from repro.sim.packet import Packet


class ReleasePlan:
    """Interface: enumerate each flow's packet releases up to a horizon."""

    def releases(
        self, flowset: FlowSet, flow_index: int, horizon: int
    ) -> Iterator[Packet]:
        """Yield the flow's packets with release times below ``horizon``."""
        raise NotImplementedError


@dataclass(frozen=True)
class PeriodicReleases(ReleasePlan):
    """Strictly periodic releases with per-flow offsets and optional jitter.

    ``offsets`` maps flow names to their first release time (default 0).
    ``jitter_of`` (name, n) -> delay of the n-th packet, clamped to
    ``[0, J_i]``; the default releases exactly on the periodic tick.
    """

    offsets: Mapping[str, int] = field(default_factory=dict)
    jitter_of: Callable[[str, int], int] | None = None

    def releases(
        self, flowset: FlowSet, flow_index: int, horizon: int
    ) -> Iterator[Packet]:
        """Periodic releases from the flow's offset, jitter applied."""
        flow = flowset.flows[flow_index]
        offset = self.offsets.get(flow.name, 0)
        if offset < 0:
            raise ValueError(f"{flow.name}: negative release offset {offset}")
        seq = 0
        while True:
            release = offset + seq * flow.period
            if self.jitter_of is not None:
                jitter = self.jitter_of(flow.name, seq)
                if not 0 <= jitter <= flow.jitter:
                    raise ValueError(
                        f"{flow.name}: jitter {jitter} outside [0, {flow.jitter}]"
                    )
                release += jitter
            if release >= horizon:
                return
            yield Packet(
                flow_index=flow_index,
                seq=seq,
                release_time=release,
                length=flow.length,
            )
            seq += 1


@dataclass(frozen=True)
class single_shot(ReleasePlan):
    """Exactly one packet per listed flow (zero-load and unit tests).

    ``at`` maps flow names to their single release time; flows absent from
    the mapping release nothing.
    """

    at: Mapping[str, int] = field(default_factory=dict)

    def releases(
        self, flowset: FlowSet, flow_index: int, horizon: int
    ) -> Iterator[Packet]:
        """At most one release, at the flow's listed time."""
        flow = flowset.flows[flow_index]
        if flow.name not in self.at:
            return
        release = self.at[flow.name]
        if release < 0:
            raise ValueError(f"{flow.name}: negative release time {release}")
        if release < horizon:
            yield Packet(
                flow_index=flow_index,
                seq=0,
                release_time=release,
                length=flow.length,
            )
