"""Cycle-accurate simulator for priority-preemptive wormhole NoCs.

Implements the router architecture of the paper's Fig. 1: per-priority
virtual channels with FIFO input buffers of depth ``buf(Ξ)``, credit-based
flow control, flit-level priority preemption on every output link, and the
``linkl``/``routl`` latencies of the platform model.

The simulator serves two purposes in the reproduction:

* regenerate the **simulation columns of Table II** (worst observed
  latencies under a release-offset search, :mod:`repro.sim.worstcase`);
* act as the ground truth against which the analyses are validated —
  observed latencies must never exceed the safe bounds (XLWX, IBN), and do
  exceed the optimistic ones (SB) in MPB scenarios.

The main entry point is :class:`~repro.sim.simulator.WormholeSimulator`.
The implementation is the fast-lane rework described in DESIGN.md's
"Simulation performance" section — flat array state, monotone event
deques, a parallel pruned offset search — and is kept cycle-identical
to the frozen pre-optimisation oracle in :mod:`repro.sim._reference`.
"""

from repro.sim.traffic import PeriodicReleases, ReleasePlan, single_shot
from repro.sim.observer import LatencyObserver, PacketRecord
from repro.sim.simulator import SimulationResult, WormholeSimulator
from repro.sim.trace import FlitTracer, SendEvent, link_timeline, packet_journey
from repro.sim.worstcase import SearchResult, offset_search, simulate_offsets

__all__ = [
    "SearchResult",
    "PeriodicReleases",
    "ReleasePlan",
    "single_shot",
    "LatencyObserver",
    "PacketRecord",
    "SimulationResult",
    "WormholeSimulator",
    "FlitTracer",
    "SendEvent",
    "link_timeline",
    "packet_journey",
    "offset_search",
    "simulate_offsets",
]
