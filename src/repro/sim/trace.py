"""Flit-level tracing: see wormhole contention — and MPB — happen.

A :class:`FlitTracer` records every link traversal of a simulation run.
From that single event stream the module reconstructs:

* **link timelines** — which flow's flit crossed each link at each cycle
  (the textual equivalent of a waveform viewer), and
* **per-VC buffer occupancy over time** — the paper's Fig. 2 "stacked
  dots": watching τj's flits pile up inside the contention domain while a
  downstream interferer blocks it is exactly the buffered-interference
  phenomenon Equation 6 bounds.

Tracing is opt-in (pass ``tracer=`` to
:class:`~repro.sim.simulator.WormholeSimulator`) and adds one list append
per flit-send when enabled, nothing when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flows.flowset import FlowSet
from repro.sim.packet import Flit


@dataclass(frozen=True)
class SendEvent:
    """One flit crossing one link.

    ``from_buffer`` is the link id whose downstream buffer the flit left
    (``None`` when it was injected straight from the source node).
    """

    time: int
    link: int
    flow_index: int
    packet_seq: int
    flit_index: int
    from_buffer: int | None


@dataclass
class FlitTracer:
    """Collects :class:`SendEvent` records during a simulation run."""

    events: list[SendEvent] = field(default_factory=list)

    def on_send(
        self,
        time: int,
        link: int,
        flow_index: int,
        flit: Flit,
        from_buffer: int | None,
    ) -> None:
        """Simulator hook: one flit was sent on ``link`` at ``time``."""
        self.events.append(
            SendEvent(
                time=time,
                link=link,
                flow_index=flow_index,
                packet_seq=flit.packet.seq,
                flit_index=flit.index,
                from_buffer=from_buffer,
            )
        )

    # -- derived views -------------------------------------------------------

    def sends_on(self, link: int) -> list[SendEvent]:
        """All traversals of one link, in time order."""
        return sorted(
            (e for e in self.events if e.link == link), key=lambda e: e.time
        )

    def occupancy_series(
        self, flowset: FlowSet, link: int, flow_name: str
    ) -> list[tuple[int, int]]:
        """(time, occupancy) steps of one VC buffer (downstream of ``link``).

        Occupancy rises when a flit *arrives* into the buffer (one link
        latency after it was sent on ``link``) and falls when it is sent
        onward (leaves ``from_buffer == link``).  The series contains one
        entry per change, in time order.
        """
        flow_index = [f.name for f in flowset.flows].index(flow_name)
        linkl = flowset.platform.linkl
        deltas: dict[int, int] = {}
        for event in self.events:
            if event.flow_index != flow_index:
                continue
            if event.link == link:
                arrival = event.time + linkl
                deltas[arrival] = deltas.get(arrival, 0) + 1
            if event.from_buffer == link:
                deltas[event.time] = deltas.get(event.time, 0) - 1
        series: list[tuple[int, int]] = []
        occupancy = 0
        for time in sorted(deltas):
            occupancy += deltas[time]
            series.append((time, occupancy))
        return series

    def max_occupancy(
        self, flowset: FlowSet, link: int, flow_name: str
    ) -> int:
        """Peak occupancy of one VC buffer over the traced run."""
        series = self.occupancy_series(flowset, link, flow_name)
        return max((occ for _, occ in series), default=0)


def packet_journey(
    tracer: FlitTracer,
    flowset: FlowSet,
    flow_name: str,
    packet_seq: int = 0,
) -> str:
    """Per-hop trajectory of one packet: when each flit crossed each link.

    One row per route link showing the send times of the packet's header
    and tail (plus the flit count), which makes stalls visible as gaps
    between consecutive rows growing beyond the link latency.
    """
    names = [f.name for f in flowset.flows]
    flow_index = names.index(flow_name)
    route = flowset.route(flow_name)
    topology = flowset.platform.topology
    lines = [f"journey of {flow_name} packet #{packet_seq}:"]
    previous_header = None
    for link in route:
        sends = [
            e for e in tracer.events
            if e.link == link
            and e.flow_index == flow_index
            and e.packet_seq == packet_seq
        ]
        if not sends:
            lines.append(f"  {str(topology.link(link)):<12} (not traversed)")
            continue
        header = min(e.time for e in sends)
        tail = max(e.time for e in sends)
        stall = ""
        if previous_header is not None:
            gap = header - previous_header
            if gap > flowset.platform.linkl + flowset.platform.routl:
                stall = f"  <- stalled {gap - flowset.platform.linkl} cycles"
        lines.append(
            f"  {str(topology.link(link)):<12} header @ {header:>6}, "
            f"tail @ {tail:>6} ({len(sends)} flits){stall}"
        )
        previous_header = header
    return "\n".join(lines)


def link_timeline(
    tracer: FlitTracer,
    flowset: FlowSet,
    links: list[int],
    start: int,
    end: int,
    *,
    markers: dict[str, str] | None = None,
) -> str:
    """ASCII timeline: one row per link, one column per cycle.

    Each cell shows the marker of the flow whose flit crossed that link in
    that cycle (``·`` when idle).  Markers default to the first character
    of each flow name; override with ``markers={flow_name: char}``.
    """
    if end <= start:
        raise ValueError(f"empty window [{start}, {end})")
    names = [f.name for f in flowset.flows]
    marks = {name: (markers or {}).get(name, name[0]) for name in names}
    topology = flowset.platform.topology
    width = end - start
    lines = [f"cycles {start}..{end - 1}, one column per cycle:"]
    for link in links:
        row = ["·"] * width
        for event in tracer.events:
            if event.link == link and start <= event.time < end:
                row[event.time - start] = marks[names[event.flow_index]]
        label = str(topology.link(link)).ljust(12)
        lines.append(f"{label} |{''.join(row)}|")
    legend = "  ".join(f"{marks[n]}={n}" for n in names)
    lines.append(f"legend: {legend}  ·=idle")
    return "\n".join(lines)
