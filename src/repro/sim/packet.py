"""Packets and flits as the simulator tracks them.

A packet is a contiguous sequence of flits: one header (which carries the
routing decision and pays the per-router routing latency), zero or more
body flits, and a tail (the last flit; it releases per-router wormhole
state in real hardware — here implicitly, since every flow owns its VC).

Flits are small immutable records; the simulator moves them one link at a
time and never copies payload.

Hot-path note: the fast simulator never materialises :class:`Flit`
objects while flits move — buffers and in-flight events carry bare
``(ready_time, flit_index, packet)`` tuples, deriving header/tail-ness
by comparing the index against ``packet.length`` (a :class:`Flit` is
built only for the optional tracer hook).  Both records are slotted
dataclasses so the per-packet attribute reads the loop does issue stay
off the instance-dict path.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Packet:
    """One released packet instance of a flow."""

    flow_index: int
    seq: int
    release_time: int
    length: int

    def __post_init__(self):
        if self.length < 1:
            raise ValueError("packets have at least one flit")
        if self.release_time < 0:
            raise ValueError("release times are non-negative")


@dataclass(frozen=True, slots=True)
class Flit:
    """One flit of one packet.

    ``index`` runs 0..length-1; index 0 is the header, index length-1 the
    tail (a single-flit packet is both).
    """

    packet: Packet
    index: int

    @property
    def is_header(self) -> bool:
        """True for the packet's first (route-establishing) flit."""
        return self.index == 0

    @property
    def is_tail(self) -> bool:
        """True for the packet's last (credit-releasing) flit."""
        return self.index == self.packet.length - 1

    def __repr__(self) -> str:
        kind = "H" if self.is_header else ("T" if self.is_tail else "B")
        return (
            f"Flit(f{self.packet.flow_index}#{self.packet.seq}.{self.index}{kind})"
        )
