"""Latency observation and per-packet records."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.sim.packet import Packet


@dataclass(frozen=True)
class PacketRecord:
    """Completed delivery of one packet."""

    flow_name: str
    seq: int
    release_time: int
    completion_time: int

    @property
    def latency(self) -> int:
        """Release of the first flit to reception of the last (the paper's
        notion of packet latency, compared against ``D_i``)."""
        return self.completion_time - self.release_time


@dataclass
class LatencyObserver:
    """Collects per-packet latencies during a simulation run.

    ``keep_records`` toggles storing every delivery (useful in tests and
    traces) versus only the running per-flow maxima (cheap, the default for
    long worst-case searches).
    """

    keep_records: bool = False
    worst: dict[str, int] = field(default_factory=dict)
    delivered: Counter = field(default_factory=Counter)
    records: list[PacketRecord] = field(default_factory=list)

    def on_delivery(self, flow_name: str, packet: Packet, time: int) -> None:
        """Simulator hook: a packet's tail flit reached its destination."""
        latency = time - packet.release_time
        if latency < 0:
            raise AssertionError(
                f"packet {packet} delivered before its release ({time})"
            )
        previous = self.worst.get(flow_name, 0)
        if latency > previous:
            self.worst[flow_name] = latency
        self.delivered[flow_name] += 1
        if self.keep_records:
            self.records.append(
                PacketRecord(
                    flow_name=flow_name,
                    seq=packet.seq,
                    release_time=packet.release_time,
                    completion_time=time,
                )
            )

    def worst_latency(self, flow_name: str) -> int:
        """Worst observed latency for a flow (0 when nothing delivered)."""
        return self.worst.get(flow_name, 0)
