"""Frozen pre-optimisation simulator, kept as the equivalence oracle.

This module preserves, verbatim in behaviour, the simulator the repository
shipped before the fast-lane rework of :mod:`repro.sim.network` and
:mod:`repro.sim.simulator`: dict-of-deque VC buffers keyed ``(link_id,
flow)``, a single ``heapq`` event queue with globally sequenced events,
a full rescan of every buffer per cycle, and name-keyed ``dict.get``
counter updates.  It is deliberately slow and deliberately untouched by
future optimisation passes.

``tests/sim/test_simulator_equivalence.py`` drives the fast simulator and
this oracle over the didactic workload, randomized synthetic scenarios,
and the credit-delay/linkl/routl parameter space, asserting identical
per-flow worst latencies, delivered-flit counts and end times.  Any
behavioural change to the hot path must keep this suite green; if the
*model* itself ever changes (not just its implementation), this oracle
must be re-frozen in the same commit and the change called out.

Nothing here is exported through :mod:`repro.sim`'s public API.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.flows.flowset import FlowSet
from repro.noc.topology import LinkKind
from repro.sim.observer import LatencyObserver
from repro.sim.packet import Flit, Packet
from repro.sim.simulator import SimulationResult
from repro.sim.traffic import ReleasePlan

_ARRIVE = 0
_CREDIT = 1
_WAKE = 2


class ReferenceNetworkState:
    """The seed's mutable wormhole state (dict-of-deque buffers)."""

    def __init__(self, flowset: FlowSet, *, credit_delay: int = 1):
        if credit_delay < 0:
            raise ValueError(f"credit_delay must be >= 0, got {credit_delay}")
        self.flowset = flowset
        self.platform = flowset.platform
        self.credit_delay = credit_delay
        topology = self.platform.topology

        flows = flowset.flows
        self.num_flows = len(flows)
        self.priority_of = [f.priority for f in flows]
        self.next_link: list[dict[int | None, int | None]] = []
        self.routes: list[tuple[int, ...]] = []
        for flow in flows:
            route = flowset.route(flow.name)
            table: dict[int | None, int | None] = {}
            if route:
                table[None] = route[0]
                for here, nxt in zip(route, route[1:]):
                    table[here] = nxt
                table[route[-1]] = None
            self.next_link.append(table)
            self.routes.append(route)

        self.buffered_link = [
            topology.link(link.id).kind is not LinkKind.EJECTION
            for link in topology.links
        ]
        self.buffers: dict[tuple[int, int], deque] = {}
        self.credits: dict[tuple[int, int], int] = {}
        self.source_queue: list[deque[Packet]] = [deque() for _ in flows]
        self.injected_of_head: list[int] = [0] * self.num_flows
        self.flits_in_network = 0

    def capacity(self, link_id: int) -> int:
        """Depth of the VC buffers at the downstream end of ``link_id``."""
        return self.platform.buf_of_link(link_id)

    def credit(self, link_id: int, flow: int) -> int:
        """Remaining credit for sending flow ``flow`` onto ``link_id``."""
        key = (link_id, flow)
        found = self.credits.get(key)
        if found is None:
            found = self.capacity(link_id)
            self.credits[key] = found
        return found

    def take_credit(self, link_id: int, flow: int) -> None:
        """Reserve one downstream buffer slot (a flit is being sent)."""
        remaining = self.credit(link_id, flow)
        if remaining <= 0:
            raise AssertionError(
                f"sent on link {link_id} for flow {flow} without credit"
            )
        self.credits[(link_id, flow)] = remaining - 1

    def return_credit(self, link_id: int, flow: int) -> None:
        """Free one downstream slot (a flit left the downstream buffer)."""
        key = (link_id, flow)
        capacity = self.capacity(link_id)
        self.credits[key] = self.credits.get(key, capacity) + 1
        if self.credits[key] > capacity:
            raise AssertionError(
                f"credit overflow on link {link_id} flow {flow}: "
                f"{self.credits[key]} > buf={capacity}"
            )

    def buffer(self, link_id: int, flow: int) -> deque:
        """The FIFO at the downstream end of ``link_id`` for one VC."""
        key = (link_id, flow)
        found = self.buffers.get(key)
        if found is None:
            found = deque()
            self.buffers[key] = found
        return found

    def enqueue_flit(
        self, link_id: int, flow: int, flit: Flit, ready_time: int
    ) -> None:
        """Flit arrives into the downstream buffer of ``link_id``."""
        dq = self.buffer(link_id, flow)
        if len(dq) >= self.capacity(link_id):
            raise AssertionError(
                f"buffer overflow on link {link_id} flow {flow}; "
                "credit flow control should prevent this"
            )
        dq.append((flit, ready_time))

    def release(self, packet: Packet) -> None:
        """A packet becomes ready at its source node."""
        self.source_queue[packet.flow_index].append(packet)

    def pop_source_flit(self, flow: int) -> Flit:
        """Consume the next source flit, advancing the packet queue."""
        queue = self.source_queue[flow]
        packet = queue[0]
        flit = Flit(packet, self.injected_of_head[flow])
        self.injected_of_head[flow] += 1
        if self.injected_of_head[flow] == packet.length:
            queue.popleft()
            self.injected_of_head[flow] = 0
        return flit

    @property
    def is_empty(self) -> bool:
        """No flits buffered, in flight, or awaiting injection."""
        return (
            self.flits_in_network == 0
            and all(not q for q in self.source_queue)
            and all(not dq for dq in self.buffers.values())
        )


class ReferenceSimulator:
    """The seed's cycle-accurate loop, kept as the oracle."""

    def __init__(
        self,
        flowset: FlowSet,
        releases: ReleasePlan,
        *,
        credit_delay: int = 1,
        observer: LatencyObserver | None = None,
        tracer=None,
    ):
        self.flowset = flowset
        self.releases = releases
        self.credit_delay = credit_delay
        self.observer = observer if observer is not None else LatencyObserver()
        self.tracer = tracer

    def run(
        self,
        release_horizon: int,
        *,
        drain_limit: int | None = None,
    ) -> SimulationResult:
        """Simulate all releases before ``release_horizon`` and drain."""
        flowset = self.flowset
        platform = flowset.platform
        state = ReferenceNetworkState(flowset, credit_delay=self.credit_delay)
        observer = self.observer
        result = SimulationResult(observer=observer)
        linkl, routl = platform.linkl, platform.routl
        ejection = [not buffered for buffered in state.buffered_link]
        priority_of = state.priority_of
        flow_names = [f.name for f in flowset.flows]

        if drain_limit is None:
            max_period = max(f.period for f in flowset.flows)
            drain_limit = release_horizon + 10 * max_period + 10 * linkl

        pending_releases: list[Packet] = []
        for index in range(state.num_flows):
            for packet in self.releases.releases(flowset, index, release_horizon):
                pending_releases.append(packet)
                name = flow_names[index]
                result.released_packets[name] = (
                    result.released_packets.get(name, 0) + 1
                )
                result.released_flits[name] = (
                    result.released_flits.get(name, 0) + packet.length
                )
        pending_releases.sort(key=lambda p: (p.release_time, p.flow_index, p.seq))
        release_ptr = 0

        events: list[tuple[int, int, int, tuple]] = []
        event_seq = 0

        def push_event(time: int, kind: int, data: tuple) -> None:
            nonlocal event_seq
            heapq.heappush(events, (time, event_seq, kind, data))
            event_seq += 1

        link_free: dict[int, int] = {}
        now = 0

        while True:
            if now > drain_limit:
                result.drained = False
                break
            if (
                release_ptr >= len(pending_releases)
                and not events
                and state.is_empty
            ):
                break

            while events and events[0][0] <= now:
                _, _, kind, data = heapq.heappop(events)
                if kind == _ARRIVE:
                    out_link, flow, flit = data
                    if ejection[out_link]:
                        state.flits_in_network -= 1
                        name = flow_names[flow]
                        result.delivered_flits[name] = (
                            result.delivered_flits.get(name, 0) + 1
                        )
                        if flit.is_tail:
                            observer.on_delivery(name, flit.packet, now)
                    else:
                        ready = now + routl if flit.is_header else now
                        state.enqueue_flit(out_link, flow, flit, ready)
                        if ready > now:
                            push_event(ready, _WAKE, ())
                elif kind == _CREDIT:
                    link_id, flow = data
                    state.return_credit(link_id, flow)

            while (
                release_ptr < len(pending_releases)
                and pending_releases[release_ptr].release_time == now
            ):
                packet = pending_releases[release_ptr]
                release_ptr += 1
                flow = packet.flow_index
                if flowset.flows[flow].is_local:
                    observer.on_delivery(flow_names[flow], packet, now)
                    name = flow_names[flow]
                    result.delivered_flits[name] = (
                        result.delivered_flits.get(name, 0) + packet.length
                    )
                else:
                    state.release(packet)

            requests: dict[int, list[tuple[int, int, tuple | None]]] = {}
            for (link_id, flow), dq in state.buffers.items():
                if not dq:
                    continue
                flit, ready = dq[0]
                if ready > now:
                    continue
                out = state.next_link[flow][link_id]
                if out is None:
                    raise AssertionError("flit beyond its ejection link")
                requests.setdefault(out, []).append(
                    (priority_of[flow], flow, (link_id, flow))
                )
            for flow in range(state.num_flows):
                queue = state.source_queue[flow]
                if not queue or queue[0].release_time > now:
                    continue
                out = state.next_link[flow][None]
                requests.setdefault(out, []).append(
                    (priority_of[flow], flow, None)
                )

            sent_any = False
            for out, candidates in requests.items():
                if link_free.get(out, 0) > now:
                    continue
                candidates.sort(key=lambda c: c[0])
                for _, flow, buffer_key in candidates:
                    needs_credit = state.buffered_link[out]
                    if needs_credit and state.credit(out, flow) <= 0:
                        continue
                    if buffer_key is None:
                        flit = state.pop_source_flit(flow)
                        state.flits_in_network += 1
                    else:
                        flit, _ = state.buffers[buffer_key].popleft()
                        if self.credit_delay == 0:
                            state.return_credit(*buffer_key)
                        else:
                            push_event(
                                now + self.credit_delay, _CREDIT, buffer_key
                            )
                    if needs_credit:
                        state.take_credit(out, flow)
                    push_event(now + linkl, _ARRIVE, (out, flow, flit))
                    link_free[out] = now + linkl
                    result.flits_per_link[out] = (
                        result.flits_per_link.get(out, 0) + 1
                    )
                    if self.tracer is not None:
                        self.tracer.on_send(
                            now, out, flow, flit,
                            None if buffer_key is None else buffer_key[0],
                        )
                    sent_any = True
                    break

            if sent_any:
                now += 1
                continue
            next_times = []
            if events:
                next_times.append(events[0][0])
            if release_ptr < len(pending_releases):
                next_times.append(pending_releases[release_ptr].release_time)
            if not next_times:
                if not state.is_empty:
                    raise AssertionError(
                        f"network stalled at cycle {now} with flits in place "
                        "and no future events; arbitration bug"
                    )
                break
            now = max(now + 1, min(next_times))

        result.end_time = now
        return result
