"""Worst-case latency search by release-offset exploration.

The analyses bound the worst case over *all* release phasings; a simulator
only ever observes the phasings it is given.  Following the paper's
Section V methodology ("we also produced cycle-accurate simulation results
for the same scenarios, and tabulated the worst observed latency for each
flow"), this module sweeps release offsets — the dominant lever for
exposing multi-point progressive blocking — and keeps per-flow maxima.

The search is exhaustive over the supplied offset grid (a Cartesian
product), so its cost is the product of grid sizes times the horizon.
Two levers keep large grids tractable without changing the result:

* **Dominance pruning** — when *every* networked flow is varied, two
  phasings that differ by a uniform time shift present the same relative
  release pattern; the shifted run is the canonical run with its last
  ``Δ`` cycles of releases truncated, so (in the anomaly-free
  ``linkl == 1`` regime, where a flit in transit never occupies a cycle
  another priority needs) its per-flow worst latencies are pointwise
  ``≤`` the canonical run's.  Skipping shifted phasings therefore never
  changes the per-flow maxima.  Pruning auto-enables exactly in that
  regime — and only for **ascending** offset grids, where the canonical
  phasing precedes its shifts in product order so the recorded
  maximising offsets keep the serial sweep's first-strict-max
  tie-break.  It can be forced on/off with ``prune_shifts`` (forcing it
  on with non-ascending grids keeps the maxima exact but may record a
  shifted phasing on ties).
* **Parallel chunking** — the (pruned) phasing list is split into
  contiguous chunks fanned out over a ``ProcessPoolExecutor``.  Workers
  receive the flow set once, at pool start-up (the worker-local caching
  pattern of ``schedulability_sweep``), so per-chunk traffic is a few
  offset tuples.  Chunk maxima are folded back **in chunk order** with
  the same strictly-greater update rule as the serial loop, so the
  result — including the recorded maximising offsets — is identical for
  every ``workers``/``chunk_size`` configuration.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.flows.flowset import FlowSet
from repro.sim.observer import LatencyObserver
from repro.sim.simulator import WormholeSimulator
from repro.sim.traffic import PeriodicReleases


@dataclass
class SearchResult:
    """Worst observed latency per flow over all simulated phasings."""

    worst: dict[str, int] = field(default_factory=dict)
    worst_offsets: dict[str, dict[str, int]] = field(default_factory=dict)
    runs: int = 0
    #: phasings skipped as pure time-shifts of an earlier phasing.
    pruned: int = 0
    all_drained: bool = True

    def worst_latency(self, flow_name: str) -> int:
        """Worst latency observed for a flow across all phasings tried."""
        return self.worst.get(flow_name, 0)


def simulate_offsets(
    flowset: FlowSet,
    offsets: Mapping[str, int],
    *,
    release_horizon: int,
    credit_delay: int = 1,
) -> dict[str, int]:
    """Run one phasing; return the worst observed latency per flow."""
    simulator = WormholeSimulator(
        flowset,
        PeriodicReleases(offsets=dict(offsets)),
        credit_delay=credit_delay,
        observer=LatencyObserver(),
    )
    result = simulator.run(release_horizon)
    result.check_conservation()
    return dict(result.observer.worst)


def auto_prune_shifts(
    flowset: FlowSet, names: Sequence[str], grids: Sequence[Sequence[int]]
) -> bool:
    """Whether shift-dominance pruning auto-enables for this search.

    True exactly in the proven regime: anomaly-free ``linkl == 1``
    platforms where *every* networked flow is varied and every grid is
    ascending (so canonical phasings precede their shifts in product
    order).  Shared by :func:`offset_search` and the campaign engine's
    job expansion so both enumerate the same phasing list.
    """
    networked = {f.name for f in flowset.flows if not f.is_local}
    return (
        flowset.platform.linkl == 1
        and networked <= set(names)
        and all(list(grid) == sorted(set(grid)) for grid in grids)
    )


def enumerate_phasings(
    flowset: FlowSet,
    vary: Mapping[str, Sequence[int]],
    *,
    prune_shifts: bool | None = None,
) -> tuple[tuple[str, ...], list[tuple[int, ...]], int]:
    """Materialise the (pruned) offset grid of a search.

    Returns ``(names, combos, pruned)``: the varied flow names, the
    phasings a sweep would simulate (in product order), and how many
    were skipped as pure time-shifts.  This is the exact enumeration
    :func:`offset_search` performs, exposed so campaign specs can chunk
    phasings into content-addressed jobs ahead of time.
    """
    names = tuple(vary)
    grids = [list(vary[name]) for name in names]
    for name, grid in zip(names, grids):
        if not grid:
            raise ValueError(f"empty offset grid for flow {name!r}")
    if prune_shifts is None:
        prune_shifts = auto_prune_shifts(flowset, names, grids)
    combos: list[tuple[int, ...]] = []
    pruned = 0
    if not prune_shifts:
        combos = list(itertools.product(*grids))
    else:
        grid_sets = [set(grid) for grid in grids]
        for combo in itertools.product(*grids):
            if _is_shifted(combo, grid_sets):
                pruned += 1
            else:
                combos.append(combo)
    return names, combos, pruned


def _is_shifted(
    combo: tuple[int, ...], grid_sets: list[set[int]]
) -> bool:
    """Is this phasing a positive uniform shift of an enumerated one?

    True when some ``Δ > 0`` maps every coordinate onto its own grid:
    the shifted-down combo is then part of the sweep (it precedes this
    one in product order) and dominates it.
    """
    first = combo[0]
    deltas = (first - g for g in grid_sets[0] if g < first)
    return any(
        all(o - delta in gs for o, gs in zip(combo[1:], grid_sets[1:]))
        for delta in deltas
    )


#: Worker-local search context, installed once per worker process by the
#: pool initializer so the flow set (and its cached routes and slot
#: tables) is unpickled once per worker instead of once per chunk.
_WORKER_SEARCH: dict = {}


def _init_search_worker(
    flowset: FlowSet, release_horizon: int, credit_delay: int
) -> None:
    _WORKER_SEARCH["flowset"] = flowset
    _WORKER_SEARCH["release_horizon"] = release_horizon
    _WORKER_SEARCH["credit_delay"] = credit_delay


def _search_chunk(
    args: tuple,
    flowset: FlowSet | None = None,
    release_horizon: int | None = None,
    credit_delay: int | None = None,
) -> tuple[int, dict[str, int], dict[str, dict[str, int]], int]:
    """One contiguous chunk of phasings; returns the chunk's maxima.

    The serial path passes the context explicitly; pool workers read
    either the chunk's trailing inline context (shared ``executor``) or
    the process-local one installed by :func:`_init_search_worker`.
    """
    chunk_index, names, combos, base_offsets, inline_context = args
    if flowset is None:
        if inline_context is not None:
            flowset, release_horizon, credit_delay = inline_context
        else:
            flowset = _WORKER_SEARCH["flowset"]
            release_horizon = _WORKER_SEARCH["release_horizon"]
            credit_delay = _WORKER_SEARCH["credit_delay"]
    worst: dict[str, int] = {}
    worst_offsets: dict[str, dict[str, int]] = {}
    for combo in combos:
        offsets = dict(base_offsets)
        offsets.update(zip(names, combo))
        observed = simulate_offsets(
            flowset,
            offsets,
            release_horizon=release_horizon,
            credit_delay=credit_delay,
        )
        for flow_name, latency in observed.items():
            if latency > worst.get(flow_name, -1):
                worst[flow_name] = latency
                worst_offsets[flow_name] = offsets
    return chunk_index, worst, worst_offsets, len(combos)


def offset_search(
    flowset: FlowSet,
    vary: Mapping[str, Sequence[int]],
    *,
    release_horizon: int,
    base_offsets: Mapping[str, int] | None = None,
    credit_delay: int = 1,
    workers: int = 1,
    chunk_size: int | None = None,
    prune_shifts: bool | None = None,
    executor: ProcessPoolExecutor | None = None,
) -> SearchResult:
    """Exhaustively sweep the offset grid and keep per-flow maxima.

    ``vary`` maps flow names to the offsets to try (e.g. every phase of a
    fast interferer's period); flows not listed use ``base_offsets``
    (default 0).  ``workers > 1`` distributes contiguous phasing chunks
    over processes; ``prune_shifts`` controls shift-dominance pruning
    (default: automatic, see the module docstring).  Results — maxima
    *and* the recorded maximising offsets — are identical for every
    workers/chunking/pruning configuration.

    Callers issuing many searches (campaigns) can pass a shared
    ``executor`` to amortise pool start-up; chunks then carry their own
    context instead of relying on the pool initializer, so any plain
    ``ProcessPoolExecutor`` works.

    >>> from repro.workloads import didactic_flowset
    >>> fs = didactic_flowset(buf=2)
    >>> r = offset_search(fs, {"t1": range(0, 10)}, release_horizon=1)
    >>> r.runs
    10
    """
    names = tuple(vary)
    grids = [list(vary[name]) for name in names]
    for name, grid in zip(names, grids):
        if not grid:
            raise ValueError(f"empty offset grid for flow {name!r}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")

    search = SearchResult()
    if prune_shifts is None:
        prune_shifts = auto_prune_shifts(flowset, names, grids)

    def phasings():
        """Stream the (pruned) product lazily — grids can be huge."""
        if not prune_shifts:
            yield from itertools.product(*grids)
            return
        grid_sets = [set(grid) for grid in grids]
        for combo in itertools.product(*grids):
            if _is_shifted(combo, grid_sets):
                search.pruned += 1
            else:
                yield combo

    total = 1
    for grid in grids:
        total *= len(grid)
    base = dict(base_offsets or {})
    if chunk_size is None:
        pool_width = (
            getattr(executor, "_max_workers", workers)
            if executor is not None else workers
        )
        if pool_width > 1:
            chunk_size = max(1, -(-total // (pool_width * 4)))
        else:
            # Serial runs still batch (bounded memory on huge grids);
            # the chunk-ordered fold makes chunking invisible in the
            # result.
            chunk_size = min(total, 1024)

    def chunks(inline_context):
        stream = phasings()
        for index in itertools.count():
            batch = list(itertools.islice(stream, chunk_size))
            if not batch:
                return
            yield (index, names, batch, base, inline_context)

    if executor is not None:
        context = (flowset, release_horizon, credit_delay)
        outcomes = list(executor.map(_search_chunk, chunks(context)))
    elif workers > 1 and total > chunk_size:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_search_worker,
            initargs=(flowset, release_horizon, credit_delay),
        ) as pool:
            outcomes = list(pool.map(_search_chunk, chunks(None)))
    else:
        outcomes = [
            _search_chunk(
                chunk,
                flowset=flowset,
                release_horizon=release_horizon,
                credit_delay=credit_delay,
            )
            for chunk in chunks(None)
        ]

    # Fold chunk maxima in chunk order: identical to the serial sweep,
    # including which offsets get recorded on ties (first strict max).
    for _, worst, worst_offsets, runs in sorted(outcomes):
        search.runs += runs
        for flow_name, latency in worst.items():
            if latency > search.worst.get(flow_name, -1):
                search.worst[flow_name] = latency
                search.worst_offsets[flow_name] = dict(
                    worst_offsets[flow_name]
                )
    return search
