"""Worst-case latency search by release-offset exploration.

The analyses bound the worst case over *all* release phasings; a simulator
only ever observes the phasings it is given.  Following the paper's
Section V methodology ("we also produced cycle-accurate simulation results
for the same scenarios, and tabulated the worst observed latency for each
flow"), this module sweeps release offsets — the dominant lever for
exposing multi-point progressive blocking — and keeps per-flow maxima.

The search is exhaustive over the supplied offset grid (a Cartesian
product), so its cost is the product of grid sizes times the horizon;
didactic-scale scenarios sweep a full period of the fast interfering flow
in seconds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.flows.flowset import FlowSet
from repro.sim.observer import LatencyObserver
from repro.sim.simulator import WormholeSimulator
from repro.sim.traffic import PeriodicReleases


@dataclass
class SearchResult:
    """Worst observed latency per flow over all simulated phasings."""

    worst: dict[str, int] = field(default_factory=dict)
    worst_offsets: dict[str, dict[str, int]] = field(default_factory=dict)
    runs: int = 0
    all_drained: bool = True

    def worst_latency(self, flow_name: str) -> int:
        """Worst latency observed for a flow across all phasings tried."""
        return self.worst.get(flow_name, 0)


def simulate_offsets(
    flowset: FlowSet,
    offsets: Mapping[str, int],
    *,
    release_horizon: int,
    credit_delay: int = 1,
) -> dict[str, int]:
    """Run one phasing; return the worst observed latency per flow."""
    simulator = WormholeSimulator(
        flowset,
        PeriodicReleases(offsets=dict(offsets)),
        credit_delay=credit_delay,
        observer=LatencyObserver(),
    )
    result = simulator.run(release_horizon)
    result.check_conservation()
    return dict(result.observer.worst)


def offset_search(
    flowset: FlowSet,
    vary: Mapping[str, Sequence[int]],
    *,
    release_horizon: int,
    base_offsets: Mapping[str, int] | None = None,
    credit_delay: int = 1,
) -> SearchResult:
    """Exhaustively sweep the offset grid and keep per-flow maxima.

    ``vary`` maps flow names to the offsets to try (e.g. every phase of a
    fast interferer's period); flows not listed use ``base_offsets``
    (default 0).

    >>> from repro.workloads import didactic_flowset
    >>> fs = didactic_flowset(buf=2)
    >>> r = offset_search(fs, {"t1": range(0, 10)}, release_horizon=1)
    >>> r.runs
    10
    """
    names = list(vary)
    grids = [list(vary[name]) for name in names]
    for name, grid in zip(names, grids):
        if not grid:
            raise ValueError(f"empty offset grid for flow {name!r}")
    search = SearchResult()
    for combo in itertools.product(*grids):
        offsets = dict(base_offsets or {})
        offsets.update(zip(names, combo))
        worst = simulate_offsets(
            flowset,
            offsets,
            release_horizon=release_horizon,
            credit_delay=credit_delay,
        )
        search.runs += 1
        for flow_name, latency in worst.items():
            if latency > search.worst.get(flow_name, -1):
                search.worst[flow_name] = latency
                search.worst_offsets[flow_name] = dict(offsets)
    return search
