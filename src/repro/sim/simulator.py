"""The cycle-accurate simulation loop.

Each cycle has strict phases:

1. apply scheduled events — flit arrivals (a flit sent at ``t`` occupies
   the downstream buffer, or the destination sink, at ``t + linkl``) and
   delayed credit returns;
2. apply packet releases due this cycle (local flows deliver immediately
   — they never enter the network);
3. collect, per output link, the VCs whose head flit is ready (header
   routed, i.e. ``routl`` elapsed since arrival) and wants that link;
4. arbitrate every requested, non-busy link: the highest-priority
   candidate **with credit** sends one flit (paper Section II: a blocked
   higher-priority packet without credit yields the link to the next
   priority); sending reserves a downstream slot (credit decrement),
   frees the upstream slot (credit return to the previous link after
   ``credit_delay``) and occupies the link for ``linkl`` cycles;
5. advance time — straight to the next scheduled event or release (idle
   periods cost nothing; cycles in which every candidate is blocked are
   skipped the same way, since every unblocking is itself an event).

The loop ends when all releases are in, the network has drained and no
events remain, or when ``drain_limit`` is hit (overload guard).

Fast-lane implementation (see DESIGN.md, "Simulation performance"): the
event heap of the original simulator is replaced by three monotone
deques — every arrival is scheduled exactly ``linkl`` ahead, every
credit return exactly ``credit_delay`` ahead and every routing wake-up
``routl`` ahead, so each stream is already time-sorted and same-time
events commute; arbitration only visits the incrementally maintained
``occupied``/``source_active`` sets; per-link state is flat arrays; and
per-flit counters accumulate in flow/link-indexed arrays that are
rendered to name-keyed dicts once, at the result boundary.  Behaviour is
cycle-identical to :mod:`repro.sim._reference`, which the equivalence
suite enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from collections import deque

from repro.core import backend as _backend
from repro.flows.flowset import FlowSet
from repro.sim.network import NetworkState
from repro.sim.observer import LatencyObserver
from repro.sim.packet import Flit, Packet
from repro.sim.traffic import ReleasePlan

_NEVER = float("inf")


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    observer: LatencyObserver
    released_packets: dict[str, int] = field(default_factory=dict)
    released_flits: dict[str, int] = field(default_factory=dict)
    delivered_flits: dict[str, int] = field(default_factory=dict)
    #: flit traversals per link id over the whole run.
    flits_per_link: dict[int, int] = field(default_factory=dict)
    end_time: int = 0
    drained: bool = True

    def worst_latency(self, flow_name: str) -> int:
        """Worst packet latency observed for a flow in this run."""
        return self.observer.worst_latency(flow_name)

    def link_utilization(self, link_id: int, linkl: int = 1) -> float:
        """Fraction of the run a link spent transmitting flits.

        Zero-length runs (nothing released, or truncated at time 0) and
        non-positive ``linkl`` consistently report 0.0 instead of
        dividing by zero.
        """
        if self.end_time <= 0 or linkl <= 0:
            return 0.0
        busy = self.flits_per_link.get(link_id, 0) * linkl
        return min(1.0, busy / self.end_time)

    def hottest_links(self, count: int = 5) -> list[tuple[int, int]]:
        """The ``count`` most-used links as (link_id, flits) pairs."""
        ranked = sorted(
            self.flits_per_link.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:count]

    def check_conservation(self) -> None:
        """Every released flit was delivered exactly once (drained runs)."""
        if not self.drained:
            raise AssertionError("conservation only meaningful after drain")
        for name, released in self.released_flits.items():
            delivered = self.delivered_flits.get(name, 0)
            if released != delivered:
                raise AssertionError(
                    f"{name}: released {released} flits but delivered {delivered}"
                )


class WormholeSimulator:
    """Cycle-accurate priority-preemptive wormhole NoC simulator.

    ``debug=True`` re-enables the per-flit conservation and occupancy
    invariants (credit underflow/overflow, buffer overflow, post-drain
    occupancy accounting) that the fast path otherwise skips; results are
    identical either way, debug runs are merely slower.

    >>> from repro.workloads import didactic_flowset
    >>> from repro.sim import single_shot
    >>> fs = didactic_flowset(buf=2)
    >>> sim = WormholeSimulator(fs, single_shot(at={"t3": 0}))
    >>> sim.run(release_horizon=1).worst_latency("t3")   # zero-load == C_3
    132
    """

    def __init__(
        self,
        flowset: FlowSet,
        releases: ReleasePlan,
        *,
        credit_delay: int = 1,
        observer: LatencyObserver | None = None,
        tracer=None,
        debug: bool = False,
    ):
        self.flowset = flowset
        self.releases = releases
        self.credit_delay = credit_delay
        self.observer = observer if observer is not None else LatencyObserver()
        #: optional :class:`repro.sim.trace.FlitTracer` receiving every send
        self.tracer = tracer
        self.debug = debug

    def run(
        self,
        release_horizon: int,
        *,
        drain_limit: int | None = None,
    ) -> SimulationResult:
        """Simulate all releases before ``release_horizon`` and drain.

        ``drain_limit`` bounds the total simulated time (default: horizon
        plus ten times the largest period, plenty for any schedulable
        scenario); hitting it marks the result ``drained=False``.
        """
        flowset = self.flowset
        platform = flowset.platform
        state = NetworkState(flowset, credit_delay=self.credit_delay)
        tables = state.tables
        observer = self.observer
        on_delivery = observer.on_delivery
        result = SimulationResult(observer=observer)
        linkl, routl = platform.linkl, platform.routl
        credit_delay = self.credit_delay
        tracer = self.tracer
        debug = self.debug

        nf = state.num_flows
        ejection = tables.ejection
        buffered = tables.buffered
        capacity = tables.capacity
        prio = tables.priority_of
        is_local = tables.is_local
        names = tables.flow_names
        first_link = tables.first_link
        next_of = tables.next_of
        credits = state.credits
        buffers = state.buffers
        occupied = state.occupied
        source_active = state.source_active
        source_queue = state.source_queue
        injected = state.injected_of_head
        slot_seq = state.slot_seq
        track_order = credit_delay == 0  # visit order is observable then

        if drain_limit is None:
            max_period = max(f.period for f in flowset.flows)
            drain_limit = release_horizon + 10 * max_period + 10 * linkl

        # All releases, globally sorted by time; per-flow counters live in
        # arrays and become name-keyed dicts only at the result boundary.
        released_packets = [0] * nf
        released_flits = [0] * nf
        delivered = [0] * nf
        flits_per_link = [0] * state.num_links
        pending: list[Packet] = []
        for index in range(nf):
            for packet in self.releases.releases(flowset, index, release_horizon):
                pending.append(packet)
                released_packets[index] += 1
                released_flits[index] += packet.length
        pending.sort(key=lambda p: (p.release_time, p.flow_index, p.seq))
        release_ptr = 0
        num_releases = len(pending)

        # Backend seam: a compiled backend can drain the whole event
        # loop in one call (byte-identical contract, enforced by the
        # equivalence suite).  Observation hooks the kernel cannot call
        # (tracers, per-packet records, observer subclasses) and debug
        # invariants keep the Python loop below.
        backend = _backend.get_backend()
        if (
            backend.sim_run is not None
            and tracer is None
            and not debug
            and type(observer) is LatencyObserver
            and not observer.keep_records
        ):
            done = backend.sim_run(
                tables,
                pending,
                linkl=linkl,
                routl=routl,
                credit_delay=credit_delay,
                drain_limit=drain_limit,
            )
            if done is not None:
                state.flits_in_network = done["flits_in_network"]
                result.end_time = done["end_time"]
                result.drained = done["drained"]
                worst = done["worst"]
                obs_worst = observer.worst
                for index, count in enumerate(done["delivered_pkts"]):
                    if count:
                        name = names[index]
                        observer.delivered[name] += int(count)
                        latency = int(worst[index])
                        if latency > obs_worst.get(name, 0):
                            obs_worst[name] = latency
                result.released_packets = {
                    names[i]: count
                    for i, count in enumerate(released_packets) if count
                }
                result.released_flits = {
                    names[i]: count
                    for i, count in enumerate(released_flits) if count
                }
                result.delivered_flits = {
                    names[i]: int(count)
                    for i, count in enumerate(done["delivered_flits"])
                    if count
                }
                result.flits_per_link = {
                    link: int(count)
                    for link, count in enumerate(done["flits_per_link"])
                    if count
                }
                return result

        # Three monotone event streams instead of one heap: each kind is
        # scheduled a *fixed* distance ahead of the non-decreasing clock,
        # so append order is time order and pops are O(1).
        arrive_q: deque = deque()   # (time, out_link, flow, flit_idx, packet)
        credit_q: deque = deque()   # (time, slot)
        wake_q: deque = deque()     # bare times, coalesced on push

        busy_until = [0] * state.num_links
        flits_in_network = 0
        now = 0

        _BIG = 1 << 60

        def _discovery_key(entry: tuple[int, list[int]]) -> int:
            """Reference visit order: FIFO-creation order, then sources."""
            best = _BIG << 1
            for cand in entry[1]:
                key = (
                    slot_seq.get(cand, _BIG)
                    if cand >= 0
                    else _BIG + (-1 - cand)
                )
                if key < best:
                    best = key
            return best

        while True:
            if now > drain_limit:
                result.drained = False
                break
            if (
                release_ptr >= num_releases
                and not arrive_q
                and not credit_q
                and not wake_q
                and flits_in_network == 0
                and not source_active
            ):
                break

            # Phase 1: events due.  Same-timestamp events commute (they
            # touch disjoint state), so the three streams drain in any
            # order.
            while arrive_q and arrive_q[0][0] <= now:
                _, out, flow, fidx, packet = arrive_q.popleft()
                if ejection[out]:
                    flits_in_network -= 1
                    delivered[flow] += 1
                    if fidx == packet.length - 1:
                        on_delivery(names[flow], packet, now)
                else:
                    slot = out * nf + flow
                    dq = buffers[slot]
                    if debug and len(dq) >= capacity[out]:
                        raise AssertionError(
                            f"buffer overflow on link {out} flow {flow}; "
                            "credit flow control should prevent this"
                        )
                    if fidx == 0 and routl:
                        ready = now + routl
                        if not wake_q or wake_q[-1] != ready:
                            wake_q.append(ready)
                    else:
                        ready = now
                    dq.append((ready, fidx, packet))
                    if len(dq) == 1:
                        occupied.add(slot)
                        if track_order and slot not in slot_seq:
                            slot_seq[slot] = len(slot_seq)
            while credit_q and credit_q[0][0] <= now:
                slot = credit_q.popleft()[1]
                credits[slot] += 1
                if debug and credits[slot] > capacity[slot // nf]:
                    raise AssertionError(
                        f"credit overflow on link {slot // nf} flow "
                        f"{slot % nf}: {credits[slot]} > "
                        f"buf={capacity[slot // nf]}"
                    )
            while wake_q and wake_q[0] <= now:
                wake_q.popleft()

            # Phase 2: releases due now.
            while (
                release_ptr < num_releases
                and pending[release_ptr].release_time <= now
            ):
                packet = pending[release_ptr]
                release_ptr += 1
                flow = packet.flow_index
                if is_local[flow]:
                    on_delivery(names[flow], packet, now)
                    delivered[flow] += packet.length
                else:
                    source_queue[flow].append(packet)
                    source_active.add(flow)

            # Phase 3: collect per-link requests.  Buffer candidates are
            # encoded as their slot, source candidates as ``-1 - flow``.
            requests: dict[int, list[int]] = {}
            for slot in occupied:
                dq = buffers[slot]
                if dq[0][0] > now:
                    continue
                out = next_of[slot]
                cands = requests.get(out)
                if cands is None:
                    requests[out] = [slot]
                else:
                    cands.append(slot)
            for flow in source_active:
                out = first_link[flow]
                cands = requests.get(out)
                if cands is None:
                    requests[out] = [-1 - flow]
                else:
                    cands.append(-1 - flow)

            # Phase 4: arbitration + sends.  With a delayed credit return
            # the links' arbitrations are independent, so visit order is
            # free; with credit_delay == 0 an upstream credit comes back
            # within the cycle and the order is observable — then links
            # are visited in the reference's discovery order (buffers in
            # FIFO-creation order, then sources in flow order).
            items = requests.items()
            if track_order and len(requests) > 1:
                items = sorted(items, key=_discovery_key)
            sent_any = False
            for out, cands in items:
                if busy_until[out] > now:
                    continue
                needs_credit = buffered[out]
                base = out * nf
                best = None
                best_prio = 1 << 60
                for cand in cands:
                    flow = cand % nf if cand >= 0 else -1 - cand
                    p = prio[flow]
                    if p < best_prio:
                        if needs_credit and credits[base + flow] <= 0:
                            continue  # blocked upstream: yield priority
                        best = cand
                        best_prio = p
                        best_flow = flow
                if best is None:
                    continue
                if best < 0:
                    # inject from the source queue
                    queue = source_queue[best_flow]
                    packet = queue[0]
                    fidx = injected[best_flow]
                    if fidx + 1 == packet.length:
                        queue.popleft()
                        injected[best_flow] = 0
                        if not queue:
                            source_active.discard(best_flow)
                    else:
                        injected[best_flow] = fidx + 1
                    flits_in_network += 1
                else:
                    dq = buffers[best]
                    _, fidx, packet = dq.popleft()
                    if not dq:
                        occupied.discard(best)
                    if credit_delay == 0:
                        credits[best] += 1
                    else:
                        credit_q.append((now + credit_delay, best))
                if needs_credit:
                    if debug and credits[base + best_flow] <= 0:
                        raise AssertionError(
                            f"sent on link {out} for flow {best_flow} "
                            "without credit"
                        )
                    credits[base + best_flow] -= 1
                arrive_q.append((now + linkl, out, best_flow, fidx, packet))
                busy_until[out] = now + linkl
                flits_per_link[out] += 1
                if tracer is not None:
                    tracer.on_send(
                        now, out, best_flow, Flit(packet, fidx),
                        None if best < 0 else best // nf,
                    )
                sent_any = True

            # Phase 5: advance time.  With delayed credit returns every
            # blocked candidate is unblocked by an *event* (the link
            # frees with the in-flight arrival, credit with its return,
            # readiness with its wake), so after a send the loop can jump
            # straight to the next event/release without skipping a send
            # opportunity.  With credit_delay == 0 a send returns credit
            # within the cycle — an unblocking no event records — so a
            # sending cycle must walk to now + 1 exactly like the
            # reference (for linkl == 1 the two coincide anyway: the
            # send's own arrival is due then).
            nt = _NEVER
            if arrive_q:
                nt = arrive_q[0][0]
            if credit_q and credit_q[0][0] < nt:
                nt = credit_q[0][0]
            if wake_q and wake_q[0] < nt:
                nt = wake_q[0]
            if (
                release_ptr < num_releases
                and pending[release_ptr].release_time < nt
            ):
                nt = pending[release_ptr].release_time
            if nt == _NEVER:
                if flits_in_network or source_active:
                    raise AssertionError(
                        f"network stalled at cycle {now} with flits in place "
                        "and no future events; arbitration bug"
                    )
                break
            # After a send the reference walks one cycle before jumping;
            # clamping the jump at the drain limit reproduces its
            # truncation point (and hence end_time) exactly.
            if sent_any and (track_order or nt > drain_limit):
                now += 1
            else:
                now = nt

        state.flits_in_network = flits_in_network
        if debug and result.drained:
            state.check_buffer_occupancy()
        result.end_time = now
        result.released_packets = {
            names[i]: count
            for i, count in enumerate(released_packets) if count
        }
        result.released_flits = {
            names[i]: count
            for i, count in enumerate(released_flits) if count
        }
        result.delivered_flits = {
            names[i]: count for i, count in enumerate(delivered) if count
        }
        result.flits_per_link = {
            link: count for link, count in enumerate(flits_per_link) if count
        }
        return result
