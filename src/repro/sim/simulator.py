"""The cycle-accurate simulation loop.

Each cycle has strict phases:

1. apply scheduled events — flit arrivals (a flit sent at ``t`` occupies
   the downstream buffer, or the destination sink, at ``t + linkl``) and
   delayed credit returns;
2. apply packet releases due this cycle (local flows deliver immediately
   — they never enter the network);
3. collect, per output link, the VCs whose head flit is ready (header
   routed, i.e. ``routl`` elapsed since arrival) and wants that link;
4. arbitrate every requested, non-busy link: the highest-priority
   candidate **with credit** sends one flit (paper Section II: a blocked
   higher-priority packet without credit yields the link to the next
   priority); sending reserves a downstream slot (credit decrement),
   frees the upstream slot (credit return to the previous link after
   ``credit_delay``) and occupies the link for ``linkl`` cycles;
5. advance time — by one cycle after activity, otherwise jump straight to
   the next scheduled event or release (idle periods cost nothing).

The loop ends when all releases are in, the network has drained and no
events remain, or when ``drain_limit`` is hit (overload guard).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.flows.flowset import FlowSet
from repro.sim.network import NetworkState
from repro.sim.observer import LatencyObserver
from repro.sim.packet import Packet
from repro.sim.traffic import ReleasePlan

_ARRIVE = 0
_CREDIT = 1
_WAKE = 2


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    observer: LatencyObserver
    released_packets: dict[str, int] = field(default_factory=dict)
    released_flits: dict[str, int] = field(default_factory=dict)
    delivered_flits: dict[str, int] = field(default_factory=dict)
    #: flit traversals per link id over the whole run.
    flits_per_link: dict[int, int] = field(default_factory=dict)
    end_time: int = 0
    drained: bool = True

    def worst_latency(self, flow_name: str) -> int:
        """Worst packet latency observed for a flow in this run."""
        return self.observer.worst_latency(flow_name)

    def link_utilization(self, link_id: int, linkl: int = 1) -> float:
        """Fraction of the run a link spent transmitting flits."""
        if self.end_time <= 0:
            return 0.0
        busy = self.flits_per_link.get(link_id, 0) * linkl
        return min(1.0, busy / self.end_time)

    def hottest_links(self, count: int = 5) -> list[tuple[int, int]]:
        """The ``count`` most-used links as (link_id, flits) pairs."""
        ranked = sorted(
            self.flits_per_link.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:count]

    def check_conservation(self) -> None:
        """Every released flit was delivered exactly once (drained runs)."""
        if not self.drained:
            raise AssertionError("conservation only meaningful after drain")
        for name, released in self.released_flits.items():
            delivered = self.delivered_flits.get(name, 0)
            if released != delivered:
                raise AssertionError(
                    f"{name}: released {released} flits but delivered {delivered}"
                )


class WormholeSimulator:
    """Cycle-accurate priority-preemptive wormhole NoC simulator.

    >>> from repro.workloads import didactic_flowset
    >>> from repro.sim import single_shot
    >>> fs = didactic_flowset(buf=2)
    >>> sim = WormholeSimulator(fs, single_shot(at={"t3": 0}))
    >>> sim.run(release_horizon=1).worst_latency("t3")   # zero-load == C_3
    132
    """

    def __init__(
        self,
        flowset: FlowSet,
        releases: ReleasePlan,
        *,
        credit_delay: int = 1,
        observer: LatencyObserver | None = None,
        tracer=None,
    ):
        self.flowset = flowset
        self.releases = releases
        self.credit_delay = credit_delay
        self.observer = observer if observer is not None else LatencyObserver()
        #: optional :class:`repro.sim.trace.FlitTracer` receiving every send
        self.tracer = tracer

    def run(
        self,
        release_horizon: int,
        *,
        drain_limit: int | None = None,
    ) -> SimulationResult:
        """Simulate all releases before ``release_horizon`` and drain.

        ``drain_limit`` bounds the total simulated time (default: horizon
        plus ten times the largest period, plenty for any schedulable
        scenario); hitting it marks the result ``drained=False``.
        """
        flowset = self.flowset
        platform = flowset.platform
        state = NetworkState(flowset, credit_delay=self.credit_delay)
        observer = self.observer
        result = SimulationResult(observer=observer)
        linkl, routl = platform.linkl, platform.routl
        ejection = [not buffered for buffered in state.buffered_link]
        priority_of = state.priority_of
        flow_names = [f.name for f in flowset.flows]

        if drain_limit is None:
            max_period = max(f.period for f in flowset.flows)
            drain_limit = release_horizon + 10 * max_period + 10 * linkl

        # All releases, globally sorted by time.
        pending_releases: list[Packet] = []
        for index in range(state.num_flows):
            for packet in self.releases.releases(flowset, index, release_horizon):
                pending_releases.append(packet)
                name = flow_names[index]
                result.released_packets[name] = (
                    result.released_packets.get(name, 0) + 1
                )
                result.released_flits[name] = (
                    result.released_flits.get(name, 0) + packet.length
                )
        pending_releases.sort(key=lambda p: (p.release_time, p.flow_index, p.seq))
        release_ptr = 0

        events: list[tuple[int, int, int, tuple]] = []  # (time, seq, kind, data)
        event_seq = 0

        def push_event(time: int, kind: int, data: tuple) -> None:
            nonlocal event_seq
            heapq.heappush(events, (time, event_seq, kind, data))
            event_seq += 1

        link_free: dict[int, int] = {}
        now = 0

        while True:
            if now > drain_limit:
                result.drained = False
                break
            if (
                release_ptr >= len(pending_releases)
                and not events
                and state.is_empty
            ):
                break

            # Phase 1: events due (defensively: also any stragglers).
            while events and events[0][0] <= now:
                _, _, kind, data = heapq.heappop(events)
                if kind == _ARRIVE:
                    out_link, flow, flit = data
                    if ejection[out_link]:
                        state.flits_in_network -= 1
                        name = flow_names[flow]
                        result.delivered_flits[name] = (
                            result.delivered_flits.get(name, 0) + 1
                        )
                        if flit.is_tail:
                            observer.on_delivery(name, flit.packet, now)
                    else:
                        ready = now + routl if flit.is_header else now
                        state.enqueue_flit(out_link, flow, flit, ready)
                        if ready > now:
                            push_event(ready, _WAKE, ())
                elif kind == _CREDIT:
                    link_id, flow = data
                    state.return_credit(link_id, flow)
                # _WAKE: state unchanged; its purpose is to un-idle the loop.

            # Phase 2: releases due now.
            while (
                release_ptr < len(pending_releases)
                and pending_releases[release_ptr].release_time == now
            ):
                packet = pending_releases[release_ptr]
                release_ptr += 1
                flow = packet.flow_index
                if flowset.flows[flow].is_local:
                    observer.on_delivery(flow_names[flow], packet, now)
                    name = flow_names[flow]
                    result.delivered_flits[name] = (
                        result.delivered_flits.get(name, 0) + packet.length
                    )
                else:
                    state.release(packet)

            # Phase 3: collect per-link requests.
            requests: dict[int, list[tuple[int, int, tuple | None]]] = {}
            for (link_id, flow), dq in state.buffers.items():
                if not dq:
                    continue
                flit, ready = dq[0]
                if ready > now:
                    continue
                out = state.next_link[flow][link_id]
                if out is None:
                    raise AssertionError("flit beyond its ejection link")
                requests.setdefault(out, []).append(
                    (priority_of[flow], flow, (link_id, flow))
                )
            for flow in range(state.num_flows):
                queue = state.source_queue[flow]
                if not queue or queue[0].release_time > now:
                    continue
                out = state.next_link[flow][None]
                requests.setdefault(out, []).append(
                    (priority_of[flow], flow, None)
                )

            # Phase 4: arbitration + sends.
            sent_any = False
            for out, candidates in requests.items():
                if link_free.get(out, 0) > now:
                    continue
                candidates.sort(key=lambda c: c[0])
                for _, flow, buffer_key in candidates:
                    needs_credit = state.buffered_link[out]
                    if needs_credit and state.credit(out, flow) <= 0:
                        continue  # blocked upstream: yield to next priority
                    if buffer_key is None:
                        flit = state.pop_source_flit(flow)
                        state.flits_in_network += 1
                    else:
                        flit, _ = state.buffers[buffer_key].popleft()
                        if self.credit_delay == 0:
                            state.return_credit(*buffer_key)
                        else:
                            push_event(
                                now + self.credit_delay, _CREDIT, buffer_key
                            )
                    if needs_credit:
                        state.take_credit(out, flow)
                    push_event(now + linkl, _ARRIVE, (out, flow, flit))
                    link_free[out] = now + linkl
                    result.flits_per_link[out] = (
                        result.flits_per_link.get(out, 0) + 1
                    )
                    if self.tracer is not None:
                        self.tracer.on_send(
                            now, out, flow, flit,
                            None if buffer_key is None else buffer_key[0],
                        )
                    sent_any = True
                    break

            # Phase 5: advance time.
            if sent_any:
                now += 1
                continue
            next_times = []
            if events:
                next_times.append(events[0][0])
            if release_ptr < len(pending_releases):
                next_times.append(pending_releases[release_ptr].release_time)
            if not next_times:
                if not state.is_empty:
                    raise AssertionError(
                        f"network stalled at cycle {now} with flits in place "
                        "and no future events; arbitration bug"
                    )
                break
            now = max(now + 1, min(next_times))

        result.end_time = now
        return result
