"""Figure 4: schedulability versus load for the competing analyses.

The campaign: for each flow count on the x-axis, generate ``sets_per_point``
random flow sets (Section VI parameters), decide full-set schedulability
under every analysis, and report the percentage of schedulable sets.

The four paper curves are SB (unsafe reference), XLWX (safe baseline),
IBN2 and IBN100 (the contribution with 2- and 100-flit buffers).  Buffer
size only matters to IBN, so each flow set is analysed on buffer-variant
copies of the platform while sharing one interference graph (the O(n²)
part of the cost).

Per-set verdict chain: the analyses are pointwise ordered
(``R^SB ≤ R^IBN2 ≤ R^IBN100 ≤ R^XLWX``, see :mod:`repro.core.engine`),
which makes the verdict vector along the chain monotone — True prefix,
False suffix.  :func:`spec_verdicts` bisects that boundary, typically
deciding all four curves with two analysis runs, warm-starting looser
runs from tighter results when available.  Verdicts are identical to
running each analysis cold; only the work changes.

Orchestration: this experiment runs on the campaign engine
(:mod:`repro.campaigns`).  :func:`schedulability_spec` describes the
whole sweep declaratively; it expands into deterministic
``(point, set-chunk)`` jobs whose per-set seed derivation keeps the
outcome identical for any worker/chunk configuration, and identical
chunks (duplicate x-axis points) share one content-addressed result.
Workers reuse a process-local platform per mesh — and with it the
memoized route table — via
:func:`repro.campaigns.scheduler.worker_platform`.

Batched hot lane: the scheduler ships same-kind jobs in *blocks*, and
the registered block executor (:func:`run_sched_chunk_block`) feeds
every set of every chunk in a block into :func:`spec_verdicts_batch`
— the bisection rounds then run as mixed-analysis
:func:`repro.core.batch.analyze_batch` calls, one vectorized solve per
round instead of one per set.  Per-job results (and hence job hashes,
stores and goldens) are identical to the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.campaigns.progress import Progress
from repro.campaigns.registry import CampaignKind, Plan, register_kind
from repro.campaigns.scheduler import worker_platform
from repro.campaigns.spec import (
    CampaignSpec,
    Job,
    chunk_size_param,
    spec_param,
)
from repro.campaigns import registry as _registry
from repro.core.analyses.base import Analysis
from repro.core.analyses.ibn import IBNAnalysis
from repro.core.analyses.sb import SBAnalysis
from repro.core.analyses.xlwx import XLWXAnalysis
from repro.core.engine import analysis_pointwise_le, analyze, tightness_rank
from repro.core.interference import InterferenceGraph
from repro.flows.flowset import FlowSet
from repro.noc.platform import NoCPlatform
from repro.workloads.synthetic import SyntheticConfig, synthetic_flows
from repro.util.rng import spawn_rng


@dataclass(frozen=True)
class AnalysisSpec:
    """One curve of the figure: an analysis plus the buffer depth it sees.

    ``buf=None`` analyses on the base platform (buffer size irrelevant to
    SB/XLWX, which predate buffer-aware bounds).
    """

    label: str
    analysis: Analysis
    buf: int | None = None


def fig4_specs(
    small_buf: int = 2,
    large_buf: int = 100,
    *,
    include_sb: bool = True,
) -> tuple[AnalysisSpec, ...]:
    """The paper's Figure 4 curves: SB, XLWX, IBN2, IBN100."""
    specs = []
    if include_sb:
        specs.append(AnalysisSpec("SB", SBAnalysis()))
    specs.append(AnalysisSpec("XLWX", XLWXAnalysis()))
    specs.append(AnalysisSpec(f"IBN{small_buf}", IBNAnalysis(), buf=small_buf))
    specs.append(AnalysisSpec(f"IBN{large_buf}", IBNAnalysis(), buf=large_buf))
    return tuple(specs)


@dataclass
class SweepResult:
    """Percentage of schedulable flow sets per x-axis point and curve."""

    x_label: str
    x_values: list = field(default_factory=list)
    #: label -> list of percentages aligned with ``x_values``.
    series: dict[str, list[float]] = field(default_factory=dict)
    sets_per_point: int = 0

    def add_point(self, x, percentages: dict[str, float]) -> None:
        """Append one x-axis point with its per-curve percentages."""
        self.x_values.append(x)
        for label, value in percentages.items():
            self.series.setdefault(label, []).append(value)

    def max_gap(self, upper: str, lower: str) -> float:
        """Largest pointwise difference ``upper − lower`` (paper's "up to
        58%" style statements)."""
        for label in (upper, lower):
            if label not in self.series:
                available = ", ".join(sorted(self.series)) or "none"
                raise KeyError(
                    f"unknown curve {label!r}; available curves: {available}"
                )
        if not self.series[upper]:
            raise ValueError(
                f"curves {upper!r} and {lower!r} have no data points; "
                "the sweep has not recorded any x-axis values yet"
            )
        return max(
            u - l
            for u, l in zip(self.series[upper], self.series[lower])
        )


class _VerdictState:
    """Bisection bookkeeping for one flow set's verdict chain.

    Encapsulates exactly the decision sequence of the original
    ``spec_verdicts`` loop — midpoint selection over the
    tightness-sorted undecided list, warm-source lookup, verdict
    propagation along the pointwise partial order — so the scalar path
    and the batched path (:func:`spec_verdicts_batch`) provably make
    identical decisions; only who computes each analysis differs.
    """

    __slots__ = ("specs", "flowsets", "graph", "by_tightness", "verdicts",
                 "sources")

    def __init__(
        self,
        base_flowset: FlowSet,
        specs: Sequence[AnalysisSpec],
        graph: InterferenceGraph,
    ) -> None:
        base_platform = base_flowset.platform
        self.specs = specs
        self.graph = graph
        self.flowsets: list[FlowSet] = []
        for spec in specs:
            if spec.buf is None or spec.buf == base_platform.buf:
                self.flowsets.append(base_flowset)
            else:
                self.flowsets.append(
                    base_flowset.on_platform(
                        base_platform.with_buffers(spec.buf)
                    )
                )
        self.by_tightness = sorted(
            range(len(specs)),
            key=lambda idx: (
                tightness_rank(specs[idx].analysis, self.flowsets[idx].platform),
                idx,
            ),
        )
        self.verdicts: dict[int, bool] = {}
        self.sources: list[tuple[int, object]] = []

    @property
    def done(self) -> bool:
        return len(self.verdicts) >= len(self.specs)

    def pick(self) -> tuple[int, FlowSet, object, object]:
        """Next (spec index, flowset, analysis, warm source) to run."""
        undecided = [
            idx for idx in self.by_tightness if idx not in self.verdicts
        ]
        idx = undecided[len(undecided) // 2]
        spec, flowset = self.specs[idx], self.flowsets[idx]
        warm = None
        for tight_idx, tight_result in reversed(self.sources):
            if analysis_pointwise_le(
                self.specs[tight_idx].analysis,
                spec.analysis,
                self.flowsets[tight_idx].platform,
                flowset.platform,
            ):
                warm = tight_result
                break
        return idx, flowset, spec.analysis, warm

    def absorb(self, idx: int, result) -> None:
        """Record one analysis result and propagate its verdict."""
        spec, flowset = self.specs[idx], self.flowsets[idx]
        verdict = result.complete and result.schedulable
        self.verdicts[idx] = verdict
        self.sources.append((idx, result))
        for other in self.by_tightness:
            if other in self.verdicts:
                continue
            if verdict and analysis_pointwise_le(
                self.specs[other].analysis,
                spec.analysis,
                self.flowsets[other].platform,
                flowset.platform,
            ):
                self.verdicts[other] = True
            elif not verdict and analysis_pointwise_le(
                spec.analysis,
                self.specs[other].analysis,
                flowset.platform,
                self.flowsets[other].platform,
            ):
                self.verdicts[other] = False

    def labelled(self) -> dict[str, bool]:
        return {
            self.specs[idx].label: self.verdicts[idx]
            for idx in range(len(self.specs))
        }


def spec_verdicts(
    base_flowset: FlowSet,
    specs: Sequence[AnalysisSpec],
    *,
    graph: InterferenceGraph | None = None,
) -> dict[str, bool]:
    """Schedulability verdict of one flow set under every spec.

    Shares a single interference graph across all specs (platform copies
    differ only in buffer depth, which the graph is agnostic to), and
    exploits the pointwise ordering of the analyses
    (:func:`~repro.core.engine.analysis_pointwise_le`) twice over:

    * a **True** verdict decides every pointwise-*tighter* spec (its
      bounds are smaller still), a **False** verdict decides every
      pointwise-*looser* one (the missed deadline only gets worse);
    * the verdict vector along the tightness-sorted chain is therefore
      monotone — True prefix, False suffix — so the undecided boundary is
      located by **bisection**, typically running 2 of the 4 Figure-4
      analyses per set instead of all of them;
    * when a pointwise-tighter result happens to be available it also
      warm-starts the looser run's fixed points.

    Verdicts are identical to running every spec cold; the dict order
    follows ``specs``.
    """
    if graph is None:
        graph = InterferenceGraph(base_flowset)
    state = _VerdictState(base_flowset, specs, graph)
    while not state.done:
        idx, flowset, analysis, warm = state.pick()
        result = analyze(
            flowset, analysis, graph=graph, early_exit=True, warm_from=warm
        )
        state.absorb(idx, result)
    return state.labelled()


def spec_verdicts_batch(
    entries: Sequence[tuple[FlowSet, Sequence[AnalysisSpec]]],
    *,
    graphs: Sequence[InterferenceGraph | None] | None = None,
    min_batch_flows: int | None = None,
) -> list[dict[str, bool]]:
    """Verdicts for many flow sets, batched through the columnar kernel.

    Each entry is one ``(base flow set, analysis specs)`` pair; the
    return list is aligned with the input.  Per set, the decision
    sequence is *identical* to :func:`spec_verdicts` — the bisection
    over the verdict chain runs in lock-stepped rounds, and each
    round's pending analyses across all sets form one mixed-analysis
    :func:`~repro.core.batch.analyze_batch` call (scalar for tiny
    rounds, where array assembly would cost more than it saves).
    ``min_batch_flows`` overrides that crossover threshold; it defaults
    to :func:`repro.core.batch.min_batch_flows` (tunable through
    ``REPRO_BATCH_MIN_FLOWS``), and both paths are byte-identical, so
    moving it only shifts where the scalar engine takes over.
    """
    from repro.core.batch import Scenario, analyze_batch
    from repro.core.batch import min_batch_flows as _threshold

    tiny_cutoff = _threshold(min_batch_flows)

    states: list[_VerdictState] = []
    for position, (base_flowset, specs) in enumerate(entries):
        graph = graphs[position] if graphs is not None else None
        if graph is None:
            graph = InterferenceGraph(base_flowset)
        states.append(_VerdictState(base_flowset, specs, graph))
    pending = [state for state in states if not state.done]
    while pending:
        picked = [(state, state.pick()) for state in pending]
        scenarios = [
            Scenario(flowset, analysis, graph=state.graph, warm_from=warm)
            for state, (_, flowset, analysis, warm) in picked
        ]
        if sum(len(s.flowset) for s in scenarios) >= tiny_cutoff:
            results = analyze_batch(scenarios, early_exit=True)
        else:
            results = [
                analyze(
                    s.flowset,
                    s.analysis,
                    graph=s.graph,
                    early_exit=True,
                    warm_from=s.warm_from,
                )
                for s in scenarios
            ]
        for (state, (idx, _, _, _)), result in zip(picked, results):
            state.absorb(idx, result)
        pending = [state for state in pending if not state.done]
    return [state.labelled() for state in states]


def analyse_set(
    flows: Sequence,
    base_platform: NoCPlatform,
    specs: Sequence[AnalysisSpec],
) -> dict[str, bool]:
    """Schedulability verdict of one flow set under every spec."""
    return spec_verdicts(FlowSet(base_platform, flows), specs)


# ---------------------------------------------------------------------------
# Campaign kind: declarative spec, job executor, aggregation, rendering.
# ---------------------------------------------------------------------------

def default_chunk_size(sets_per_point: int) -> int:
    """Deterministic chunk width: at most 8 chunks per x-axis point.

    Depends only on the spec (never on worker counts) so a spec always
    expands to the same content-addressed job set — the property resume
    relies on.
    """
    return max(1, -(-sets_per_point // 8))


def _chunk_sets(params: Mapping) -> tuple[tuple[AnalysisSpec, ...], list[FlowSet]]:
    """One chunk's analysis specs and generated flow sets, in set order."""
    cols, rows = params["mesh"]
    platform = worker_platform(cols, rows, params["small_buf"])
    specs = fig4_specs(
        params["small_buf"],
        params["large_buf"],
        include_sb=params["include_sb"],
    )
    num_flows = params["num_flows"]
    config = SyntheticConfig(num_flows=num_flows, **params["config"])
    flowsets = []
    set_start = params["set_start"]
    for set_index in range(set_start, set_start + params["set_count"]):
        rng = spawn_rng(params["seed"], "synthetic", num_flows, set_index)
        flows = synthetic_flows(config, platform.topology.num_nodes, rng)
        flowsets.append(FlowSet(platform, flows))
    return specs, flowsets


@_registry.job_executor("sched_chunk")
def run_sched_chunk(params: Mapping) -> dict:
    """Worker: one contiguous chunk of a point's flow sets.

    Returns raw schedulable counts (not percentages); the per-set seed
    depends only on the campaign seed and the set index, making results
    independent of the chunking.
    """
    return run_sched_chunk_block([params])[0]


@_registry.block_executor("sched_chunk")
def run_sched_chunk_block(params_list: Sequence[Mapping]) -> list[dict]:
    """Worker: a whole block of chunk jobs as one scenario batch.

    All sets of all chunks in the block feed one
    :func:`spec_verdicts_batch` call — the columnar kernel solves each
    bisection round across the entire block at once.  Per-job results
    are identical to running :func:`run_sched_chunk` per chunk (so job
    content addresses, resume, and the campaign goldens are unaffected);
    only the throughput changes.
    """
    entries: list[tuple[FlowSet, Sequence[AnalysisSpec]]] = []
    spans: list[tuple[int, int, tuple[AnalysisSpec, ...]]] = []
    for params in params_list:
        specs, flowsets = _chunk_sets(params)
        start = len(entries)
        entries.extend((flowset, specs) for flowset in flowsets)
        spans.append((start, len(entries), specs))
    verdict_rows = spec_verdicts_batch(entries)
    results = []
    for params, (start, stop, specs) in zip(params_list, spans):
        counts = {spec.label: 0 for spec in specs}
        for verdicts in verdict_rows[start:stop]:
            for label, ok in verdicts.items():
                counts[label] += ok
        results.append({"counts": counts, "sets": params["set_count"]})
    return results


def schedulability_spec(
    mesh: tuple[int, int],
    flow_counts: Sequence[int],
    sets_per_point: int,
    *,
    seed: int,
    name: str = "schedulability",
    small_buf: int = 2,
    large_buf: int = 100,
    include_sb: bool = True,
    config_kwargs: dict | None = None,
    chunk_size: int | None = None,
    title: str | None = None,
    gap_notes: Sequence[Mapping] = (),
) -> CampaignSpec:
    """Declare one Figure-4-style sweep as a campaign spec.

    ``gap_notes`` entries (``{"label", "upper", "lower", "paper"}``)
    render the paper's "up to N%" gap statements under the chart.
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return CampaignSpec(
        kind="schedulability",
        name=name,
        params={
            "mesh": list(mesh),
            "flow_counts": list(flow_counts),
            "sets_per_point": sets_per_point,
            "seed": seed,
            "small_buf": small_buf,
            "large_buf": large_buf,
            "include_sb": include_sb,
            "config": dict(config_kwargs or {}),
            "chunk_size": chunk_size,
            "title": title,
            "gap_notes": [dict(note) for note in gap_notes],
        },
    )


def _sched_params(spec: CampaignSpec) -> dict:
    """Validated spec parameters with kind defaults (JSON specs too)."""
    return {
        "mesh": spec_param(spec, "mesh"),
        "flow_counts": spec_param(spec, "flow_counts"),
        "sets_per_point": spec_param(spec, "sets_per_point"),
        "seed": spec_param(spec, "seed"),
        "small_buf": spec_param(spec, "small_buf", 2),
        "large_buf": spec_param(spec, "large_buf", 100),
        "include_sb": spec_param(spec, "include_sb", True),
        "config": spec_param(spec, "config", {}),
        "chunk_size": chunk_size_param(spec),
    }


def _sched_plan(spec: CampaignSpec) -> Plan:
    """Expand a sweep spec into (point, set-chunk) jobs, point-major."""
    p = _sched_params(spec)
    cols, rows = p["mesh"]
    sets_per_point = p["sets_per_point"]
    chunk_size = p["chunk_size"] or default_chunk_size(sets_per_point)
    point_jobs: list[list[Job]] = []
    for num_flows in p["flow_counts"]:
        chunks = []
        for set_start in range(0, sets_per_point, chunk_size):
            set_count = min(chunk_size, sets_per_point - set_start)
            chunks.append(
                Job(
                    kind="sched_chunk",
                    params={
                        "mesh": [cols, rows],
                        "num_flows": num_flows,
                        "set_start": set_start,
                        "set_count": set_count,
                        "seed": p["seed"],
                        "config": p["config"],
                        "small_buf": p["small_buf"],
                        "large_buf": p["large_buf"],
                        "include_sb": p["include_sb"],
                    },
                    label=(
                        f"{spec.name} {cols}x{rows} n={num_flows} "
                        f"sets {set_start}+{set_count}"
                    ),
                )
            )
        point_jobs.append(chunks)
    return Plan(
        jobs=[job for chunks in point_jobs for job in chunks],
        context=point_jobs,
    )


def _sched_aggregate(
    spec: CampaignSpec, plan: Plan, results: Mapping[str, Mapping]
) -> SweepResult:
    """Fold chunk counts into per-point percentages, in x-axis order."""
    p = _sched_params(spec)
    labels = [
        s.label
        for s in fig4_specs(
            p["small_buf"], p["large_buf"], include_sb=p["include_sb"]
        )
    ]
    result = SweepResult(
        x_label="# flows per flow set", sets_per_point=p["sets_per_point"]
    )
    for num_flows, chunks in zip(p["flow_counts"], plan.context):
        totals = {label: 0 for label in labels}
        for job in chunks:
            for label, count in results[job.job_id]["counts"].items():
                totals[label] += count
        result.add_point(
            num_flows,
            {
                label: 100.0 * totals[label] / p["sets_per_point"]
                for label in labels
            },
        )
    return result


def render_gap_notes(result: SweepResult, notes: Sequence[Mapping]) -> list[str]:
    """The "max A->B gap: X% (paper: up to Y%)" lines under a chart."""
    return [
        f"max {note['label']} gap: "
        f"{result.max_gap(note['upper'], note['lower']):.1f}% "
        f"(paper: up to {note['paper']}%)"
        for note in notes
    ]


def _sched_render(spec: CampaignSpec, result: SweepResult) -> str:
    from repro.experiments.report import render_sweep

    cols, rows = spec_param(spec, "mesh")
    title = spec.params.get("title") or (
        f"% schedulable flow sets on {cols}x{rows}"
    )
    lines = [render_sweep(result, title=title)]
    notes = spec.params.get("gap_notes") or []
    if notes:
        lines.append("")
        lines.extend(render_gap_notes(result, notes))
    return "\n".join(lines)


def sweep_to_jsonable(spec: CampaignSpec, result: SweepResult) -> dict:
    """Structured payload shared by every sweep-shaped campaign."""
    return {
        "x_label": result.x_label,
        "x_values": list(result.x_values),
        "series": {k: list(v) for k, v in result.series.items()},
        "sets_per_point": result.sets_per_point,
    }


def sweep_csv_export(spec: CampaignSpec, result: SweepResult) -> str:
    """The ``to_csv`` hook shared by every sweep-shaped campaign kind."""
    from repro.experiments.report import sweep_csv

    return sweep_csv(result)


SCHEDULABILITY_KIND = register_kind(
    CampaignKind(
        name="schedulability",
        plan=_sched_plan,
        aggregate=_sched_aggregate,
        render=_sched_render,
        to_csv=sweep_csv_export,
        to_jsonable=sweep_to_jsonable,
    )
)


def schedulability_sweep(
    mesh: tuple[int, int],
    flow_counts: Sequence[int],
    sets_per_point: int,
    *,
    seed: int,
    small_buf: int = 2,
    large_buf: int = 100,
    include_sb: bool = True,
    config_kwargs: dict | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    progress: Progress | None = None,
) -> SweepResult:
    """Run one Figure 4 panel (an ephemeral campaign-engine run).

    ``config_kwargs`` override :class:`SyntheticConfig` fields (e.g.
    ``clock_hz``); ``workers > 1`` distributes the spec's
    ``(point, set-chunk)`` jobs over the shared scheduler pool —
    ``chunk_size`` (default: a deterministic function of
    ``sets_per_point``) trades scheduling overhead against load balance.
    ``progress`` receives one
    :class:`~repro.campaigns.progress.ProgressEvent` per completed job.
    Results are identical for every workers/chunking choice thanks to
    the per-set seed derivation.
    """
    from repro.campaigns.engine import run_campaign

    spec = schedulability_spec(
        mesh,
        flow_counts,
        sets_per_point,
        seed=seed,
        small_buf=small_buf,
        large_buf=large_buf,
        include_sb=include_sb,
        config_kwargs=config_kwargs,
        chunk_size=chunk_size,
    )
    return run_campaign(spec, workers=workers, progress=progress).result
