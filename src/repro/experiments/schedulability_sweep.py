"""Figure 4: schedulability versus load for the competing analyses.

The campaign: for each flow count on the x-axis, generate ``sets_per_point``
random flow sets (Section VI parameters), decide full-set schedulability
under every analysis, and report the percentage of schedulable sets.

The four paper curves are SB (unsafe reference), XLWX (safe baseline),
IBN2 and IBN100 (the contribution with 2- and 100-flit buffers).  Buffer
size only matters to IBN, so each flow set is analysed on buffer-variant
copies of the platform while sharing one interference graph (the O(n²)
part of the cost).

Per-set verdict chain: the analyses are pointwise ordered
(``R^SB ≤ R^IBN2 ≤ R^IBN100 ≤ R^XLWX``, see :mod:`repro.core.engine`),
which makes the verdict vector along the chain monotone — True prefix,
False suffix.  :func:`spec_verdicts` bisects that boundary, typically
deciding all four curves with two analysis runs, warm-starting looser
runs from tighter results when available.  Verdicts are identical to
running each analysis cold; only the work changes.

Multiprocessing: work is fanned out as ``(point, set-chunk)`` jobs rather
than whole x-axis points, so campaigns with large ``sets_per_point`` keep
every worker busy even with few points; per-set seed derivation keeps the
outcome identical for any worker/chunk configuration.  Workers reuse a
process-local platform per mesh (and with it the memoized route table),
and the ``progress`` callback now reports each completed point in
parallel runs too.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.analyses.base import Analysis
from repro.core.analyses.ibn import IBNAnalysis
from repro.core.analyses.sb import SBAnalysis
from repro.core.analyses.xlwx import XLWXAnalysis
from repro.core.engine import analysis_pointwise_le, analyze, tightness_rank
from repro.core.interference import InterferenceGraph
from repro.flows.flowset import FlowSet
from repro.noc.platform import NoCPlatform
from repro.noc.topology import Mesh2D
from repro.workloads.synthetic import SyntheticConfig, synthetic_flows
from repro.util.rng import spawn_rng


@dataclass(frozen=True)
class AnalysisSpec:
    """One curve of the figure: an analysis plus the buffer depth it sees.

    ``buf=None`` analyses on the base platform (buffer size irrelevant to
    SB/XLWX, which predate buffer-aware bounds).
    """

    label: str
    analysis: Analysis
    buf: int | None = None


def fig4_specs(
    small_buf: int = 2,
    large_buf: int = 100,
    *,
    include_sb: bool = True,
) -> tuple[AnalysisSpec, ...]:
    """The paper's Figure 4 curves: SB, XLWX, IBN2, IBN100."""
    specs = []
    if include_sb:
        specs.append(AnalysisSpec("SB", SBAnalysis()))
    specs.append(AnalysisSpec("XLWX", XLWXAnalysis()))
    specs.append(AnalysisSpec(f"IBN{small_buf}", IBNAnalysis(), buf=small_buf))
    specs.append(AnalysisSpec(f"IBN{large_buf}", IBNAnalysis(), buf=large_buf))
    return tuple(specs)


@dataclass
class SweepResult:
    """Percentage of schedulable flow sets per x-axis point and curve."""

    x_label: str
    x_values: list = field(default_factory=list)
    #: label -> list of percentages aligned with ``x_values``.
    series: dict[str, list[float]] = field(default_factory=dict)
    sets_per_point: int = 0

    def add_point(self, x, percentages: dict[str, float]) -> None:
        """Append one x-axis point with its per-curve percentages."""
        self.x_values.append(x)
        for label, value in percentages.items():
            self.series.setdefault(label, []).append(value)

    def max_gap(self, upper: str, lower: str) -> float:
        """Largest pointwise difference ``upper − lower`` (paper's "up to
        58%" style statements)."""
        for label in (upper, lower):
            if label not in self.series:
                available = ", ".join(sorted(self.series)) or "none"
                raise KeyError(
                    f"unknown curve {label!r}; available curves: {available}"
                )
        if not self.series[upper]:
            raise ValueError(
                f"curves {upper!r} and {lower!r} have no data points; "
                "the sweep has not recorded any x-axis values yet"
            )
        return max(
            u - l
            for u, l in zip(self.series[upper], self.series[lower])
        )


def spec_verdicts(
    base_flowset: FlowSet,
    specs: Sequence[AnalysisSpec],
    *,
    graph: InterferenceGraph | None = None,
) -> dict[str, bool]:
    """Schedulability verdict of one flow set under every spec.

    Shares a single interference graph across all specs (platform copies
    differ only in buffer depth, which the graph is agnostic to), and
    exploits the pointwise ordering of the analyses
    (:func:`~repro.core.engine.analysis_pointwise_le`) twice over:

    * a **True** verdict decides every pointwise-*tighter* spec (its
      bounds are smaller still), a **False** verdict decides every
      pointwise-*looser* one (the missed deadline only gets worse);
    * the verdict vector along the tightness-sorted chain is therefore
      monotone — True prefix, False suffix — so the undecided boundary is
      located by **bisection**, typically running 2 of the 4 Figure-4
      analyses per set instead of all of them;
    * when a pointwise-tighter result happens to be available it also
      warm-starts the looser run's fixed points.

    Verdicts are identical to running every spec cold; the dict order
    follows ``specs``.
    """
    base_platform = base_flowset.platform
    if graph is None:
        graph = InterferenceGraph(base_flowset)
    flowsets: list[FlowSet] = []
    for spec in specs:
        if spec.buf is None or spec.buf == base_platform.buf:
            flowsets.append(base_flowset)
        else:
            flowsets.append(
                base_flowset.on_platform(base_platform.with_buffers(spec.buf))
            )
    by_tightness = sorted(
        range(len(specs)),
        key=lambda idx: (
            tightness_rank(specs[idx].analysis, flowsets[idx].platform),
            idx,
        ),
    )
    verdicts: dict[int, bool] = {}
    sources: list[tuple[int, object]] = []  # (spec index, AnalysisResult)

    def decide(idx: int) -> None:
        spec, flowset = specs[idx], flowsets[idx]
        warm = None
        for tight_idx, tight_result in reversed(sources):
            if analysis_pointwise_le(
                specs[tight_idx].analysis,
                spec.analysis,
                flowsets[tight_idx].platform,
                flowset.platform,
            ):
                warm = tight_result
                break
        result = analyze(
            flowset, spec.analysis, graph=graph, early_exit=True, warm_from=warm
        )
        verdict = result.complete and result.schedulable
        verdicts[idx] = verdict
        sources.append((idx, result))
        # Propagate along the partial order to everything still undecided.
        for other in by_tightness:
            if other in verdicts:
                continue
            if verdict and analysis_pointwise_le(
                specs[other].analysis,
                spec.analysis,
                flowsets[other].platform,
                flowset.platform,
            ):
                verdicts[other] = True
            elif not verdict and analysis_pointwise_le(
                spec.analysis,
                specs[other].analysis,
                flowset.platform,
                flowsets[other].platform,
            ):
                verdicts[other] = False

    while len(verdicts) < len(specs):
        undecided = [idx for idx in by_tightness if idx not in verdicts]
        decide(undecided[len(undecided) // 2])
    return {specs[idx].label: verdicts[idx] for idx in range(len(specs))}


def analyse_set(
    flows: Sequence,
    base_platform: NoCPlatform,
    specs: Sequence[AnalysisSpec],
) -> dict[str, bool]:
    """Schedulability verdict of one flow set under every spec."""
    return spec_verdicts(FlowSet(base_platform, flows), specs)


#: Process-local platform cache: reusing the platform across chunk jobs
#: keeps one topology (and hence one memoized route table) per mesh for
#: the lifetime of the worker, so routes are computed once per worker
#: instead of once per x-axis point.
_WORKER_PLATFORMS: dict[tuple[int, int, int], NoCPlatform] = {}


def _worker_platform(cols: int, rows: int, buf: int) -> NoCPlatform:
    key = (cols, rows, buf)
    platform = _WORKER_PLATFORMS.get(key)
    if platform is None:
        platform = NoCPlatform(Mesh2D(cols, rows), buf=buf)
        _WORKER_PLATFORMS[key] = platform
    return platform


def _sweep_chunk(args: tuple) -> tuple[int, dict[str, int], int]:
    """Worker: one contiguous chunk of a point's flow sets.

    Returns raw schedulable counts (not percentages) keyed back to the
    x-axis *position* (robust to duplicate flow counts) so the parent can
    aggregate chunks; the per-set seed depends only on the global seed
    and the set index, making results independent of the chunking.
    """
    (point_index, cols, rows, num_flows, set_start, set_count, seed,
     config_kwargs, small_buf, large_buf, include_sb) = args
    platform = _worker_platform(cols, rows, small_buf)
    specs = fig4_specs(small_buf, large_buf, include_sb=include_sb)
    config = SyntheticConfig(num_flows=num_flows, **config_kwargs)
    counts = {spec.label: 0 for spec in specs}
    for set_index in range(set_start, set_start + set_count):
        rng = spawn_rng(seed, "synthetic", num_flows, set_index)
        flows = synthetic_flows(config, platform.topology.num_nodes, rng)
        verdicts = spec_verdicts(FlowSet(platform, flows), specs)
        for label, ok in verdicts.items():
            counts[label] += ok
    return point_index, counts, set_count


def _chunk_jobs(
    flow_counts: Sequence[int],
    sets_per_point: int,
    chunk_size: int,
    seed: int,
    config_kwargs: dict,
    cols: int,
    rows: int,
    small_buf: int,
    large_buf: int,
    include_sb: bool,
) -> list[tuple]:
    jobs = []
    for point_index, num_flows in enumerate(flow_counts):
        for set_start in range(0, sets_per_point, chunk_size):
            set_count = min(chunk_size, sets_per_point - set_start)
            jobs.append(
                (point_index, cols, rows, num_flows, set_start, set_count,
                 seed, dict(config_kwargs), small_buf, large_buf, include_sb)
            )
    return jobs


def schedulability_sweep(
    mesh: tuple[int, int],
    flow_counts: Sequence[int],
    sets_per_point: int,
    *,
    seed: int,
    small_buf: int = 2,
    large_buf: int = 100,
    include_sb: bool = True,
    config_kwargs: dict | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Run one Figure 4 panel.

    ``config_kwargs`` override :class:`SyntheticConfig` fields (e.g.
    ``clock_hz``); ``workers > 1`` distributes ``(point, set-chunk)`` jobs
    over processes — ``chunk_size`` (default: about a quarter-worker's
    share of a point) trades scheduling overhead against load balance.
    ``progress`` receives one message per completed x-axis point in both
    serial and parallel runs.  Results are identical for every
    workers/chunking choice thanks to the per-set seed derivation.
    """
    cols, rows = mesh
    labels = [
        spec.label
        for spec in fig4_specs(small_buf, large_buf, include_sb=include_sb)
    ]
    if chunk_size is None:
        if workers > 1:
            chunk_size = max(1, -(-sets_per_point // (workers * 4)))
        else:
            chunk_size = sets_per_point
    elif chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    jobs = _chunk_jobs(
        flow_counts, sets_per_point, chunk_size, seed,
        dict(config_kwargs or {}), cols, rows, small_buf, large_buf,
        include_sb,
    )

    # Aggregate chunk counts per x-axis position; report a point as soon
    # as all its sets are in (points can finish out of order under
    # workers).
    pending: list[tuple[dict[str, int], int]] = [
        ({label: 0 for label in labels}, 0) for _ in flow_counts
    ]
    percentages_by_point: dict[int, dict[str, float]] = {}

    def _absorb(outcome: tuple[int, dict[str, int], int]) -> None:
        point_index, counts, set_count = outcome
        totals, done = pending[point_index]
        for label, count in counts.items():
            totals[label] += count
        done += set_count
        pending[point_index] = (totals, done)
        if done == sets_per_point:
            percentages = {
                label: 100.0 * totals[label] / sets_per_point
                for label in labels
            }
            percentages_by_point[point_index] = percentages
            if progress is not None:
                rendered = ", ".join(
                    f"{label}={value:.0f}%"
                    for label, value in percentages.items()
                )
                progress(
                    f"{cols}x{rows} n={flow_counts[point_index]}: {rendered}"
                )

    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_sweep_chunk, job) for job in jobs]
            for future in as_completed(futures):
                _absorb(future.result())
    else:
        for job in jobs:
            _absorb(_sweep_chunk(job))

    result = SweepResult(
        x_label="# flows per flow set", sets_per_point=sets_per_point
    )
    for point_index, num_flows in enumerate(flow_counts):
        result.add_point(num_flows, percentages_by_point[point_index])
    return result
