"""Figure 4: schedulability versus load for the competing analyses.

The campaign: for each flow count on the x-axis, generate ``sets_per_point``
random flow sets (Section VI parameters), decide full-set schedulability
under every analysis, and report the percentage of schedulable sets.

The four paper curves are SB (unsafe reference), XLWX (safe baseline),
IBN2 and IBN100 (the contribution with 2- and 100-flit buffers).  Buffer
size only matters to IBN, so each flow set is analysed on buffer-variant
copies of the platform while sharing one interference graph (the O(n²)
part of the cost).

Multiprocessing: points are independent, so the campaign optionally fans
out over worker processes (``workers=``); results are deterministic either
way thanks to the per-set seed derivation.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.analyses.base import Analysis
from repro.core.analyses.ibn import IBNAnalysis
from repro.core.analyses.sb import SBAnalysis
from repro.core.analyses.xlwx import XLWXAnalysis
from repro.core.engine import is_schedulable
from repro.core.interference import InterferenceGraph
from repro.flows.flowset import FlowSet
from repro.noc.platform import NoCPlatform
from repro.noc.topology import Mesh2D
from repro.workloads.synthetic import SyntheticConfig, synthetic_flows
from repro.util.rng import spawn_rng


@dataclass(frozen=True)
class AnalysisSpec:
    """One curve of the figure: an analysis plus the buffer depth it sees.

    ``buf=None`` analyses on the base platform (buffer size irrelevant to
    SB/XLWX, which predate buffer-aware bounds).
    """

    label: str
    analysis: Analysis
    buf: int | None = None


def fig4_specs(
    small_buf: int = 2,
    large_buf: int = 100,
    *,
    include_sb: bool = True,
) -> tuple[AnalysisSpec, ...]:
    """The paper's Figure 4 curves: SB, XLWX, IBN2, IBN100."""
    specs = []
    if include_sb:
        specs.append(AnalysisSpec("SB", SBAnalysis()))
    specs.append(AnalysisSpec("XLWX", XLWXAnalysis()))
    specs.append(AnalysisSpec(f"IBN{small_buf}", IBNAnalysis(), buf=small_buf))
    specs.append(AnalysisSpec(f"IBN{large_buf}", IBNAnalysis(), buf=large_buf))
    return tuple(specs)


@dataclass
class SweepResult:
    """Percentage of schedulable flow sets per x-axis point and curve."""

    x_label: str
    x_values: list = field(default_factory=list)
    #: label -> list of percentages aligned with ``x_values``.
    series: dict[str, list[float]] = field(default_factory=dict)
    sets_per_point: int = 0

    def add_point(self, x, percentages: dict[str, float]) -> None:
        """Append one x-axis point with its per-curve percentages."""
        self.x_values.append(x)
        for label, value in percentages.items():
            self.series.setdefault(label, []).append(value)

    def max_gap(self, upper: str, lower: str) -> float:
        """Largest pointwise difference ``upper − lower`` (paper's "up to
        58%" style statements)."""
        return max(
            u - l
            for u, l in zip(self.series[upper], self.series[lower])
        )


def analyse_set(
    flows: Sequence,
    base_platform: NoCPlatform,
    specs: Sequence[AnalysisSpec],
) -> dict[str, bool]:
    """Schedulability verdict of one flow set under every spec.

    Shares a single interference graph across all specs; platform copies
    differ only in buffer depth, which the graph is agnostic to.
    """
    base_flowset = FlowSet(base_platform, flows)
    graph = InterferenceGraph(base_flowset)
    verdicts: dict[str, bool] = {}
    for spec in specs:
        if spec.buf is None or spec.buf == base_platform.buf:
            flowset = base_flowset
        else:
            flowset = base_flowset.on_platform(base_platform.with_buffers(spec.buf))
        verdicts[spec.label] = is_schedulable(flowset, spec.analysis, graph=graph)
    return verdicts


def _sweep_one_point(args: tuple) -> tuple[int, dict[str, float]]:
    """Worker: all sets of one x-axis point (picklable top-level helper)."""
    (cols, rows, num_flows, sets_per_point, seed, config_kwargs,
     small_buf, large_buf, include_sb) = args
    platform = NoCPlatform(Mesh2D(cols, rows), buf=small_buf)
    specs = fig4_specs(small_buf, large_buf, include_sb=include_sb)
    config = SyntheticConfig(num_flows=num_flows, **config_kwargs)
    counts = {spec.label: 0 for spec in specs}
    for set_index in range(sets_per_point):
        rng = spawn_rng(seed, "synthetic", num_flows, set_index)
        flows = synthetic_flows(config, platform.topology.num_nodes, rng)
        verdicts = analyse_set(flows, platform, specs)
        for label, ok in verdicts.items():
            counts[label] += ok
    percentages = {
        label: 100.0 * count / sets_per_point for label, count in counts.items()
    }
    return num_flows, percentages


def schedulability_sweep(
    mesh: tuple[int, int],
    flow_counts: Sequence[int],
    sets_per_point: int,
    *,
    seed: int,
    small_buf: int = 2,
    large_buf: int = 100,
    include_sb: bool = True,
    config_kwargs: dict | None = None,
    workers: int = 1,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Run one Figure 4 panel.

    ``config_kwargs`` override :class:`SyntheticConfig` fields (e.g.
    ``clock_hz``); ``workers > 1`` distributes x-axis points over
    processes.
    """
    cols, rows = mesh
    result = SweepResult(x_label="# flows per flow set", sets_per_point=sets_per_point)
    jobs = [
        (cols, rows, n, sets_per_point, seed, dict(config_kwargs or {}),
         small_buf, large_buf, include_sb)
        for n in flow_counts
    ]
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_sweep_one_point, jobs))
    else:
        outcomes = []
        for job in jobs:
            outcomes.append(_sweep_one_point(job))
            if progress is not None:
                n, percentages = outcomes[-1]
                rendered = ", ".join(
                    f"{label}={value:.0f}%" for label, value in percentages.items()
                )
                progress(f"{cols}x{rows} n={n}: {rendered}")
    for num_flows, percentages in outcomes:
        result.add_point(num_flows, percentages)
    return result
