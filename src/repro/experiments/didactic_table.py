"""Tables I & II of the paper (Section V), including simulation columns.

Regenerates the didactic example end-to-end: the flow parameters of
Table I, the SB/XLWX/IBN bounds of Table II for 2- and 10-flit buffers,
and — when ``with_simulation`` — the worst observed cycle-accurate
latencies under a τ1 release-offset sweep (the paper's ``R^sim`` columns).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.core.analyses.ibn import IBNAnalysis
from repro.core.analyses.sb import SBAnalysis
from repro.core.analyses.xlwx import XLWXAnalysis
from repro.core.engine import analyze
from repro.core.interference import InterferenceGraph
from repro.sim.worstcase import offset_search
from repro.workloads.didactic import didactic_flows, didactic_flowset

#: Paper values for Table II's analysis columns (exact oracle).
PAPER_TABLE2 = {
    "R_SB": {"t1": 62, "t2": 328, "t3": 336},
    "R_XLWX": {"t1": 62, "t2": 328, "t3": 460},
    "R_IBN_b10": {"t1": 62, "t2": 328, "t3": 396},
    "R_IBN_b2": {"t1": 62, "t2": 328, "t3": 348},
    # The paper's observed simulation values (authors' simulator):
    "R_sim_b10_paper": {"t1": 62, "t2": 324, "t3": 352},
    "R_sim_b2_paper": {"t1": 62, "t2": 324, "t3": 336},
}

FLOW_ORDER = ("t1", "t2", "t3")


@dataclass
class DidacticTables:
    """Computed Table I/II content."""

    table1_rows: list[tuple] = field(default_factory=list)
    #: column label -> {flow: value}
    table2: dict[str, dict[str, int]] = field(default_factory=dict)

    def render(self) -> str:
        """Format both tables in the paper's layout (plain text)."""
        lines = ["Table I: flow parameters"]
        lines.append("flow  C    (L, |route|)  T     D     J  P")
        for row in self.table1_rows:
            name, c, length, hops, t, d, j, p = row
            lines.append(
                f"{name:<4}  {c:<4} ({length}, {hops})      {t:<5} {d:<5} {j}  {p}"
            )
        lines.append("")
        lines.append("Table II: analysis and simulation results")
        labels = list(self.table2)
        lines.append("flow  " + "  ".join(f"{label:>12}" for label in labels))
        for name in FLOW_ORDER:
            cells = "  ".join(
                f"{self.table2[label].get(name, 0):>12}" for label in labels
            )
            lines.append(f"{name:<4}  {cells}")
        return "\n".join(lines)


def didactic_tables(
    *,
    with_simulation: bool = True,
    offset_step: int = 1,
    release_horizon: int = 6001,
    workers: int = 1,
) -> DidacticTables:
    """Recompute Tables I and II.

    ``offset_step`` thins the τ1 offset sweep (1 = every phase, the paper's
    exhaustive setting; larger steps trade fidelity for speed).
    ``workers`` parallelises the sweep's simulations without changing its
    outcome.
    """
    tables = DidacticTables()
    flows = didactic_flows()
    flowset2 = didactic_flowset(buf=2)
    for flow in flows:
        route = flowset2.route(flow.name)
        tables.table1_rows.append(
            (
                flow.name,
                flowset2.c(flow.name),
                flow.length,
                len(route),
                flow.period,
                flow.deadline,
                flow.jitter,
                flow.priority,
            )
        )

    # Rebind rather than rebuild so the interference graph can be shared
    # (the geometry is buffer-independent).
    flowset10 = flowset2.on_platform(flowset2.platform.with_buffers(10))
    graph = InterferenceGraph(flowset2)

    def column(flowset, analysis) -> dict[str, int]:
        result = analyze(flowset, analysis, graph=graph, stop_at_deadline=False)
        return {name: result.response_time(name) for name in FLOW_ORDER}

    tables.table2["R_SB"] = column(flowset2, SBAnalysis())
    tables.table2["R_XLWX"] = column(flowset2, XLWXAnalysis())
    tables.table2["R_IBN_b10"] = column(flowset10, IBNAnalysis())
    tables.table2["R_IBN_b2"] = column(flowset2, IBNAnalysis())

    if with_simulation:
        # One pool shared by both buffer-depth sweeps (pool start-up and
        # worker spin-up are paid once; results are worker-count
        # independent).
        executor = None
        if workers > 1:
            executor = ProcessPoolExecutor(max_workers=workers)
        try:
            for buf, label in ((10, "R_sim_b10"), (2, "R_sim_b2")):
                flowset = didactic_flowset(buf=buf)
                search = offset_search(
                    flowset,
                    {"t1": range(0, flows[0].period, offset_step)},
                    release_horizon=release_horizon,
                    executor=executor,
                )
                tables.table2[label] = {
                    name: search.worst_latency(name) for name in FLOW_ORDER
                }
        finally:
            if executor is not None:
                executor.shutdown()
    return tables
