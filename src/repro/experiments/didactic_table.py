"""Tables I & II of the paper (Section V), including simulation columns.

Regenerates the didactic example end-to-end: the flow parameters of
Table I, the SB/XLWX/IBN bounds of Table II for 2- and 10-flit buffers,
and — when ``with_simulation`` — the worst observed cycle-accurate
latencies under a τ1 release-offset sweep (the paper's ``R^sim`` columns).

Runs on the campaign engine: :func:`didactic_table_spec` expands the
offset sweep of each buffer depth into content-addressed ``sim_chunk``
jobs (the analysis columns are recomputed at aggregation time — they
cost microseconds), so paper-scale exhaustive sweeps parallelise over
the shared scheduler pool and resume from a result store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.campaigns.progress import Progress
from repro.campaigns.registry import CampaignKind, Plan, register_kind
from repro.campaigns.spec import CampaignSpec, chunk_size_param, spec_param
from repro.core.analyses.ibn import IBNAnalysis
from repro.core.analyses.sb import SBAnalysis
from repro.core.analyses.xlwx import XLWXAnalysis
from repro.core.engine import analyze
from repro.core.interference import InterferenceGraph
from repro.experiments.sim_jobs import expand_sim_chunks, fold_worst
from repro.workloads.didactic import didactic_flows, didactic_flowset

#: Paper values for Table II's analysis columns (exact oracle).
PAPER_TABLE2 = {
    "R_SB": {"t1": 62, "t2": 328, "t3": 336},
    "R_XLWX": {"t1": 62, "t2": 328, "t3": 460},
    "R_IBN_b10": {"t1": 62, "t2": 328, "t3": 396},
    "R_IBN_b2": {"t1": 62, "t2": 328, "t3": 348},
    # The paper's observed simulation values (authors' simulator):
    "R_sim_b10_paper": {"t1": 62, "t2": 324, "t3": 352},
    "R_sim_b2_paper": {"t1": 62, "t2": 324, "t3": 336},
}

FLOW_ORDER = ("t1", "t2", "t3")

#: The simulation columns' buffer depths, in the paper's column order.
SIM_BUFS = ((10, "R_sim_b10"), (2, "R_sim_b2"))


@dataclass
class DidacticTables:
    """Computed Table I/II content."""

    table1_rows: list[tuple] = field(default_factory=list)
    #: column label -> {flow: value}
    table2: dict[str, dict[str, int]] = field(default_factory=dict)

    def render(self) -> str:
        """Format both tables in the paper's layout (plain text)."""
        lines = ["Table I: flow parameters"]
        lines.append("flow  C    (L, |route|)  T     D     J  P")
        for row in self.table1_rows:
            name, c, length, hops, t, d, j, p = row
            lines.append(
                f"{name:<4}  {c:<4} ({length}, {hops})      {t:<5} {d:<5} {j}  {p}"
            )
        lines.append("")
        lines.append("Table II: analysis and simulation results")
        labels = list(self.table2)
        lines.append("flow  " + "  ".join(f"{label:>12}" for label in labels))
        for name in FLOW_ORDER:
            cells = "  ".join(
                f"{self.table2[label].get(name, 0):>12}" for label in labels
            )
            lines.append(f"{name:<4}  {cells}")
        return "\n".join(lines)


def _analysis_tables() -> DidacticTables:
    """Table I plus the four analysis columns of Table II."""
    tables = DidacticTables()
    flows = didactic_flows()
    flowset2 = didactic_flowset(buf=2)
    for flow in flows:
        route = flowset2.route(flow.name)
        tables.table1_rows.append(
            (
                flow.name,
                flowset2.c(flow.name),
                flow.length,
                len(route),
                flow.period,
                flow.deadline,
                flow.jitter,
                flow.priority,
            )
        )

    # Rebind rather than rebuild so the interference graph can be shared
    # (the geometry is buffer-independent).
    flowset10 = flowset2.on_platform(flowset2.platform.with_buffers(10))
    graph = InterferenceGraph(flowset2)

    def column(flowset, analysis) -> dict[str, int]:
        result = analyze(flowset, analysis, graph=graph, stop_at_deadline=False)
        return {name: result.response_time(name) for name in FLOW_ORDER}

    tables.table2["R_SB"] = column(flowset2, SBAnalysis())
    tables.table2["R_XLWX"] = column(flowset2, XLWXAnalysis())
    tables.table2["R_IBN_b10"] = column(flowset10, IBNAnalysis())
    tables.table2["R_IBN_b2"] = column(flowset2, IBNAnalysis())
    return tables


def didactic_table_spec(
    *,
    name: str = "table2",
    with_simulation: bool = True,
    offset_step: int = 1,
    release_horizon: int = 6001,
    chunk_size: int | None = None,
    with_paper_note: bool = True,
) -> CampaignSpec:
    """Declare the Table I/II regeneration as a campaign spec."""
    return CampaignSpec(
        kind="didactic_table",
        name=name,
        params={
            "with_simulation": with_simulation,
            "offset_step": offset_step,
            "release_horizon": release_horizon,
            "chunk_size": chunk_size,
            "with_paper_note": with_paper_note,
        },
    )


def _didactic_params(spec: CampaignSpec) -> dict:
    """Validated spec parameters with kind defaults (JSON specs too)."""
    return {
        "with_simulation": spec_param(spec, "with_simulation", True),
        "offset_step": spec_param(spec, "offset_step", 1),
        "release_horizon": spec_param(spec, "release_horizon", 6001),
        "chunk_size": chunk_size_param(spec),
    }


def _didactic_plan(spec: CampaignSpec) -> Plan:
    """Expand each simulated buffer depth's τ1 sweep into sim chunks."""
    p = _didactic_params(spec)
    if not p["with_simulation"]:
        return Plan(jobs=[], context=[])
    flows = didactic_flows()
    groups = []
    for buf, label in SIM_BUFS:
        jobs, _ = expand_sim_chunks(
            spec.name,
            f"buf={buf}",
            {"kind": "didactic", "buf": buf},
            didactic_flowset(buf=buf),
            {"t1": range(0, flows[0].period, p["offset_step"])},
            p["release_horizon"],
            p["chunk_size"],
        )
        groups.append({"label": label, "jobs": jobs})
    return Plan(
        jobs=[job for group in groups for job in group["jobs"]],
        context=groups,
    )


def _didactic_aggregate(
    spec: CampaignSpec, plan: Plan, results: Mapping[str, Mapping]
) -> DidacticTables:
    tables = _analysis_tables()
    for group in plan.context:
        worst = fold_worst([results[job.job_id] for job in group["jobs"]])
        tables.table2[group["label"]] = {
            name: worst.get(name, 0) for name in FLOW_ORDER
        }
    return tables


def _didactic_render(spec: CampaignSpec, tables: DidacticTables) -> str:
    lines = [tables.render()]
    if spec.params.get("with_paper_note", True):
        lines.append("")
        lines.append("Paper's Table II (for comparison):")
        for label, values in PAPER_TABLE2.items():
            rendered = "  ".join(f"{k}={v}" for k, v in values.items())
            lines.append(f"  {label:<18} {rendered}")
    return "\n".join(lines)


def _didactic_jsonable(spec: CampaignSpec, tables: DidacticTables) -> dict:
    return {
        "table1_rows": [list(row) for row in tables.table1_rows],
        "table2": tables.table2,
    }


DIDACTIC_TABLE_KIND = register_kind(
    CampaignKind(
        name="didactic_table",
        plan=_didactic_plan,
        aggregate=_didactic_aggregate,
        render=_didactic_render,
        to_csv=None,
        to_jsonable=_didactic_jsonable,
    )
)


def didactic_tables(
    *,
    with_simulation: bool = True,
    offset_step: int = 1,
    release_horizon: int = 6001,
    workers: int = 1,
    progress: Progress | None = None,
) -> DidacticTables:
    """Recompute Tables I and II (an ephemeral campaign-engine run).

    ``offset_step`` thins the τ1 offset sweep (1 = every phase, the paper's
    exhaustive setting; larger steps trade fidelity for speed).
    ``workers`` parallelises the sweep's simulations without changing its
    outcome.
    """
    from repro.campaigns.engine import run_campaign

    spec = didactic_table_spec(
        with_simulation=with_simulation,
        offset_step=offset_step,
        release_horizon=release_horizon,
    )
    return run_campaign(spec, workers=workers, progress=progress).result
