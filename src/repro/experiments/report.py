"""Rendering of campaign results: ASCII charts, row tables and CSV."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.util.ascii_chart import ascii_chart
from repro.util.csvout import series_to_csv

if TYPE_CHECKING:  # import cycle guard: sweeps import this module
    from repro.experiments.schedulability_sweep import SweepResult


def sweep_rows(result: SweepResult) -> str:
    """Tabulate a sweep: one row per x value, one column per curve."""
    labels = list(result.series)
    header = [result.x_label] + labels
    widths = [max(len(header[0]), 10)] + [max(len(label), 6) for label in labels]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row_index, x in enumerate(result.x_values):
        cells = [str(x).ljust(widths[0])]
        for col, label in enumerate(labels, start=1):
            cells.append(f"{result.series[label][row_index]:.1f}".ljust(widths[col]))
        lines.append("  ".join(cells).rstrip())
    return "\n".join(lines)


def sweep_chart(result: SweepResult, *, title: str = "", height: int = 14) -> str:
    """ASCII chart of a sweep (y axis: % schedulable)."""
    return ascii_chart(
        [str(x) for x in result.x_values],
        result.series,
        height=height,
        y_min=0.0,
        y_max=100.0,
        y_label="% schedulable",
        title=title,
    )


def sweep_csv(result: SweepResult) -> str:
    """CSV of a sweep, x-axis first column."""
    return series_to_csv(result.x_label, result.x_values, result.series)


def render_sweep(result: SweepResult, *, title: str) -> str:
    """Full text report: rows + chart."""
    return "\n".join(
        [
            title,
            f"({result.sets_per_point} samples per point)",
            "",
            sweep_rows(result),
            "",
            sweep_chart(result, title=title),
        ]
    )
