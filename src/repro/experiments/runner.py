"""Command-line front end for the reproduction campaigns.

Usage::

    python -m repro.experiments.runner table2 [--scale default]
    python -m repro.experiments.runner fig4a [--scale paper] [--workers 8]
    python -m repro.experiments.runner fig4b
    python -m repro.experiments.runner fig5
    python -m repro.experiments.runner buffers
    python -m repro.experiments.runner routing
    python -m repro.experiments.runner validate [--workers 8]
    python -m repro.experiments.runner all --csv-dir results/ [--run-dir runs/]

Each command is a declarative :class:`~repro.campaigns.CampaignSpec`
built from the scale preset and handed to the campaign engine; the
rendered table/figure goes to stdout through the shared exporter layer,
``--csv-dir`` adds CSV files (the directory is created if missing), and
``--run-dir`` makes runs resumable: killed campaigns pick up where they
stopped, skipping every job already in the per-command result store.
``all`` keeps going when a command fails and exits non-zero if any did.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from pathlib import Path

from repro.campaigns.engine import run_campaign
from repro.campaigns.export import CsvExporter, TextExporter
from repro.campaigns.progress import stderr_progress
from repro.campaigns.scheduler import FaultPolicy
from repro.campaigns.spec import CampaignSpec
from repro.experiments.av_topologies import av_topologies_spec
from repro.experiments.buffer_sweep import buffer_sweep_spec
from repro.experiments.didactic_table import didactic_table_spec
from repro.experiments.routing_study import routing_spec
from repro.experiments.scale import Scale, get_scale
from repro.experiments.schedulability_sweep import schedulability_spec
from repro.experiments.validation_sweep import validation_spec


def _fig4_spec(scale: Scale, panel: str) -> CampaignSpec:
    """``fig4a``/``fig4b``: one Figure 4 panel at the chosen scale."""
    if panel == "a":
        mesh, counts = (4, 4), scale.fig4a_flow_counts
    else:
        mesh, counts = (8, 8), scale.fig4b_flow_counts
    return schedulability_spec(
        mesh,
        counts,
        scale.fig4_sets_per_point,
        seed=scale.seed,
        name=f"fig4{panel}",
        title=(
            f"Figure 4({panel}): % schedulable flow sets on "
            f"{mesh[0]}x{mesh[1]}"
        ),
        gap_notes=[
            {
                "label": "XLWX->IBN2",
                "upper": "IBN2",
                "lower": "XLWX",
                "paper": "58" if panel == "a" else "45",
            },
            {
                "label": "IBN100->IBN2",
                "upper": "IBN2",
                "lower": "IBN100",
                "paper": "8",
            },
        ],
    )


def _fig5_spec(scale: Scale) -> CampaignSpec:
    """``fig5``: the AV-benchmark topology study."""
    return av_topologies_spec(
        scale.fig5_topologies,
        scale.fig5_mappings,
        seed=scale.seed,
        name="fig5",
        title="Figure 5: % schedulable AV mappings",
        gap_notes=[
            {"label": "XLWX->IBN2", "upper": "IBN2", "lower": "XLWX",
             "paper": "67"},
            {"label": "IBN100->IBN2", "upper": "IBN2", "lower": "IBN100",
             "paper": "6"},
        ],
    )


def _routing_spec(scale: Scale) -> CampaignSpec:
    """``routing``: XY-vs-YX sensitivity ablation."""
    counts = scale.fig4a_flow_counts[: max(3, len(scale.fig4a_flow_counts) // 2)]
    return routing_spec(
        (4, 4), counts, scale.fig4_sets_per_point, seed=scale.seed
    )


def _buffers_spec(scale: Scale) -> CampaignSpec:
    """``buffers``: the Section VI buffer-depth sweep."""
    return buffer_sweep_spec(
        (4, 4),
        scale.buffer_depths,
        scale.buffer_flow_count,
        scale.buffer_sets,
        seed=scale.seed,
    )


def _validate_spec(scale: Scale) -> CampaignSpec:
    """``validate``: simulated worst case vs SB/IBN/XLWX across depths."""
    return validation_spec(
        scale.validation_buffer_depths,
        seed=scale.seed,
        didactic_offset_step=scale.didactic_offset_step,
        synthetic_sets=scale.validation_synthetic_sets,
    )


def _table2_spec(scale: Scale) -> CampaignSpec:
    """``table2``: regenerate Tables I & II with the scale's offset sweep."""
    return didactic_table_spec(offset_step=scale.didactic_offset_step)


#: command -> spec builder; the engine and exporters do the rest.
_COMMANDS = {
    "table2": _table2_spec,
    "validate": _validate_spec,
    "fig4a": lambda scale: _fig4_spec(scale, "a"),
    "fig4b": lambda scale: _fig4_spec(scale, "b"),
    "fig5": _fig5_spec,
    "buffers": _buffers_spec,
    "routing": _routing_spec,
}


def run_command(
    name: str,
    scale: Scale,
    workers: int,
    csv_dir: Path | None,
    run_dir: Path | None,
    faults: FaultPolicy | None = None,
):
    """Build one command's spec, run it and export the results."""
    spec = _COMMANDS[name](scale)
    run = run_campaign(
        spec,
        store=None if run_dir is None else run_dir / spec.name,
        workers=workers,
        progress=stderr_progress,
        faults=faults,
    )
    TextExporter().export(run)
    if csv_dir is not None:
        CsvExporter(csv_dir).export(run)
    return run


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.experiments.runner``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Regenerate the paper's tables and figures.",
        epilog=(
            "Resume: with --run-dir every command keeps a content-addressed "
            "result store under <run-dir>/<name>/; re-running the same "
            "command (or `all`) after a kill or crash skips every job "
            "already stored and recomputes only the rest, reproducing the "
            "output byte-identically. Example: "
            "`python -m repro experiments all --csv-dir results/ "
            "--run-dir runs/` — interrupt it, run it again, and it picks "
            "up where it stopped."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*_COMMANDS, "all"],
        help="which table/figure to regenerate ('all' runs every command, "
             "keeps going past failures, and resumes via --run-dir)",
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="scale preset: ci, default or paper (default: $REPRO_SCALE or ci)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes for sweeps"
    )
    parser.add_argument(
        "--csv-dir", type=Path, default=None, help="also write CSV files here"
    )
    parser.add_argument(
        "--run-dir", type=Path, default=None,
        help="result-store root making each command's campaign resumable",
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="re-executions per failing job before it is quarantined "
             "(default 2: each job runs at most 3 times)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per job block; hung blocks are killed, "
             "retried and eventually quarantined (default: unlimited)",
    )
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)
    faults = FaultPolicy(retries=args.retries, job_timeout_s=args.job_timeout)
    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
    chosen = list(_COMMANDS) if args.experiment == "all" else [args.experiment]
    failures: list[dict] = []
    for name in chosen:
        start = time.time()
        print(f"=== {name} (scale={scale.name}) ===")
        try:
            run = run_command(
                name, scale, args.workers, args.csv_dir, args.run_dir, faults
            )
            if run.partial:
                # Quarantined jobs mean the artefact is incomplete:
                # report it like a failure but keep the partial output.
                failures.append({
                    "name": name,
                    "error": (
                        f"partial: {run.stats.jobs_quarantined} of "
                        f"{run.stats.jobs_total} jobs quarantined"
                    ),
                    "elapsed_s": round(time.time() - start, 1),
                })
                print(f"=== {name} PARTIAL ===", file=sys.stderr)
        except Exception as exc:
            # `all` campaigns keep going: one broken experiment should
            # not lose the completed ones or the remaining runs.
            if args.experiment != "all":
                raise
            failures.append({
                "name": name,
                "error": repr(exc),
                "elapsed_s": round(time.time() - start, 1),
            })
            print(f"=== {name} FAILED ===", file=sys.stderr)
            traceback.print_exc()
        print(f"=== {name} done in {time.time() - start:.1f}s ===\n")
    if failures:
        print(
            f"{len(failures)} command(s) failed:", file=sys.stderr
        )
        for record in failures:
            print(
                f"  {record['name']}: {record['error']} "
                f"(after {record['elapsed_s']}s)",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
