"""Command-line front end for the reproduction campaigns.

Usage::

    python -m repro.experiments.runner table2 [--scale default]
    python -m repro.experiments.runner fig4a [--scale paper] [--workers 8]
    python -m repro.experiments.runner fig4b
    python -m repro.experiments.runner fig5
    python -m repro.experiments.runner buffers
    python -m repro.experiments.runner validate [--workers 8]
    python -m repro.experiments.runner all --csv-dir results/

Each command prints the regenerated table/figure as text (rows + ASCII
chart) and optionally writes CSV files for external plotting.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.av_topologies import av_topology_study
from repro.experiments.buffer_sweep import buffer_sweep
from repro.experiments.didactic_table import PAPER_TABLE2, didactic_tables
from repro.experiments.report import render_sweep, sweep_csv
from repro.experiments.scale import Scale, get_scale
from repro.experiments.schedulability_sweep import schedulability_sweep
from repro.util.csvout import write_csv


def _progress(message: str) -> None:
    print(f"  .. {message}", file=sys.stderr)


def run_table2(scale: Scale, workers: int, csv_dir: Path | None) -> None:
    """``table2``: regenerate Tables I & II with the scale's offset sweep."""
    tables = didactic_tables(
        offset_step=scale.didactic_offset_step, workers=workers
    )
    print(tables.render())
    print()
    print("Paper's Table II (for comparison):")
    for label, values in PAPER_TABLE2.items():
        rendered = "  ".join(f"{k}={v}" for k, v in values.items())
        print(f"  {label:<18} {rendered}")


def run_fig4(
    scale: Scale, workers: int, csv_dir: Path | None, *, panel: str
) -> None:
    """``fig4a``/``fig4b``: one Figure 4 panel at the chosen scale."""
    if panel == "a":
        mesh, counts = (4, 4), scale.fig4a_flow_counts
    else:
        mesh, counts = (8, 8), scale.fig4b_flow_counts
    result = schedulability_sweep(
        mesh,
        counts,
        scale.fig4_sets_per_point,
        seed=scale.seed,
        workers=workers,
        progress=_progress,
    )
    title = f"Figure 4({panel}): % schedulable flow sets on {mesh[0]}x{mesh[1]}"
    print(render_sweep(result, title=title))
    print()
    print(f"max XLWX->IBN2 gap: {result.max_gap('IBN2', 'XLWX'):.1f}% "
          f"(paper: up to {'58' if panel == 'a' else '45'}%)")
    print(f"max IBN100->IBN2 gap: {result.max_gap('IBN2', 'IBN100'):.1f}% "
          f"(paper: up to 8%)")
    if csv_dir is not None:
        write_csv(csv_dir / f"fig4{panel}.csv", sweep_csv(result))


def run_fig5(scale: Scale, workers: int, csv_dir: Path | None) -> None:
    """``fig5``: the AV-benchmark topology study."""
    result = av_topology_study(
        scale.fig5_topologies,
        scale.fig5_mappings,
        seed=scale.seed,
        workers=workers,
        progress=_progress,
    )
    print(render_sweep(result, title="Figure 5: % schedulable AV mappings"))
    print()
    print(f"max XLWX->IBN2 gap: {result.max_gap('IBN2', 'XLWX'):.1f}% "
          "(paper: up to 67%)")
    print(f"max IBN100->IBN2 gap: {result.max_gap('IBN2', 'IBN100'):.1f}% "
          "(paper: up to 6%)")
    if csv_dir is not None:
        write_csv(csv_dir / "fig5.csv", sweep_csv(result))


def run_routing(scale: Scale, workers: int, csv_dir: Path | None) -> None:
    """``routing``: XY-vs-YX sensitivity ablation."""
    from repro.experiments.routing_study import routing_comparison

    counts = scale.fig4a_flow_counts[: max(3, len(scale.fig4a_flow_counts) // 2)]
    result = routing_comparison(
        (4, 4),
        counts,
        scale.fig4_sets_per_point,
        seed=scale.seed,
        progress=_progress,
    )
    print(render_sweep(result, title="Routing sensitivity (XY vs YX) on 4x4"))
    if csv_dir is not None:
        write_csv(csv_dir / "routing.csv", sweep_csv(result))


def run_buffers(scale: Scale, workers: int, csv_dir: Path | None) -> None:
    """``buffers``: the Section VI buffer-depth sweep."""
    result = buffer_sweep(
        (4, 4),
        scale.buffer_depths,
        scale.buffer_flow_count,
        scale.buffer_sets,
        seed=scale.seed,
        progress=_progress,
    )
    print(render_sweep(
        result,
        title=f"Buffer-depth ablation (IBN, {scale.buffer_flow_count} flows on 4x4)",
    ))
    if csv_dir is not None:
        write_csv(csv_dir / "buffer_sweep.csv", sweep_csv(result))


def run_validate(scale: Scale, workers: int, csv_dir: Path | None) -> None:
    """``validate``: simulated worst case vs SB/IBN/XLWX across depths."""
    from repro.experiments.validation_sweep import (
        render_validation,
        validation_sweep,
    )

    result = validation_sweep(
        scale.validation_buffer_depths,
        seed=scale.seed,
        didactic_offset_step=scale.didactic_offset_step,
        synthetic_sets=scale.validation_synthetic_sets,
        workers=workers,
        progress=_progress,
    )
    print(render_validation(
        result, title="Validation: worst observed latency vs bounds"
    ))
    violations = result.violations()
    if violations:
        print(f"\nWARNING: {len(violations)} safe-bound violations!")
    else:
        print("\nAll observations within the safe IBN/XLWX bounds; "
              f"{len(result.mpb_rows())} rows exceed SB (MPB).")
    if csv_dir is not None:
        write_csv(csv_dir / "validation.csv", result.to_csv())


_COMMANDS = {
    "table2": run_table2,
    "validate": run_validate,
    "fig4a": lambda s, w, c: run_fig4(s, w, c, panel="a"),
    "fig4b": lambda s, w, c: run_fig4(s, w, c, panel="b"),
    "fig5": run_fig5,
    "buffers": run_buffers,
    "routing": run_routing,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.experiments.runner``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*_COMMANDS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="scale preset: ci, default or paper (default: $REPRO_SCALE or ci)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes for sweeps"
    )
    parser.add_argument(
        "--csv-dir", type=Path, default=None, help="also write CSV files here"
    )
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)
    chosen = list(_COMMANDS) if args.experiment == "all" else [args.experiment]
    for name in chosen:
        start = time.time()
        print(f"=== {name} (scale={scale.name}) ===")
        _COMMANDS[name](scale, args.workers, args.csv_dir)
        print(f"=== {name} done in {time.time() - start:.1f}s ===\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
