"""Bound-vs-observed validation: simulated worst cases against the bounds.

The paper validates its analytical story with cycle-accurate simulation
(Section V, Table II): the worst latency observed under a release-offset
sweep must sit below every *safe* bound (IBN, XLWX) and — in MPB
scenarios with deep buffers — **above** the optimistic SB bound.  This
campaign generalises that check across buffer depths and workloads:

* the **didactic** Table I scenario, swept over τ1 release phases
  exactly like the paper's simulation columns, at every depth of the
  scale preset (not just the paper's 2 and 10);
* small **synthetic** flow sets (Section VI generator parameters scaled
  down to simulation-friendly periods), each swept over the phases of
  its two highest-priority flows — the dominant interferers.

Per (workload, depth, flow) row the campaign records the observed worst
latency next to the SB / IBN(depth) / XLWX bounds, flags safe-bound
violations (there must be none — this is the reproduction's strongest
end-to-end evidence) and MPB sightings (observed > SB), and renders the
usual text table + ASCII chart + CSV.

Runs on the campaign engine: :func:`validation_spec` expands every
(workload, depth) offset search into content-addressed ``sim_chunk``
jobs running on the fast-lane simulator, with the shift-dominance
pruning of :func:`repro.sim.worstcase.enumerate_phasings` applied at
expansion time — which is what makes the paper-scale phasing grids
affordable, and interrupted sweeps resumable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.campaigns.progress import Progress
from repro.campaigns.registry import CampaignKind, Plan, register_kind
from repro.campaigns.spec import (
    CampaignSpec,
    Job,
    chunk_size_param,
    spec_param,
)
from repro.core.analyses.ibn import IBNAnalysis
from repro.core.analyses.sb import SBAnalysis
from repro.core.analyses.xlwx import XLWXAnalysis
from repro.core.engine import analyze
from repro.core.interference import InterferenceGraph
from repro.experiments.sim_jobs import expand_sim_chunks, fold_worst
from repro.flows.flowset import FlowSet
from repro.noc.platform import NoCPlatform
from repro.noc.topology import Mesh2D
from repro.util.ascii_chart import ascii_chart
from repro.util.csvout import series_to_csv
from repro.util.rng import spawn_rng
from repro.workloads.didactic import didactic_flowset
from repro.workloads.synthetic import SyntheticConfig, synthetic_flows

#: Column order of the per-row bounds.
BOUND_LABELS = ("SB", "IBN", "XLWX")


@dataclass(frozen=True)
class ValidationRow:
    """Observed worst latency vs. the three bounds for one flow."""

    workload: str
    buf: int
    flow: str
    observed: int
    #: label -> bound; None when that analysis did not converge.
    bounds: dict[str, int | None]

    @property
    def safe_ok(self) -> bool:
        """Observed within every *converged* safe bound (IBN, XLWX)."""
        return all(
            self.bounds[label] is None or self.observed <= self.bounds[label]
            for label in ("IBN", "XLWX")
        )

    @property
    def shows_mpb(self) -> bool:
        """Observed beyond SB's optimistic bound (the MPB phenomenon)."""
        sb = self.bounds["SB"]
        return sb is not None and self.observed > sb


@dataclass
class ValidationResult:
    """All rows of one validation campaign."""

    buffer_depths: tuple[int, ...]
    rows: list[ValidationRow] = field(default_factory=list)
    #: simulator runs executed / phasings pruned across all searches.
    runs: int = 0
    pruned: int = 0

    def violations(self) -> list[ValidationRow]:
        """Rows where the observation exceeds a safe bound (must be [])."""
        return [row for row in self.rows if not row.safe_ok]

    def mpb_rows(self) -> list[ValidationRow]:
        """Rows demonstrating multi-point progressive blocking."""
        return [row for row in self.rows if row.shows_mpb]

    def flow_series(
        self, workload: str, flow: str
    ) -> dict[str, list[float]]:
        """Observed + bounds across buffer depths for one flow."""
        picked = {
            row.buf: row for row in self.rows
            if row.workload == workload and row.flow == flow
        }
        series: dict[str, list[float]] = {"sim": []}
        for label in BOUND_LABELS:
            series[label] = []
        for buf in self.buffer_depths:
            row = picked[buf]
            series["sim"].append(float(row.observed))
            for label in BOUND_LABELS:
                bound = row.bounds[label]
                series[label].append(
                    float(bound) if bound is not None else float("nan")
                )
        return series

    def max_gap(self, workload: str, flow: str, label: str) -> int:
        """Largest bound-minus-observed gap for one flow and bound."""
        gaps = [
            row.bounds[label] - row.observed
            for row in self.rows
            if row.workload == workload and row.flow == flow
            and row.bounds[label] is not None
        ]
        if not gaps:
            raise ValueError(
                f"no converged {label!r} rows for {workload!r}/{flow!r}"
            )
        return max(gaps)

    def to_csv(self) -> str:
        """One CSV row per (workload, buf, flow)."""
        x_values = [
            f"{row.workload}/b{row.buf}/{row.flow}" for row in self.rows
        ]
        series = {"observed": [float(r.observed) for r in self.rows]}
        for label in BOUND_LABELS:
            series[label] = [
                float(r.bounds[label])
                if r.bounds[label] is not None else float("nan")
                for r in self.rows
            ]
        return series_to_csv("scenario", x_values, series)


#: The Section VI generator, rescaled for simulation: with a 1 MHz clock
#: the paper's wall-clock shape maps onto periods of 600–3000 cycles and
#: packets of 4–40 flits, so a multi-period release-offset sweep drains
#: in milliseconds while keeping the generator itself (uniform draws,
#: random endpoints, rate-monotonic priorities) the paper's.
VALIDATION_CONFIG = dict(
    period_min_s=0.6e-3,
    period_max_s=3e-3,
    length_min=4,
    length_max=40,
    clock_hz=1e6,
)


def synthetic_validation_flowset(
    platform: NoCPlatform, seed: int, set_index: int, num_flows: int
) -> FlowSet:
    """One simulation-scale random flow set from the Section VI generator."""
    rng = spawn_rng(seed, "validation", set_index)
    config = SyntheticConfig(num_flows=num_flows, **VALIDATION_CONFIG)
    flows = synthetic_flows(config, platform.topology.num_nodes, rng)
    return FlowSet(platform, flows)


def _flow_bounds(flowset: FlowSet, graph: InterferenceGraph, analysis):
    """One analysis' response time per flow (None when unconverged)."""
    result = analyze(flowset, analysis, graph=graph, stop_at_deadline=False)
    return _bounds_of(result)


def _bounds_of(result) -> dict[str, int | None]:
    """Per-flow exact bounds out of one result (None when unconverged)."""
    return {
        name: (fr.response_time if fr.converged else None)
        for name, fr in result.flows.items()
    }


def validation_spec(
    buffer_depths: Sequence[int],
    *,
    seed: int,
    name: str = "validation",
    didactic_offset_step: int = 20,
    didactic_horizon: int = 6001,
    synthetic_sets: int = 2,
    synthetic_flows: int = 6,
    synthetic_mesh: tuple[int, int] = (3, 3),
    chunk_size: int | None = None,
    title: str | None = None,
) -> CampaignSpec:
    """Declare one bound-vs-observed validation sweep as a campaign spec."""
    depths = list(buffer_depths)
    if not depths:
        raise ValueError("need at least one buffer depth")
    return CampaignSpec(
        kind="validation",
        name=name,
        params={
            "buffer_depths": depths,
            "seed": seed,
            "didactic_offset_step": didactic_offset_step,
            "didactic_horizon": didactic_horizon,
            "synthetic_sets": synthetic_sets,
            "synthetic_flows": synthetic_flows,
            "synthetic_mesh": list(synthetic_mesh),
            "chunk_size": chunk_size,
            "title": title,
        },
    )


@dataclass
class _SearchGroup:
    """One (workload, depth) offset search expanded into chunk jobs."""

    workload: str
    workload_params: dict
    buf: int
    jobs: list[Job]
    pruned: int


def _chunked_search(
    spec_name: str,
    workload: str,
    workload_params: dict,
    flowset: FlowSet,
    vary: Mapping[str, Sequence[int]],
    horizon: int,
    chunk_size: int | None,
) -> _SearchGroup:
    """Expand one offset search into ``sim_chunk`` jobs."""
    jobs, pruned = expand_sim_chunks(
        spec_name,
        f"{workload} buf={workload_params['buf']}",
        workload_params,
        flowset,
        vary,
        horizon,
        chunk_size,
    )
    return _SearchGroup(
        workload=workload,
        workload_params=workload_params,
        buf=workload_params["buf"],
        jobs=jobs,
        pruned=pruned,
    )


def _validation_params(spec: CampaignSpec) -> dict:
    """Validated spec parameters with kind defaults (JSON specs too)."""
    return {
        "buffer_depths": spec_param(spec, "buffer_depths"),
        "seed": spec_param(spec, "seed"),
        "didactic_offset_step": spec_param(spec, "didactic_offset_step", 20),
        "didactic_horizon": spec_param(spec, "didactic_horizon", 6001),
        "synthetic_sets": spec_param(spec, "synthetic_sets", 2),
        "synthetic_flows": spec_param(spec, "synthetic_flows", 6),
        "synthetic_mesh": spec_param(spec, "synthetic_mesh", [3, 3]),
        "chunk_size": chunk_size_param(spec),
    }


def _validation_plan(spec: CampaignSpec) -> Plan:
    """Expand the didactic and synthetic searches, depth-major."""
    p = _validation_params(spec)
    depths = p["buffer_depths"]
    chunk_size = p["chunk_size"]
    groups: list[_SearchGroup] = []

    base_didactic = didactic_flowset(buf=depths[0])
    t1_period = base_didactic.flow("t1").period
    for buf in depths:
        flowset = base_didactic.on_platform(
            base_didactic.platform.with_buffers(buf)
        )
        groups.append(
            _chunked_search(
                spec.name,
                "didactic",
                {"kind": "didactic", "buf": buf},
                flowset,
                {"t1": range(0, t1_period, p["didactic_offset_step"])},
                p["didactic_horizon"],
                chunk_size,
            )
        )

    base_platform = NoCPlatform(Mesh2D(*p["synthetic_mesh"]), buf=depths[0])
    for set_index in range(p["synthetic_sets"]):
        base_flowset = synthetic_validation_flowset(
            base_platform, p["seed"], set_index, p["synthetic_flows"]
        )
        # Sweep the phases of the two fastest (highest-priority) flows —
        # the interference sources the bounds reason about.
        interferers = [f for f in base_flowset.flows][:2]
        vary = {
            f.name: range(0, f.period, max(1, f.period // 6))
            for f in interferers
        }
        horizon = 3 * max(f.period for f in base_flowset.flows)
        for buf in depths:
            flowset = base_flowset.on_platform(
                base_platform.with_buffers(buf)
            )
            groups.append(
                _chunked_search(
                    spec.name,
                    f"synthetic-{set_index}",
                    {
                        "kind": "validation_synthetic",
                        "mesh": p["synthetic_mesh"],
                        "buf": buf,
                        "seed": p["seed"],
                        "set_index": set_index,
                        "num_flows": p["synthetic_flows"],
                    },
                    flowset,
                    vary,
                    horizon,
                    chunk_size,
                )
            )
    return Plan(
        jobs=[job for group in groups for job in group.jobs],
        context=groups,
    )


def _validation_aggregate(
    spec: CampaignSpec, plan: Plan, results: Mapping[str, Mapping]
) -> ValidationResult:
    """Rebuild the bounds and fold the simulated maxima into rows."""
    p = _validation_params(spec)
    depths = tuple(p["buffer_depths"])
    result = ValidationResult(buffer_depths=depths)

    # The interference graph and the SB/XLWX bounds are all
    # buffer-independent: build them once per workload and rebind the
    # flow set per depth, recomputing only IBN.
    base_flowsets: dict[str, FlowSet] = {
        "didactic": didactic_flowset(buf=depths[0])
    }
    base_platform = NoCPlatform(Mesh2D(*p["synthetic_mesh"]), buf=depths[0])
    for set_index in range(p["synthetic_sets"]):
        base_flowsets[f"synthetic-{set_index}"] = (
            synthetic_validation_flowset(
                base_platform, p["seed"], set_index, p["synthetic_flows"]
            )
        )
    graphs = {
        name: InterferenceGraph(flowset)
        for name, flowset in base_flowsets.items()
    }
    # Every bound of the whole campaign — SB and XLWX once per workload
    # (buffer-independent), IBN once per (workload, depth) — is one
    # mixed-analysis batch through the columnar kernel; results are
    # byte-identical to the per-call scalar runs they replace.
    from repro.core.batch import Scenario, analyze_batch

    scenarios: list[Scenario] = []
    keys: list[tuple] = []
    for name, flowset in base_flowsets.items():
        for label, analysis in (("SB", SBAnalysis()), ("XLWX", XLWXAnalysis())):
            scenarios.append(Scenario(flowset, analysis, graph=graphs[name]))
            keys.append((name, label))
    depth_flowsets: dict[tuple[str, int], FlowSet] = {}
    for group in plan.context:
        key = (group.workload, group.buf)
        if key in depth_flowsets:
            continue
        base_flowset = base_flowsets[group.workload]
        variant = base_flowset.on_platform(
            base_flowset.platform.with_buffers(group.buf)
        )
        depth_flowsets[key] = variant
        scenarios.append(
            Scenario(variant, IBNAnalysis(), graph=graphs[group.workload])
        )
        keys.append((group.workload, ("IBN", group.buf)))
    solved = analyze_batch(scenarios, stop_at_deadline=False)
    bound_table = {
        key: _bounds_of(result) for key, result in zip(keys, solved)
    }

    for group in plan.context:
        flowset = depth_flowsets[(group.workload, group.buf)]
        bounds = {
            "SB": bound_table[(group.workload, "SB")],
            "XLWX": bound_table[(group.workload, "XLWX")],
            "IBN": bound_table[(group.workload, ("IBN", group.buf))],
        }
        worst = fold_worst([results[job.job_id] for job in group.jobs])
        result.runs += sum(results[job.job_id]["runs"] for job in group.jobs)
        result.pruned += group.pruned
        if group.workload == "didactic":
            flow_names = ["t1", "t2", "t3"]
        else:
            flow_names = [flow.name for flow in flowset.flows]
        for flow_name in flow_names:
            result.rows.append(
                ValidationRow(
                    workload=group.workload,
                    buf=group.buf,
                    flow=flow_name,
                    observed=worst.get(flow_name, 0),
                    bounds={
                        label: bounds[label][flow_name]
                        for label in BOUND_LABELS
                    },
                )
            )
    return result


def render_validation(result: ValidationResult, *, title: str) -> str:
    """Full text report: per-row table plus the didactic τ3 chart."""
    lines = [title, ""]
    header = f"{'workload':<14} {'buf':>4} {'flow':<6} {'sim':>7} " + " ".join(
        f"{label:>7}" for label in BOUND_LABELS
    )
    lines.append(header + "  flags")
    lines.append("-" * len(header))
    for row in result.rows:
        cells = " ".join(
            f"{row.bounds[label]:>7}" if row.bounds[label] is not None
            else f"{'—':>7}"
            for label in BOUND_LABELS
        )
        flags = []
        if row.shows_mpb:
            flags.append("MPB>SB")
        if not row.safe_ok:
            flags.append("VIOLATION")
        lines.append(
            f"{row.workload:<14} {row.buf:>4} {row.flow:<6} "
            f"{row.observed:>7} {cells}  {' '.join(flags)}".rstrip()
        )
    lines.append("")
    lines.append(
        f"{result.runs} simulated phasings ({result.pruned} pruned as "
        f"time-shifts), {len(result.mpb_rows())} MPB rows, "
        f"{len(result.violations())} safe-bound violations"
    )
    series = result.flow_series("didactic", "t3")
    values = [
        v for vs in series.values() for v in vs if v == v  # drop NaNs
    ]
    lines.append("")
    lines.append(
        ascii_chart(
            [str(b) for b in result.buffer_depths],
            series,
            height=12,
            y_min=min(values) - 1.0,
            y_max=max(values) + 1.0,
            y_label="cycles",
            title="didactic τ3: observed vs bounds across buffer depths",
        )
    )
    return "\n".join(lines)


def _validation_render(spec: CampaignSpec, result: ValidationResult) -> str:
    title = spec.params.get("title") or (
        "Validation: worst observed latency vs bounds"
    )
    lines = [render_validation(result, title=title), ""]
    violations = result.violations()
    if violations:
        lines.append(f"WARNING: {len(violations)} safe-bound violations!")
    else:
        lines.append(
            "All observations within the safe IBN/XLWX bounds; "
            f"{len(result.mpb_rows())} rows exceed SB (MPB)."
        )
    return "\n".join(lines)


def _validation_csv(spec: CampaignSpec, result: ValidationResult) -> str:
    return result.to_csv()


def _validation_jsonable(spec: CampaignSpec, result: ValidationResult) -> dict:
    return {
        "buffer_depths": list(result.buffer_depths),
        "runs": result.runs,
        "pruned": result.pruned,
        "rows": [
            {
                "workload": row.workload,
                "buf": row.buf,
                "flow": row.flow,
                "observed": row.observed,
                "bounds": row.bounds,
                "safe_ok": row.safe_ok,
                "shows_mpb": row.shows_mpb,
            }
            for row in result.rows
        ],
    }


VALIDATION_KIND = register_kind(
    CampaignKind(
        name="validation",
        plan=_validation_plan,
        aggregate=_validation_aggregate,
        render=_validation_render,
        to_csv=_validation_csv,
        to_jsonable=_validation_jsonable,
    )
)


def validation_sweep(
    buffer_depths: Sequence[int],
    *,
    seed: int,
    didactic_offset_step: int = 20,
    didactic_horizon: int = 6001,
    synthetic_sets: int = 2,
    synthetic_flows: int = 6,
    synthetic_mesh: tuple[int, int] = (3, 3),
    workers: int = 1,
    progress: Progress | None = None,
) -> ValidationResult:
    """Sweep observed worst case vs. bounds across buffer depths.

    An ephemeral campaign-engine run: the didactic workload replays the
    paper's τ1 phase sweep per depth; each synthetic set sweeps the
    phases of its two highest-priority flows.  ``workers`` fans the
    spec's simulation chunks out over the shared scheduler pool (pool
    start-up is paid once for the whole campaign); the per-set seed
    derivation makes results identical for any worker count.
    """
    from repro.campaigns.engine import run_campaign

    spec = validation_spec(
        buffer_depths,
        seed=seed,
        didactic_offset_step=didactic_offset_step,
        didactic_horizon=didactic_horizon,
        synthetic_sets=synthetic_sets,
        synthetic_flows=synthetic_flows,
        synthetic_mesh=synthetic_mesh,
    )
    return run_campaign(spec, workers=workers, progress=progress).result
