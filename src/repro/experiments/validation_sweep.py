"""Bound-vs-observed validation: simulated worst cases against the bounds.

The paper validates its analytical story with cycle-accurate simulation
(Section V, Table II): the worst latency observed under a release-offset
sweep must sit below every *safe* bound (IBN, XLWX) and — in MPB
scenarios with deep buffers — **above** the optimistic SB bound.  This
campaign generalises that check across buffer depths and workloads:

* the **didactic** Table I scenario, swept over τ1 release phases
  exactly like the paper's simulation columns, at every depth of the
  scale preset (not just the paper's 2 and 10);
* small **synthetic** flow sets (Section VI generator parameters scaled
  down to simulation-friendly periods), each swept over the phases of
  its two highest-priority flows — the dominant interferers.

Per (workload, depth, flow) row the campaign records the observed worst
latency next to the SB / IBN(depth) / XLWX bounds, flags safe-bound
violations (there must be none — this is the reproduction's strongest
end-to-end evidence) and MPB sightings (observed > SB), and renders the
usual text table + ASCII chart + CSV.  The simulation side runs on the
fast-lane simulator through the parallel pruned
:func:`repro.sim.worstcase.offset_search`, which is what makes the
paper-scale phasing grids affordable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from repro.core.analyses.ibn import IBNAnalysis
from repro.core.analyses.sb import SBAnalysis
from repro.core.analyses.xlwx import XLWXAnalysis
from repro.core.engine import analyze
from repro.core.interference import InterferenceGraph
from repro.flows.flowset import FlowSet
from repro.noc.platform import NoCPlatform
from repro.noc.topology import Mesh2D
from repro.sim.worstcase import offset_search
from repro.util.ascii_chart import ascii_chart
from repro.util.csvout import series_to_csv
from repro.util.rng import spawn_rng
from repro.workloads.didactic import didactic_flowset
from repro.workloads.synthetic import SyntheticConfig, synthetic_flows

#: Column order of the per-row bounds.
BOUND_LABELS = ("SB", "IBN", "XLWX")


@dataclass(frozen=True)
class ValidationRow:
    """Observed worst latency vs. the three bounds for one flow."""

    workload: str
    buf: int
    flow: str
    observed: int
    #: label -> bound; None when that analysis did not converge.
    bounds: dict[str, int | None]

    @property
    def safe_ok(self) -> bool:
        """Observed within every *converged* safe bound (IBN, XLWX)."""
        return all(
            self.bounds[label] is None or self.observed <= self.bounds[label]
            for label in ("IBN", "XLWX")
        )

    @property
    def shows_mpb(self) -> bool:
        """Observed beyond SB's optimistic bound (the MPB phenomenon)."""
        sb = self.bounds["SB"]
        return sb is not None and self.observed > sb


@dataclass
class ValidationResult:
    """All rows of one validation campaign."""

    buffer_depths: tuple[int, ...]
    rows: list[ValidationRow] = field(default_factory=list)
    #: simulator runs executed / phasings pruned across all searches.
    runs: int = 0
    pruned: int = 0

    def violations(self) -> list[ValidationRow]:
        """Rows where the observation exceeds a safe bound (must be [])."""
        return [row for row in self.rows if not row.safe_ok]

    def mpb_rows(self) -> list[ValidationRow]:
        """Rows demonstrating multi-point progressive blocking."""
        return [row for row in self.rows if row.shows_mpb]

    def flow_series(
        self, workload: str, flow: str
    ) -> dict[str, list[float]]:
        """Observed + bounds across buffer depths for one flow."""
        picked = {
            row.buf: row for row in self.rows
            if row.workload == workload and row.flow == flow
        }
        series: dict[str, list[float]] = {"sim": []}
        for label in BOUND_LABELS:
            series[label] = []
        for buf in self.buffer_depths:
            row = picked[buf]
            series["sim"].append(float(row.observed))
            for label in BOUND_LABELS:
                bound = row.bounds[label]
                series[label].append(
                    float(bound) if bound is not None else float("nan")
                )
        return series

    def max_gap(self, workload: str, flow: str, label: str) -> int:
        """Largest bound-minus-observed gap for one flow and bound."""
        gaps = [
            row.bounds[label] - row.observed
            for row in self.rows
            if row.workload == workload and row.flow == flow
            and row.bounds[label] is not None
        ]
        if not gaps:
            raise ValueError(
                f"no converged {label!r} rows for {workload!r}/{flow!r}"
            )
        return max(gaps)

    def to_csv(self) -> str:
        """One CSV row per (workload, buf, flow)."""
        x_values = [
            f"{row.workload}/b{row.buf}/{row.flow}" for row in self.rows
        ]
        series = {"observed": [float(r.observed) for r in self.rows]}
        for label in BOUND_LABELS:
            series[label] = [
                float(r.bounds[label])
                if r.bounds[label] is not None else float("nan")
                for r in self.rows
            ]
        return series_to_csv("scenario", x_values, series)


#: The Section VI generator, rescaled for simulation: with a 1 MHz clock
#: the paper's wall-clock shape maps onto periods of 600–3000 cycles and
#: packets of 4–40 flits, so a multi-period release-offset sweep drains
#: in milliseconds while keeping the generator itself (uniform draws,
#: random endpoints, rate-monotonic priorities) the paper's.
VALIDATION_CONFIG = dict(
    period_min_s=0.6e-3,
    period_max_s=3e-3,
    length_min=4,
    length_max=40,
    clock_hz=1e6,
)


def synthetic_validation_flowset(
    platform: NoCPlatform, seed: int, set_index: int, num_flows: int
) -> FlowSet:
    """One simulation-scale random flow set from the Section VI generator."""
    rng = spawn_rng(seed, "validation", set_index)
    config = SyntheticConfig(num_flows=num_flows, **VALIDATION_CONFIG)
    flows = synthetic_flows(config, platform.topology.num_nodes, rng)
    return FlowSet(platform, flows)


def _flow_bounds(flowset: FlowSet, graph: InterferenceGraph, analysis):
    """One analysis' response time per flow (None when unconverged)."""
    result = analyze(flowset, analysis, graph=graph, stop_at_deadline=False)
    return {
        name: (fr.response_time if fr.converged else None)
        for name, fr in result.flows.items()
    }


def _invariant_bounds(
    flowset: FlowSet, graph: InterferenceGraph
) -> dict[str, dict[str, int | None]]:
    """The buffer-independent bounds, computed once per workload."""
    return {
        "SB": _flow_bounds(flowset, graph, SBAnalysis()),
        "XLWX": _flow_bounds(flowset, graph, XLWXAnalysis()),
    }


def validation_sweep(
    buffer_depths: Sequence[int],
    *,
    seed: int,
    didactic_offset_step: int = 20,
    didactic_horizon: int = 6001,
    synthetic_sets: int = 2,
    synthetic_flows: int = 6,
    synthetic_mesh: tuple[int, int] = (3, 3),
    workers: int = 1,
    progress: Callable[[str], None] | None = None,
) -> ValidationResult:
    """Sweep observed worst case vs. bounds across buffer depths.

    The didactic workload replays the paper's τ1 phase sweep per depth;
    each synthetic set sweeps the phases of its two highest-priority
    flows.  ``workers`` fans the offset searches out over one process
    pool shared by the whole campaign (pool start-up is paid once, not
    per search); the per-set seed derivation makes results identical
    for any worker count.
    """
    depths = tuple(buffer_depths)
    if not depths:
        raise ValueError("need at least one buffer depth")
    result = ValidationResult(buffer_depths=depths)
    campaign_kwargs = dict(
        seed=seed,
        didactic_offset_step=didactic_offset_step,
        didactic_horizon=didactic_horizon,
        synthetic_sets=synthetic_sets,
        synthetic_flows=synthetic_flows,
        synthetic_mesh=synthetic_mesh,
        progress=progress,
    )
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            _run_campaign(result, executor=executor, **campaign_kwargs)
    else:
        _run_campaign(result, executor=None, **campaign_kwargs)
    return result


def _run_campaign(result, *, executor, seed, didactic_offset_step,
                  didactic_horizon, synthetic_sets, synthetic_flows,
                  synthetic_mesh, progress):
    """Fill ``result`` with the didactic and synthetic rows."""
    depths = result.buffer_depths

    # -- didactic workload ------------------------------------------------
    base_didactic = didactic_flowset(buf=depths[0])
    graph = InterferenceGraph(base_didactic)
    # The interference graph and the SB/XLWX bounds are all
    # buffer-independent: build them once and rebind the flow set per
    # depth, recomputing only IBN.
    invariant = _invariant_bounds(base_didactic, graph)
    for buf in depths:
        flowset = base_didactic.on_platform(
            base_didactic.platform.with_buffers(buf)
        )
        bounds = dict(invariant)
        bounds["IBN"] = _flow_bounds(flowset, graph, IBNAnalysis())
        t1_period = flowset.flow("t1").period
        search = offset_search(
            flowset,
            {"t1": range(0, t1_period, didactic_offset_step)},
            release_horizon=didactic_horizon,
            executor=executor,
        )
        result.runs += search.runs
        result.pruned += search.pruned
        for name in ("t1", "t2", "t3"):
            result.rows.append(
                ValidationRow(
                    workload="didactic",
                    buf=buf,
                    flow=name,
                    observed=search.worst_latency(name),
                    bounds={
                        label: bounds[label][name] for label in BOUND_LABELS
                    },
                )
            )
        if progress is not None:
            progress(
                f"didactic buf={buf}: t3 sim={search.worst_latency('t3')} "
                f"IBN={bounds['IBN']['t3']} ({search.runs} phasings)"
            )

    # -- synthetic workloads ----------------------------------------------
    base_platform = NoCPlatform(Mesh2D(*synthetic_mesh), buf=depths[0])
    for set_index in range(synthetic_sets):
        base_flowset = synthetic_validation_flowset(
            base_platform, seed, set_index, synthetic_flows
        )
        workload = f"synthetic-{set_index}"
        graph = InterferenceGraph(base_flowset)
        # Sweep the phases of the two fastest (highest-priority) flows —
        # the interference sources the bounds reason about.
        interferers = [f for f in base_flowset.flows][:2]
        vary = {
            f.name: range(0, f.period, max(1, f.period // 6))
            for f in interferers
        }
        horizon = 3 * max(f.period for f in base_flowset.flows)
        invariant = _invariant_bounds(base_flowset, graph)
        for buf in depths:
            flowset = base_flowset.on_platform(
                base_platform.with_buffers(buf)
            )
            bounds = dict(invariant)
            bounds["IBN"] = _flow_bounds(flowset, graph, IBNAnalysis())
            search = offset_search(
                flowset, vary, release_horizon=horizon, executor=executor
            )
            result.runs += search.runs
            result.pruned += search.pruned
            for flow in flowset.flows:
                result.rows.append(
                    ValidationRow(
                        workload=workload,
                        buf=buf,
                        flow=flow.name,
                        observed=search.worst_latency(flow.name),
                        bounds={
                            label: bounds[label][flow.name]
                            for label in BOUND_LABELS
                        },
                    )
                )
            if progress is not None:
                progress(
                    f"{workload} buf={buf}: {search.runs} phasings, "
                    f"{len(result.violations())} safe-bound violations"
                )
    return result


def render_validation(result: ValidationResult, *, title: str) -> str:
    """Full text report: per-row table plus the didactic τ3 chart."""
    lines = [title, ""]
    header = f"{'workload':<14} {'buf':>4} {'flow':<6} {'sim':>7} " + " ".join(
        f"{label:>7}" for label in BOUND_LABELS
    )
    lines.append(header + "  flags")
    lines.append("-" * len(header))
    for row in result.rows:
        cells = " ".join(
            f"{row.bounds[label]:>7}" if row.bounds[label] is not None
            else f"{'—':>7}"
            for label in BOUND_LABELS
        )
        flags = []
        if row.shows_mpb:
            flags.append("MPB>SB")
        if not row.safe_ok:
            flags.append("VIOLATION")
        lines.append(
            f"{row.workload:<14} {row.buf:>4} {row.flow:<6} "
            f"{row.observed:>7} {cells}  {' '.join(flags)}".rstrip()
        )
    lines.append("")
    lines.append(
        f"{result.runs} simulated phasings ({result.pruned} pruned as "
        f"time-shifts), {len(result.mpb_rows())} MPB rows, "
        f"{len(result.violations())} safe-bound violations"
    )
    series = result.flow_series("didactic", "t3")
    values = [
        v for vs in series.values() for v in vs if v == v  # drop NaNs
    ]
    lines.append("")
    lines.append(
        ascii_chart(
            [str(b) for b in result.buffer_depths],
            series,
            height=12,
            y_min=min(values) - 1.0,
            y_max=max(values) + 1.0,
            y_label="cycles",
            title="didactic τ3: observed vs bounds across buffer depths",
        )
    )
    return "\n".join(lines)
