"""Figure 5: the AV benchmark mapped onto 26 NoC topologies.

For every topology, generate ``mappings`` random task-to-core mappings of
the AV application, and report the percentage of mappings deemed fully
schedulable by XLWX, IBN2 and IBN100 (SB is omitted, as in the paper's
Figure 5).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from repro.core.interference import InterferenceGraph
from repro.core.engine import is_schedulable
from repro.experiments.schedulability_sweep import (
    AnalysisSpec,
    SweepResult,
    fig4_specs,
)
from repro.noc.platform import NoCPlatform
from repro.noc.topology import Mesh2D
from repro.workloads.av_benchmark import DEFAULT_CLOCK_HZ, av_flowset

#: The paper's 26 topologies (x-axis order of Figure 5).
FIG5_TOPOLOGIES: tuple[tuple[int, int], ...] = (
    (2, 2), (3, 2), (3, 3), (4, 3), (4, 4), (5, 4), (6, 4), (5, 5),
    (7, 4), (6, 5), (7, 5), (6, 6), (8, 5), (7, 6), (8, 6), (7, 7),
    (9, 6), (8, 7), (9, 7), (8, 8), (10, 7), (9, 8), (10, 8), (9, 9),
    (10, 9), (10, 10),
)


def _study_one_topology(args: tuple) -> tuple[str, dict[str, float]]:
    (cols, rows, mappings, seed, small_buf, large_buf, clock_hz,
     length_scale) = args
    platform = NoCPlatform(Mesh2D(cols, rows), buf=small_buf)
    specs = fig4_specs(small_buf, large_buf, include_sb=False)
    counts = {spec.label: 0 for spec in specs}
    for mapping_index in range(mappings):
        flowset = av_flowset(
            platform,
            seed=seed,
            mapping_index=mapping_index,
            clock_hz=clock_hz,
            length_scale=length_scale,
        )
        graph = InterferenceGraph(flowset)
        for spec in specs:
            if spec.buf is None or spec.buf == platform.buf:
                fs = flowset
            else:
                fs = flowset.on_platform(platform.with_buffers(spec.buf))
            counts[spec.label] += is_schedulable(fs, spec.analysis, graph=graph)
    percentages = {
        label: 100.0 * count / mappings for label, count in counts.items()
    }
    return f"{cols}x{rows}", percentages


def av_topology_study(
    topologies: Sequence[tuple[int, int]] = FIG5_TOPOLOGIES,
    mappings: int = 100,
    *,
    seed: int,
    small_buf: int = 2,
    large_buf: int = 100,
    clock_hz: float = DEFAULT_CLOCK_HZ,
    length_scale: float = 2.0,
    workers: int = 1,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Run the Figure 5 campaign over the given topologies."""
    result = SweepResult(x_label="network topology", sets_per_point=mappings)
    jobs = [
        (cols, rows, mappings, seed, small_buf, large_buf, clock_hz,
         length_scale)
        for cols, rows in topologies
    ]
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_study_one_topology, jobs))
    else:
        outcomes = []
        for job in jobs:
            outcomes.append(_study_one_topology(job))
            if progress is not None:
                label, percentages = outcomes[-1]
                rendered = ", ".join(
                    f"{name}={value:.0f}%" for name, value in percentages.items()
                )
                progress(f"{label}: {rendered}")
    for label, percentages in outcomes:
        result.add_point(label, percentages)
    return result
