"""Figure 5: the AV benchmark mapped onto 26 NoC topologies.

For every topology, generate ``mappings`` random task-to-core mappings of
the AV application, and report the percentage of mappings deemed fully
schedulable by XLWX, IBN2 and IBN100 (SB is omitted, as in the paper's
Figure 5).

Runs on the campaign engine: :func:`av_topologies_spec` declares the
study, one content-addressed job per topology; identical topologies in
the grid share one stored result, and interrupted studies resume from
the result store.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.campaigns.progress import Progress
from repro.campaigns.registry import CampaignKind, Plan, register_kind
from repro.campaigns.scheduler import worker_platform
from repro.campaigns.spec import CampaignSpec, Job, spec_param
from repro.campaigns import registry as _registry
from repro.experiments.schedulability_sweep import (
    SweepResult,
    fig4_specs,
    render_gap_notes,
    spec_verdicts,
    sweep_csv_export,
    sweep_to_jsonable,
)
from repro.workloads.av_benchmark import DEFAULT_CLOCK_HZ, av_flowset

#: The paper's 26 topologies (x-axis order of Figure 5).
FIG5_TOPOLOGIES: tuple[tuple[int, int], ...] = (
    (2, 2), (3, 2), (3, 3), (4, 3), (4, 4), (5, 4), (6, 4), (5, 5),
    (7, 4), (6, 5), (7, 5), (6, 6), (8, 5), (7, 6), (8, 6), (7, 7),
    (9, 6), (8, 7), (9, 7), (8, 8), (10, 7), (9, 8), (10, 8), (9, 9),
    (10, 9), (10, 10),
)


@_registry.job_executor("av_topology")
def run_av_topology(params: Mapping) -> dict:
    """Worker: every mapping of the AV application on one topology.

    Shares one interference graph across the buffer variants and
    bisects the pointwise-ordered analysis chain (see
    :func:`~repro.experiments.schedulability_sweep.spec_verdicts`).
    """
    cols, rows = params["mesh"]
    platform = worker_platform(cols, rows, params["small_buf"])
    specs = fig4_specs(
        params["small_buf"], params["large_buf"], include_sb=False
    )
    counts = {spec.label: 0 for spec in specs}
    for mapping_index in range(params["mappings"]):
        flowset = av_flowset(
            platform,
            seed=params["seed"],
            mapping_index=mapping_index,
            clock_hz=params["clock_hz"],
            length_scale=params["length_scale"],
        )
        for label, ok in spec_verdicts(flowset, specs).items():
            counts[label] += ok
    return {"counts": counts, "mappings": params["mappings"]}


def av_topologies_spec(
    topologies: Sequence[tuple[int, int]],
    mappings: int,
    *,
    seed: int,
    name: str = "fig5",
    small_buf: int = 2,
    large_buf: int = 100,
    clock_hz: float = DEFAULT_CLOCK_HZ,
    length_scale: float = 2.0,
    title: str | None = None,
    gap_notes: Sequence[Mapping] = (),
) -> CampaignSpec:
    """Declare one Figure-5-style topology study as a campaign spec."""
    return CampaignSpec(
        kind="av_topologies",
        name=name,
        params={
            "topologies": [list(mesh) for mesh in topologies],
            "mappings": mappings,
            "seed": seed,
            "small_buf": small_buf,
            "large_buf": large_buf,
            "clock_hz": clock_hz,
            "length_scale": length_scale,
            "title": title,
            "gap_notes": [dict(note) for note in gap_notes],
        },
    )


def _av_params(spec: CampaignSpec) -> dict:
    """Validated spec parameters with kind defaults (JSON specs too)."""
    return {
        "topologies": spec_param(spec, "topologies"),
        "mappings": spec_param(spec, "mappings"),
        "seed": spec_param(spec, "seed"),
        "small_buf": spec_param(spec, "small_buf", 2),
        "large_buf": spec_param(spec, "large_buf", 100),
        "clock_hz": spec_param(spec, "clock_hz", DEFAULT_CLOCK_HZ),
        "length_scale": spec_param(spec, "length_scale", 2.0),
    }


def _av_plan(spec: CampaignSpec) -> Plan:
    p = _av_params(spec)
    jobs = [
        Job(
            kind="av_topology",
            params={
                "mesh": mesh,
                "mappings": p["mappings"],
                "seed": p["seed"],
                "small_buf": p["small_buf"],
                "large_buf": p["large_buf"],
                "clock_hz": p["clock_hz"],
                "length_scale": p["length_scale"],
            },
            label=f"{spec.name} {mesh[0]}x{mesh[1]} ({p['mappings']} mappings)",
        )
        for mesh in p["topologies"]
    ]
    return Plan(jobs=jobs, context=jobs)


def _av_aggregate(
    spec: CampaignSpec, plan: Plan, results: Mapping[str, Mapping]
) -> SweepResult:
    p = _av_params(spec)
    mappings = p["mappings"]
    # Stored counts come back with JSON-sorted keys; impose the curve
    # order of the figure (XLWX, IBN2, IBN100) explicitly.
    labels = [
        s.label
        for s in fig4_specs(p["small_buf"], p["large_buf"], include_sb=False)
    ]
    result = SweepResult(x_label="network topology", sets_per_point=mappings)
    for mesh, job in zip(p["topologies"], plan.context):
        counts = results[job.job_id]["counts"]
        result.add_point(
            f"{mesh[0]}x{mesh[1]}",
            {label: 100.0 * counts[label] / mappings for label in labels},
        )
    return result


def _av_render(spec: CampaignSpec, result: SweepResult) -> str:
    from repro.experiments.report import render_sweep

    title = spec.params.get("title") or "% schedulable AV mappings"
    lines = [render_sweep(result, title=title)]
    notes = spec.params.get("gap_notes") or []
    if notes:
        lines.append("")
        lines.extend(render_gap_notes(result, notes))
    return "\n".join(lines)


AV_TOPOLOGIES_KIND = register_kind(
    CampaignKind(
        name="av_topologies",
        plan=_av_plan,
        aggregate=_av_aggregate,
        render=_av_render,
        to_csv=sweep_csv_export,
        to_jsonable=sweep_to_jsonable,
    )
)


def av_topology_study(
    topologies: Sequence[tuple[int, int]] = FIG5_TOPOLOGIES,
    mappings: int = 100,
    *,
    seed: int,
    small_buf: int = 2,
    large_buf: int = 100,
    clock_hz: float = DEFAULT_CLOCK_HZ,
    length_scale: float = 2.0,
    workers: int = 1,
    progress: Progress | None = None,
) -> SweepResult:
    """Run the Figure 5 campaign over the given topologies.

    An ephemeral campaign-engine run; ``progress`` receives one
    :class:`~repro.campaigns.progress.ProgressEvent` per completed
    topology (topologies can complete out of order under ``workers >
    1``; the result keeps the x-axis order regardless).
    """
    from repro.campaigns.engine import run_campaign

    spec = av_topologies_spec(
        topologies,
        mappings,
        seed=seed,
        small_buf=small_buf,
        large_buf=large_buf,
        clock_hz=clock_hz,
        length_scale=length_scale,
    )
    return run_campaign(spec, workers=workers, progress=progress).result
