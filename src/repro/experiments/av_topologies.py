"""Figure 5: the AV benchmark mapped onto 26 NoC topologies.

For every topology, generate ``mappings`` random task-to-core mappings of
the AV application, and report the percentage of mappings deemed fully
schedulable by XLWX, IBN2 and IBN100 (SB is omitted, as in the paper's
Figure 5).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Sequence

from repro.experiments.schedulability_sweep import (
    AnalysisSpec,
    SweepResult,
    fig4_specs,
    spec_verdicts,
)
from repro.noc.platform import NoCPlatform
from repro.noc.topology import Mesh2D
from repro.workloads.av_benchmark import DEFAULT_CLOCK_HZ, av_flowset

#: The paper's 26 topologies (x-axis order of Figure 5).
FIG5_TOPOLOGIES: tuple[tuple[int, int], ...] = (
    (2, 2), (3, 2), (3, 3), (4, 3), (4, 4), (5, 4), (6, 4), (5, 5),
    (7, 4), (6, 5), (7, 5), (6, 6), (8, 5), (7, 6), (8, 6), (7, 7),
    (9, 6), (8, 7), (9, 7), (8, 8), (10, 7), (9, 8), (10, 8), (9, 9),
    (10, 9), (10, 10),
)


def _study_one_topology(args: tuple) -> tuple[str, dict[str, float]]:
    (cols, rows, mappings, seed, small_buf, large_buf, clock_hz,
     length_scale) = args
    platform = NoCPlatform(Mesh2D(cols, rows), buf=small_buf)
    specs = fig4_specs(small_buf, large_buf, include_sb=False)
    counts = {spec.label: 0 for spec in specs}
    for mapping_index in range(mappings):
        flowset = av_flowset(
            platform,
            seed=seed,
            mapping_index=mapping_index,
            clock_hz=clock_hz,
            length_scale=length_scale,
        )
        # Shares one interference graph across the buffer variants and
        # bisects the pointwise-ordered analysis chain (see
        # :func:`~repro.experiments.schedulability_sweep.spec_verdicts`).
        for label, ok in spec_verdicts(flowset, specs).items():
            counts[label] += ok
    percentages = {
        label: 100.0 * count / mappings for label, count in counts.items()
    }
    return f"{cols}x{rows}", percentages


def av_topology_study(
    topologies: Sequence[tuple[int, int]] = FIG5_TOPOLOGIES,
    mappings: int = 100,
    *,
    seed: int,
    small_buf: int = 2,
    large_buf: int = 100,
    clock_hz: float = DEFAULT_CLOCK_HZ,
    length_scale: float = 2.0,
    workers: int = 1,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Run the Figure 5 campaign over the given topologies.

    ``progress`` receives one message per completed topology in serial and
    parallel runs alike (points can complete out of order under
    ``workers > 1``; the result keeps the x-axis order regardless).
    """
    result = SweepResult(x_label="network topology", sets_per_point=mappings)
    jobs = [
        (cols, rows, mappings, seed, small_buf, large_buf, clock_hz,
         length_scale)
        for cols, rows in topologies
    ]

    def _report(outcome: tuple[str, dict[str, float]]) -> None:
        if progress is None:
            return
        label, percentages = outcome
        rendered = ", ".join(
            f"{name}={value:.0f}%" for name, value in percentages.items()
        )
        progress(f"{label}: {rendered}")

    outcomes: dict[str, dict[str, float]] = {}
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_study_one_topology, job) for job in jobs]
            for future in as_completed(futures):
                outcome = future.result()
                outcomes[outcome[0]] = outcome[1]
                _report(outcome)
    else:
        for job in jobs:
            outcome = _study_one_topology(job)
            outcomes[outcome[0]] = outcome[1]
            _report(outcome)
    for cols, rows in topologies:
        label = f"{cols}x{rows}"
        result.add_point(label, outcomes[label])
    return result
