"""The ``allocation`` campaign kind: buffer dimensioning as a sweep.

Runs the PR's allocation optimizer (:mod:`repro.core.allocate`) over a
grid of topology × utilization × cost model: for every mesh size, flow
count and cost model in the spec, a batch of seeded synthetic flow sets
is optimized and the per-point outcome — feasibility rate, mean
certified cost, mean total buffering — aggregated into one table.  The
design question it answers is the paper's closing turn: not "is this
flow set schedulable on this platform?" but "how should this platform's
buffers be provisioned so the traffic stays schedulable at the least
cost?".

Campaign-engine conventions (see DESIGN.md "Campaign architecture"):
one content-addressed ``allocate_chunk`` job per (point, set-chunk);
traffic derives from the campaign seed and set index only, so every
cost model sees byte-identical flow sets and a resumed run replays the
identical jobs from the store.  Cost models are validated **on the
worker** (the optimizer rejects malformed documents with
``ValueError``), so a poison cost model quarantines its own jobs while
the rest of the campaign completes — the aggregate then reports the
points it has, degrading to a PARTIAL render instead of failing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.campaigns import registry as _registry
from repro.campaigns.registry import CampaignKind, Plan, register_kind
from repro.campaigns.scheduler import worker_platform
from repro.campaigns.spec import (
    CampaignSpec,
    Job,
    chunk_size_param,
    spec_param,
)
from repro.experiments.schedulability_sweep import default_chunk_size
from repro.flows.flowset import FlowSet
from repro.util.rng import spawn_rng
from repro.workloads.synthetic import SyntheticConfig, synthetic_flows


@dataclass
class AllocationPoint:
    """Aggregated outcome of one (mesh, flow count, cost model) point."""

    mesh: tuple[int, int]
    num_flows: int
    cost_kind: str
    sets: int = 0
    feasible: int = 0
    certified: int = 0
    cost_sum: float = 0.0
    depth_sum: int = 0
    evaluation_sum: int = 0

    @property
    def feasible_pct(self) -> float:
        """Share of flow sets any allocation could save, in percent."""
        return 100.0 * self.feasible / self.sets if self.sets else 0.0

    @property
    def mean_cost(self) -> float | None:
        """Mean optimal cost across the feasible sets (None when none)."""
        return self.cost_sum / self.feasible if self.feasible else None

    @property
    def mean_depth(self) -> float | None:
        """Mean total buffer depth across the feasible sets."""
        return self.depth_sum / self.feasible if self.feasible else None

    @property
    def mean_evaluations(self) -> float:
        """Mean schedulability evaluations the search needed per set."""
        return self.evaluation_sum / self.sets if self.sets else 0.0


@dataclass
class AllocationSweepResult:
    """All points of one ``allocation`` campaign, spec order."""

    points: list[AllocationPoint] = field(default_factory=list)
    sets_per_point: int = 0


def _chunk_flowsets(platform, params: Mapping) -> list[FlowSet]:
    """Regenerate one chunk's seeded flow sets on the worker.

    The RNG derivation matches :mod:`repro.experiments.buffer_sweep`'s
    convention — campaign seed, flow count and set index only — so
    every cost model of one campaign optimizes byte-identical traffic.
    """
    config = SyntheticConfig(num_flows=params["num_flows"], **params["config"])
    flowsets = []
    set_start = params["set_start"]
    for set_index in range(set_start, set_start + params["set_count"]):
        rng = spawn_rng(
            params["seed"], "synthetic", params["num_flows"], set_index
        )
        flows = synthetic_flows(config, platform.topology.num_nodes, rng)
        flowsets.append(FlowSet(platform, flows))
    return flowsets


@_registry.job_executor("allocate_chunk")
def run_allocate_chunk(params: Mapping) -> list[dict]:
    """Worker: optimize one chunk of flow sets under one cost model.

    Returns one condensed record per set (feasible / certified / cost /
    total depth / evaluations).  Cost-model validation happens here, on
    the worker — a malformed model raises and quarantines exactly this
    chunk, never the campaign.
    """
    from repro.core.allocate import allocation_summary

    cols, rows = params["mesh"]
    platform = worker_platform(cols, rows, 2)
    records = []
    for flowset in _chunk_flowsets(platform, params):
        doc = allocation_summary(
            flowset,
            analysis_name=params["analysis"],
            lo=params["lo"],
            hi=params["hi"],
            cost_model=params["cost_model"],
            budget=params["budget"],
            max_evaluations=params["max_evaluations"],
        )
        allocation = doc["allocation"]
        records.append({
            "feasible": allocation["feasible"],
            "certified": allocation["certified"],
            "cost": allocation["cost"],
            "total_depth": allocation["total_depth"],
            "evaluations": doc["search"]["evaluations"],
        })
    return records


@_registry.block_executor("allocate_chunk")
def run_allocate_chunk_block(
    params_list: Sequence[Mapping],
) -> list[list[dict]]:
    """Worker: a block of allocation chunks, one after the other.

    Each chunk's optimizer already batches its own candidate frontiers
    through ``analyze_batch``, so the block hook only saves pickling —
    results are exactly :func:`run_allocate_chunk`'s, job by job.
    """
    return [run_allocate_chunk(params) for params in params_list]


def allocation_spec(
    meshes: Sequence[tuple[int, int]],
    flow_counts: Sequence[int],
    sets: int,
    *,
    seed: int,
    cost_models: Sequence[Mapping] | None = None,
    lo: int = 1,
    hi: int = 4,
    budget: int | None = None,
    analysis: str = "ibn",
    name: str = "allocation",
    config_kwargs: dict | None = None,
    chunk_size: int | None = None,
    max_evaluations: int | None = None,
    title: str | None = None,
) -> CampaignSpec:
    """Declare a topology × utilization × cost-model allocation sweep."""
    return CampaignSpec(
        kind="allocation",
        name=name,
        params={
            "meshes": [list(mesh) for mesh in meshes],
            "flow_counts": list(flow_counts),
            "sets": sets,
            "seed": seed,
            "cost_models": [dict(model) for model in cost_models]
            if cost_models is not None
            else [{"kind": "shallowness", "target": hi}],
            "lo": lo,
            "hi": hi,
            "budget": budget,
            "analysis": analysis,
            "config": dict(config_kwargs or {}),
            "chunk_size": chunk_size,
            "max_evaluations": max_evaluations,
            "title": title,
        },
    )


def _allocation_params(spec: CampaignSpec) -> dict:
    """Validated spec parameters with kind defaults (JSON specs too)."""
    hi = spec_param(spec, "hi", 4)
    return {
        "meshes": spec_param(spec, "meshes"),
        "flow_counts": spec_param(spec, "flow_counts"),
        "sets": spec_param(spec, "sets"),
        "seed": spec_param(spec, "seed"),
        "cost_models": spec_param(
            spec, "cost_models", [{"kind": "shallowness", "target": hi}]
        ),
        "lo": spec_param(spec, "lo", 1),
        "hi": hi,
        "budget": spec_param(spec, "budget", None),
        "analysis": spec_param(spec, "analysis", "ibn"),
        "config": spec_param(spec, "config", {}),
        "chunk_size": chunk_size_param(spec),
        "max_evaluations": spec_param(spec, "max_evaluations", None),
    }


def _allocation_plan(spec: CampaignSpec) -> Plan:
    p = _allocation_params(spec)
    chunk_size = p["chunk_size"] or default_chunk_size(p["sets"])
    point_jobs: list[tuple[tuple, list[Job]]] = []
    for mesh in p["meshes"]:
        for num_flows in p["flow_counts"]:
            for cost_model in p["cost_models"]:
                chunks = []
                for set_start in range(0, p["sets"], chunk_size):
                    set_count = min(chunk_size, p["sets"] - set_start)
                    chunks.append(
                        Job(
                            kind="allocate_chunk",
                            params={
                                "mesh": list(mesh),
                                "num_flows": num_flows,
                                "set_start": set_start,
                                "set_count": set_count,
                                "seed": p["seed"],
                                "config": p["config"],
                                "lo": p["lo"],
                                "hi": p["hi"],
                                "budget": p["budget"],
                                "analysis": p["analysis"],
                                "cost_model": cost_model,
                                "max_evaluations": p["max_evaluations"],
                            },
                            label=(
                                f"{spec.name} {mesh[0]}x{mesh[1]} "
                                f"n={num_flows} cost={cost_model.get('kind')} "
                                f"sets {set_start}+{set_count}"
                            ),
                        )
                    )
                point = (tuple(mesh), num_flows, cost_model.get("kind"))
                point_jobs.append((point, chunks))
    return Plan(
        jobs=[job for _point, chunks in point_jobs for job in chunks],
        context=point_jobs,
    )


def _allocation_aggregate(
    spec: CampaignSpec, plan: Plan, results: Mapping[str, list]
) -> AllocationSweepResult:
    """Fold chunk records into per-point statistics.

    Quarantined chunks are simply absent from ``results``; their sets
    are left out of the point's statistics (the render marks the
    campaign PARTIAL), so one poison job degrades the report instead of
    killing it.
    """
    p = _allocation_params(spec)
    sweep = AllocationSweepResult(sets_per_point=p["sets"])
    for (mesh, num_flows, cost_kind), chunks in plan.context:
        point = AllocationPoint(
            mesh=tuple(mesh), num_flows=num_flows, cost_kind=cost_kind
        )
        for job in chunks:
            records = results.get(job.job_id)
            if records is None:
                continue
            for record in records:
                point.sets += 1
                point.evaluation_sum += record["evaluations"]
                if record["feasible"]:
                    point.feasible += 1
                    point.cost_sum += record["cost"]
                    point.depth_sum += record["total_depth"]
                if record["certified"]:
                    point.certified += 1
        sweep.points.append(point)
    if not sweep.points or all(point.sets == 0 for point in sweep.points):
        raise ValueError("no allocation point has any surviving results")
    return sweep


def _fmt(value: float | None, width: int = 8) -> str:
    """Fixed-width, deterministic cell formatting (``-`` for absent)."""
    if value is None:
        return "-".rjust(width)
    return f"{value:.2f}".rjust(width)


def _allocation_render(
    spec: CampaignSpec, result: AllocationSweepResult
) -> str:
    title = spec.params.get("title") or (
        f"Buffer-allocation sweep ({spec.name}, "
        f"{result.sets_per_point} sets/point)"
    )
    lines = [title, ""]
    header = (
        f"{'mesh':>6} {'flows':>6} {'cost model':>12} {'feas%':>7} "
        f"{'mean cost':>9} {'mean depth':>10} {'mean evals':>10}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for point in result.points:
        mesh = f"{point.mesh[0]}x{point.mesh[1]}"
        lines.append(
            f"{mesh:>6} {point.num_flows:>6} {point.cost_kind:>12} "
            f"{point.feasible_pct:>7.1f} {_fmt(point.mean_cost, 9)} "
            f"{_fmt(point.mean_depth, 10)} "
            f"{point.mean_evaluations:>10.2f}"
        )
    return "\n".join(lines)


def _allocation_csv(spec: CampaignSpec, result: AllocationSweepResult) -> str:
    rows = [
        "mesh,flows,cost_model,sets,feasible,certified,"
        "feasible_pct,mean_cost,mean_depth,mean_evaluations"
    ]
    for point in result.points:
        mean_cost = "" if point.mean_cost is None else f"{point.mean_cost:.4f}"
        mean_depth = (
            "" if point.mean_depth is None else f"{point.mean_depth:.4f}"
        )
        rows.append(
            f"{point.mesh[0]}x{point.mesh[1]},{point.num_flows},"
            f"{point.cost_kind},{point.sets},{point.feasible},"
            f"{point.certified},{point.feasible_pct:.2f},{mean_cost},"
            f"{mean_depth},{point.mean_evaluations:.2f}"
        )
    return "\n".join(rows) + "\n"


def _allocation_jsonable(
    spec: CampaignSpec, result: AllocationSweepResult
) -> dict:
    return {
        "sets_per_point": result.sets_per_point,
        "points": [
            {
                "mesh": list(point.mesh),
                "num_flows": point.num_flows,
                "cost_model": point.cost_kind,
                "sets": point.sets,
                "feasible": point.feasible,
                "certified": point.certified,
                "feasible_pct": point.feasible_pct,
                "mean_cost": point.mean_cost,
                "mean_depth": point.mean_depth,
                "mean_evaluations": point.mean_evaluations,
            }
            for point in result.points
        ],
    }


ALLOCATION_KIND = register_kind(
    CampaignKind(
        name="allocation",
        plan=_allocation_plan,
        aggregate=_allocation_aggregate,
        render=_allocation_render,
        to_csv=_allocation_csv,
        to_jsonable=_allocation_jsonable,
    )
)
