"""The shared simulation job: one chunk of a release-offset search.

Both simulation-backed campaigns (the didactic Table II columns and the
bound-vs-observed validation sweep) boil down to the same unit of work:
simulate a contiguous chunk of offset phasings for one workload and
keep per-flow maxima.  ``sim_chunk`` is that unit as a content-addressed
campaign job; the phasing list is enumerated (and shift-pruned) at spec
expansion time via :func:`repro.sim.worstcase.enumerate_phasings`, so a
job's params carry exactly the combos it must run and the fold back into
search-level maxima happens in chunk order — byte-identical to a serial
:func:`~repro.sim.worstcase.offset_search`.

Workloads are named by small JSON descriptors so any worker process can
rebuild the flow set from scratch (worker-local platform caches keep
that cheap):

* ``{"kind": "didactic", "buf": B}`` — the paper's Section V scenario;
* ``{"kind": "validation_synthetic", "mesh": [C, R], "buf": B,
  "seed": S, "set_index": I, "num_flows": N}`` — a simulation-scale
  Section VI random set.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.campaigns import registry as _registry
from repro.campaigns.scheduler import worker_platform
from repro.campaigns.spec import Job
from repro.flows.flowset import FlowSet
from repro.sim.worstcase import enumerate_phasings, simulate_offsets
from repro.workloads.didactic import didactic_flowset


def workload_flowset(workload: Mapping) -> FlowSet:
    """Rebuild the flow set a workload descriptor names."""
    kind = workload["kind"]
    if kind == "didactic":
        return didactic_flowset(buf=workload["buf"])
    if kind == "validation_synthetic":
        from repro.experiments.validation_sweep import (
            synthetic_validation_flowset,
        )

        cols, rows = workload["mesh"]
        platform = worker_platform(cols, rows, workload["buf"])
        return synthetic_validation_flowset(
            platform,
            workload["seed"],
            workload["set_index"],
            workload["num_flows"],
        )
    raise ValueError(f"unknown simulation workload kind {kind!r}")


@_registry.job_executor("sim_chunk")
def run_sim_chunk(params: Mapping) -> dict:
    """Worker: simulate one chunk of phasings, return per-flow maxima.

    Applies the same strictly-greater update rule as the serial search
    loop so folding chunk results in chunk order reproduces a serial
    sweep exactly.
    """
    flowset = workload_flowset(params["workload"])
    names = params["names"]
    base = params.get("base") or {}
    worst: dict[str, int] = {}
    for combo in params["combos"]:
        offsets = dict(base)
        offsets.update(zip(names, combo))
        observed = simulate_offsets(
            flowset,
            offsets,
            release_horizon=params["release_horizon"],
            credit_delay=params.get("credit_delay", 1),
        )
        for flow_name, latency in observed.items():
            if latency > worst.get(flow_name, -1):
                worst[flow_name] = latency
    return {"worst": worst, "runs": len(params["combos"])}


def sim_chunk_size(total: int) -> int:
    """Deterministic phasing chunk width: at most 16 chunks per search."""
    return max(1, -(-total // 16))


def expand_sim_chunks(
    spec_name: str,
    workload_label: str,
    workload_params: Mapping,
    flowset: FlowSet,
    vary: Mapping[str, Sequence[int]],
    release_horizon: int,
    chunk_size: int | None = None,
    credit_delay: int = 1,
) -> tuple[list[Job], int]:
    """Expand one offset search into ``sim_chunk`` jobs.

    The single place the job params of the ``sim_chunk`` kind are
    assembled — both simulation campaigns go through it, so their jobs
    share one content-address layout (a field added for one campaign
    cannot silently fork the hash space of the other).  Returns the
    chunk jobs (in phasing order) and the count of shift-pruned
    phasings.
    """
    names, combos, pruned = enumerate_phasings(flowset, vary)
    width = chunk_size or sim_chunk_size(len(combos))
    jobs = []
    for start in range(0, len(combos), width):
        chunk = combos[start:start + width]
        jobs.append(
            Job(
                kind="sim_chunk",
                params={
                    "workload": dict(workload_params),
                    "names": list(names),
                    "combos": [list(combo) for combo in chunk],
                    "base": {},
                    "release_horizon": release_horizon,
                    "credit_delay": credit_delay,
                },
                label=(
                    f"{spec_name} {workload_label} "
                    f"phasings {start}+{len(chunk)}"
                ),
            )
        )
    return jobs, pruned


def fold_worst(chunk_results: list[Mapping]) -> dict[str, int]:
    """Fold chunk maxima in chunk order (the serial search's outcome)."""
    worst: dict[str, int] = {}
    for chunk in chunk_results:
        for flow_name, latency in chunk["worst"].items():
            if latency > worst.get(flow_name, -1):
                worst[flow_name] = latency
    return worst
