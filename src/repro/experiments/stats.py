"""Statistics for schedulability percentages.

The paper reports point estimates ("% schedulable flow sets out of 100");
this module adds Wilson score confidence intervals so reduced-scale runs
(5-20 sets per point) can be honestly compared against paper-scale ones.
The Wilson interval is used instead of the normal approximation because
the interesting points sit near 0% and 100%, where the normal interval
degenerates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.schedulability_sweep import SweepResult

#: two-sided z values for common confidence levels (kept inline so the
#: module works without scipy; values match scipy.stats.norm.ppf).
_Z = {0.90: 1.6448536269514722, 0.95: 1.959963984540054,
      0.99: 2.5758293035489004}


@dataclass(frozen=True)
class Interval:
    """A confidence interval for a proportion, in percent."""

    low: float
    high: float

    def contains(self, percent: float) -> bool:
        """Is ``percent`` inside the interval (inclusive)?"""
        return self.low <= percent <= self.high

    def __str__(self) -> str:
        return f"[{self.low:.1f}, {self.high:.1f}]"


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Interval:
    """Wilson score interval for ``successes/trials``, in percent.

    >>> interval = wilson_interval(8, 10)
    >>> interval.contains(80.0)
    True
    >>> 0 <= interval.low <= interval.high <= 100
    True
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    try:
        z = _Z[confidence]
    except KeyError:
        raise ValueError(
            f"confidence must be one of {sorted(_Z)}, got {confidence}"
        ) from None
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (
        z * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    low = max(0.0, (centre - half) * 100.0)
    high = min(100.0, (centre + half) * 100.0)
    # pin the exact boundary cases, which floating point otherwise misses
    # by ~1e-15 (the interval must always contain the point estimate)
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 100.0
    return Interval(low=low, high=high)


def sweep_intervals(
    result: SweepResult, confidence: float = 0.95
) -> dict[str, list[Interval]]:
    """Confidence intervals for every point of every curve of a sweep."""
    trials = result.sets_per_point
    intervals: dict[str, list[Interval]] = {}
    for label, values in result.series.items():
        intervals[label] = [
            wilson_interval(round(v * trials / 100.0), trials, confidence)
            for v in values
        ]
    return intervals


def rows_with_intervals(result: SweepResult, confidence: float = 0.95) -> str:
    """Sweep table with a Wilson interval next to each percentage."""
    intervals = sweep_intervals(result, confidence)
    labels = list(result.series)
    lines = [
        f"{result.x_label}  "
        + "  ".join(f"{label} {int(confidence * 100)}%CI" for label in labels)
    ]
    for row_index, x in enumerate(result.x_values):
        cells = []
        for label in labels:
            value = result.series[label][row_index]
            cells.append(f"{value:5.1f} {intervals[label][row_index]}")
        lines.append(f"{str(x):<10}  " + "  ".join(cells))
    return "\n".join(lines)
