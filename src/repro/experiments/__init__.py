"""Experiment harness: one module per paper table/figure.

Every experiment here is a campaign-kind on the campaign engine
(:mod:`repro.campaigns`): each module registers its declarative spec
builder, job executor and aggregation, and also keeps its historical
one-call function (``schedulability_sweep(...)`` etc.) as an ephemeral
engine run.

* :mod:`repro.experiments.didactic_table` — Tables I & II (Section V);
* :mod:`repro.experiments.schedulability_sweep` — Figure 4(a)/(b);
* :mod:`repro.experiments.av_topologies` — Figure 5;
* :mod:`repro.experiments.buffer_sweep` — the Section VI buffer-size
  claim (2..100 flit buffers, monotone schedulability);
* :mod:`repro.experiments.validation_sweep` — simulated worst cases
  versus the SB/IBN/XLWX bounds across buffer depths;
* :mod:`repro.experiments.sim_jobs` — the shared simulation job kind;
* :mod:`repro.experiments.scale` — reduced/full-scale presets selected by
  the ``REPRO_SCALE`` environment variable;
* :mod:`repro.experiments.report` — chart/CSV rendering of campaign
  results;
* :mod:`repro.experiments.runner` — ``python -m repro.experiments.runner``
  command-line front end (thin dispatch over campaign specs).
"""

from repro.experiments.scale import Scale, get_scale
from repro.experiments.schedulability_sweep import (
    AnalysisSpec,
    SweepResult,
    fig4_specs,
    schedulability_spec,
    schedulability_sweep,
)
from repro.experiments.av_topologies import (
    av_topologies_spec,
    av_topology_study,
    FIG5_TOPOLOGIES,
)
from repro.experiments.buffer_sweep import buffer_sweep, buffer_sweep_spec
from repro.experiments.didactic_table import didactic_table_spec, didactic_tables
from repro.experiments.routing_study import routing_comparison, routing_spec
from repro.experiments.validation_sweep import validation_spec, validation_sweep
from repro.experiments.stats import Interval, wilson_interval

__all__ = [
    "routing_comparison",
    "routing_spec",
    "Interval",
    "wilson_interval",
    "Scale",
    "get_scale",
    "AnalysisSpec",
    "SweepResult",
    "fig4_specs",
    "schedulability_spec",
    "schedulability_sweep",
    "av_topologies_spec",
    "av_topology_study",
    "FIG5_TOPOLOGIES",
    "buffer_sweep",
    "buffer_sweep_spec",
    "didactic_table_spec",
    "didactic_tables",
    "validation_spec",
    "validation_sweep",
]
