"""Experiment harness: one module per paper table/figure.

* :mod:`repro.experiments.didactic_table` — Tables I & II (Section V);
* :mod:`repro.experiments.schedulability_sweep` — Figure 4(a)/(b);
* :mod:`repro.experiments.av_topologies` — Figure 5;
* :mod:`repro.experiments.buffer_sweep` — the Section VI buffer-size
  claim (2..100 flit buffers, monotone schedulability);
* :mod:`repro.experiments.scale` — reduced/full-scale presets selected by
  the ``REPRO_SCALE`` environment variable;
* :mod:`repro.experiments.report` — chart/CSV rendering of campaign
  results;
* :mod:`repro.experiments.runner` — ``python -m repro.experiments.runner``
  command-line front end.
"""

from repro.experiments.scale import Scale, get_scale
from repro.experiments.schedulability_sweep import (
    AnalysisSpec,
    SweepResult,
    fig4_specs,
    schedulability_sweep,
)
from repro.experiments.av_topologies import av_topology_study, FIG5_TOPOLOGIES
from repro.experiments.buffer_sweep import buffer_sweep
from repro.experiments.didactic_table import didactic_tables
from repro.experiments.routing_study import routing_comparison
from repro.experiments.stats import Interval, wilson_interval

__all__ = [
    "routing_comparison",
    "Interval",
    "wilson_interval",
    "Scale",
    "get_scale",
    "AnalysisSpec",
    "SweepResult",
    "fig4_specs",
    "schedulability_sweep",
    "av_topology_study",
    "FIG5_TOPOLOGIES",
    "buffer_sweep",
    "didactic_tables",
]
