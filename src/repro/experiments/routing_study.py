"""Routing-sensitivity study: XY versus YX dimension order (extension).

Both routings are minimal and produce identical zero-load latencies, so
any schedulability difference is purely a *contention placement* effect —
the same flows share different links.  This study runs the Figure 4
recipe under both routings and reports the IBN2 and XLWX curves for each,
quantifying how much the routing choice moves the analyses' verdicts.

Runs on the campaign engine: one content-addressed job per
``(point, set-chunk)``; each job analyses the same traffic under both
routings so the XY/YX comparison always sees identical flow sets.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.campaigns.progress import Progress
from repro.campaigns.registry import CampaignKind, Plan, register_kind
from repro.campaigns.scheduler import worker_platform
from repro.campaigns.spec import (
    CampaignSpec,
    Job,
    chunk_size_param,
    spec_param,
)
from repro.campaigns import registry as _registry
from repro.core.analyses.ibn import IBNAnalysis
from repro.core.analyses.xlwx import XLWXAnalysis
from repro.core.engine import is_schedulable
from repro.core.interference import InterferenceGraph
from repro.experiments.schedulability_sweep import (
    SweepResult,
    default_chunk_size,
    sweep_csv_export,
    sweep_to_jsonable,
)
from repro.flows.flowset import FlowSet
from repro.util.rng import spawn_rng
from repro.workloads.synthetic import SyntheticConfig, synthetic_flows

_ROUTING_LABELS = ("XY", "YX")
_ANALYSES = {"IBN": IBNAnalysis, "XLWX": XLWXAnalysis}


@_registry.job_executor("routing_chunk")
def run_routing_chunk(params: Mapping) -> dict:
    """Worker: XY-vs-YX verdicts over one chunk of flow sets."""
    cols, rows = params["mesh"]
    buf = params["buf"]
    num_flows = params["num_flows"]
    platforms = {
        label: worker_platform(cols, rows, buf, routing=label.lower())
        for label in _ROUTING_LABELS
    }
    analyses = {label: cls() for label, cls in _ANALYSES.items()}
    config = SyntheticConfig(num_flows=num_flows, **params["config"])
    num_nodes = platforms["XY"].topology.num_nodes
    counts = {
        f"{analysis_label}-{routing_label}": 0
        for analysis_label in analyses
        for routing_label in platforms
    }
    set_start = params["set_start"]
    for set_index in range(set_start, set_start + params["set_count"]):
        rng = spawn_rng(params["seed"], "synthetic", num_flows, set_index)
        flows = synthetic_flows(config, num_nodes, rng)
        for routing_label, platform in platforms.items():
            flowset = FlowSet(platform, flows)
            graph = InterferenceGraph(flowset)
            for analysis_label, analysis in analyses.items():
                key = f"{analysis_label}-{routing_label}"
                counts[key] += is_schedulable(flowset, analysis, graph=graph)
    return {"counts": counts, "sets": params["set_count"]}


def routing_spec(
    mesh: tuple[int, int],
    flow_counts: Sequence[int],
    sets_per_point: int,
    *,
    seed: int,
    name: str = "routing",
    buf: int = 2,
    config_kwargs: dict | None = None,
    chunk_size: int | None = None,
    title: str | None = None,
) -> CampaignSpec:
    """Declare the routing-sensitivity ablation as a campaign spec."""
    return CampaignSpec(
        kind="routing",
        name=name,
        params={
            "mesh": list(mesh),
            "flow_counts": list(flow_counts),
            "sets_per_point": sets_per_point,
            "seed": seed,
            "buf": buf,
            "config": dict(config_kwargs or {}),
            "chunk_size": chunk_size,
            "title": title,
        },
    )


def _routing_params(spec: CampaignSpec) -> dict:
    """Validated spec parameters with kind defaults (JSON specs too)."""
    return {
        "mesh": spec_param(spec, "mesh"),
        "flow_counts": spec_param(spec, "flow_counts"),
        "sets_per_point": spec_param(spec, "sets_per_point"),
        "seed": spec_param(spec, "seed"),
        "buf": spec_param(spec, "buf", 2),
        "config": spec_param(spec, "config", {}),
        "chunk_size": chunk_size_param(spec),
    }


def _routing_plan(spec: CampaignSpec) -> Plan:
    p = _routing_params(spec)
    cols, rows = p["mesh"]
    chunk_size = p["chunk_size"] or default_chunk_size(
        p["sets_per_point"]
    )
    point_jobs: list[list[Job]] = []
    for num_flows in p["flow_counts"]:
        chunks = []
        for set_start in range(0, p["sets_per_point"], chunk_size):
            set_count = min(chunk_size, p["sets_per_point"] - set_start)
            chunks.append(
                Job(
                    kind="routing_chunk",
                    params={
                        "mesh": [cols, rows],
                        "num_flows": num_flows,
                        "set_start": set_start,
                        "set_count": set_count,
                        "seed": p["seed"],
                        "buf": p["buf"],
                        "config": p["config"],
                    },
                    label=(
                        f"{spec.name} {cols}x{rows} n={num_flows} "
                        f"sets {set_start}+{set_count}"
                    ),
                )
            )
        point_jobs.append(chunks)
    return Plan(
        jobs=[job for chunks in point_jobs for job in chunks],
        context=point_jobs,
    )


def _routing_aggregate(
    spec: CampaignSpec, plan: Plan, results: Mapping[str, Mapping]
) -> SweepResult:
    p = _routing_params(spec)
    labels = [
        f"{analysis_label}-{routing_label}"
        for analysis_label in _ANALYSES
        for routing_label in _ROUTING_LABELS
    ]
    result = SweepResult(
        x_label="# flows per flow set", sets_per_point=p["sets_per_point"]
    )
    for num_flows, chunks in zip(p["flow_counts"], plan.context):
        totals = {label: 0 for label in labels}
        for job in chunks:
            for label, count in results[job.job_id]["counts"].items():
                totals[label] += count
        result.add_point(
            num_flows,
            {
                label: 100.0 * totals[label] / p["sets_per_point"]
                for label in labels
            },
        )
    return result


def _routing_render(spec: CampaignSpec, result: SweepResult) -> str:
    from repro.experiments.report import render_sweep

    cols, rows = spec_param(spec, "mesh")
    title = spec.params.get("title") or (
        f"Routing sensitivity (XY vs YX) on {cols}x{rows}"
    )
    return render_sweep(result, title=title)


ROUTING_KIND = register_kind(
    CampaignKind(
        name="routing",
        plan=_routing_plan,
        aggregate=_routing_aggregate,
        render=_routing_render,
        to_csv=sweep_csv_export,
        to_jsonable=sweep_to_jsonable,
    )
)


def routing_comparison(
    mesh: tuple[int, int],
    flow_counts: Sequence[int],
    sets_per_point: int,
    *,
    seed: int,
    buf: int = 2,
    config_kwargs: dict | None = None,
    workers: int = 1,
    progress: Progress | None = None,
) -> SweepResult:
    """% schedulable flow sets under XY vs YX routing (IBN and XLWX)."""
    from repro.campaigns.engine import run_campaign

    spec = routing_spec(
        mesh,
        flow_counts,
        sets_per_point,
        seed=seed,
        buf=buf,
        config_kwargs=config_kwargs,
    )
    return run_campaign(spec, workers=workers, progress=progress).result
