"""Routing-sensitivity study: XY versus YX dimension order (extension).

Both routings are minimal and produce identical zero-load latencies, so
any schedulability difference is purely a *contention placement* effect —
the same flows share different links.  This study runs the Figure 4
recipe under both routings and reports the IBN2 and XLWX curves for each,
quantifying how much the routing choice moves the analyses' verdicts.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.analyses.ibn import IBNAnalysis
from repro.core.analyses.xlwx import XLWXAnalysis
from repro.core.engine import is_schedulable
from repro.core.interference import InterferenceGraph
from repro.experiments.schedulability_sweep import SweepResult
from repro.flows.flowset import FlowSet
from repro.noc.platform import NoCPlatform
from repro.noc.routing import XYRouting, YXRouting
from repro.noc.topology import Mesh2D
from repro.util.rng import spawn_rng
from repro.workloads.synthetic import SyntheticConfig, synthetic_flows


def routing_comparison(
    mesh: tuple[int, int],
    flow_counts: Sequence[int],
    sets_per_point: int,
    *,
    seed: int,
    buf: int = 2,
    config_kwargs: dict | None = None,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """% schedulable flow sets under XY vs YX routing (IBN and XLWX)."""
    cols, rows = mesh
    topology = Mesh2D(cols, rows)
    platforms = {
        "XY": NoCPlatform(topology, buf=buf, routing=XYRouting()),
        "YX": NoCPlatform(topology, buf=buf, routing=YXRouting()),
    }
    analyses = {"IBN": IBNAnalysis(), "XLWX": XLWXAnalysis()}
    result = SweepResult(
        x_label="# flows per flow set", sets_per_point=sets_per_point
    )
    for num_flows in flow_counts:
        config = SyntheticConfig(num_flows=num_flows, **(config_kwargs or {}))
        counts = {
            f"{analysis_label}-{routing_label}": 0
            for analysis_label in analyses
            for routing_label in platforms
        }
        for set_index in range(sets_per_point):
            rng = spawn_rng(seed, "synthetic", num_flows, set_index)
            flows = synthetic_flows(config, topology.num_nodes, rng)
            for routing_label, platform in platforms.items():
                flowset = FlowSet(platform, flows)
                graph = InterferenceGraph(flowset)
                for analysis_label, analysis in analyses.items():
                    key = f"{analysis_label}-{routing_label}"
                    counts[key] += is_schedulable(
                        flowset, analysis, graph=graph
                    )
        percentages = {
            key: 100.0 * count / sets_per_point
            for key, count in counts.items()
        }
        result.add_point(num_flows, percentages)
        if progress is not None:
            rendered = ", ".join(
                f"{key}={value:.0f}%" for key, value in percentages.items()
            )
            progress(f"{cols}x{rows} n={num_flows}: {rendered}")
    return result
