"""Experiment scale presets.

The paper-scale campaigns (100 flow sets per point, 14-23 load points,
26 topologies × 100 mappings) take hours of CPU; the default preset keeps
every experiment's *structure* while shrinking repetition counts so the
full benchmark suite finishes on a laptop in minutes.  Select with::

    REPRO_SCALE=ci      # smoke scale, seconds (CI default)
    REPRO_SCALE=default # laptop scale, minutes
    REPRO_SCALE=paper   # the paper's full campaign

Every preset records the *same* seeds for overlapping work, so growing the
scale only adds samples — it never reshuffles the ones already run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


def _mesh_list() -> list[tuple[int, int]]:
    """The paper's 26 Figure 5 topologies, in its x-axis order."""
    return [
        (2, 2), (3, 2), (3, 3), (4, 3), (4, 4), (5, 4), (6, 4), (5, 5),
        (7, 4), (6, 5), (7, 5), (6, 6), (8, 5), (7, 6), (8, 6), (7, 7),
        (9, 6), (8, 7), (9, 7), (8, 8), (10, 7), (9, 8), (10, 8), (9, 9),
        (10, 9), (10, 10),
    ]


@dataclass(frozen=True)
class Scale:
    """One scale preset (see module docstring)."""

    name: str
    #: Figure 4(a): flow counts swept on the 4×4 platform.
    fig4a_flow_counts: tuple[int, ...]
    #: Figure 4(b): flow counts swept on the 8×8 platform.
    fig4b_flow_counts: tuple[int, ...]
    #: flow sets generated per point.
    fig4_sets_per_point: int
    #: Figure 5: topologies and mappings per topology.
    fig5_topologies: tuple[tuple[int, int], ...]
    fig5_mappings: int
    #: didactic simulation: step of the τ1 release-offset sweep (1 = every
    #: phase of τ1's period).
    didactic_offset_step: int
    #: buffer sweep: buffer depths and sets per depth.
    buffer_depths: tuple[int, ...]
    buffer_sets: int
    #: load point for the buffer sweep: heavy enough (on the 4×4 mesh)
    #: that IBN's verdict actually depends on the depth.
    buffer_flow_count: int = 320
    seed: int = field(default=20180319)  # DATE'18 conference date
    #: bound-vs-observed validation sweep: buffer depths simulated and
    #: random synthetic sets per depth (didactic always included).
    validation_buffer_depths: tuple[int, ...] = (2, 10)
    validation_synthetic_sets: int = 2

    @property
    def is_paper(self) -> bool:
        """True for the full paper-scale preset."""
        return self.name == "paper"


_PRESETS = {
    "ci": Scale(
        name="ci",
        fig4a_flow_counts=(40, 160, 280, 400),
        fig4b_flow_counts=(80, 240, 400),
        fig4_sets_per_point=5,
        fig5_topologies=((2, 2), (4, 4), (6, 6), (8, 8)),
        fig5_mappings=5,
        didactic_offset_step=20,
        buffer_depths=(2, 16, 100),
        buffer_sets=5,
        validation_buffer_depths=(2, 10),
        validation_synthetic_sets=2,
    ),
    "default": Scale(
        name="default",
        fig4a_flow_counts=(40, 100, 160, 220, 280, 340, 400),
        fig4b_flow_counts=(80, 160, 240, 320, 400, 480),
        fig4_sets_per_point=20,
        fig5_topologies=tuple(_mesh_list()[::2]),
        fig5_mappings=20,
        didactic_offset_step=4,
        buffer_depths=(2, 4, 8, 16, 32, 64, 100),
        buffer_sets=20,
        validation_buffer_depths=(2, 4, 10, 16),
        validation_synthetic_sets=5,
    ),
    "paper": Scale(
        name="paper",
        fig4a_flow_counts=tuple(range(40, 431, 30)),
        fig4b_flow_counts=tuple(range(80, 521, 20)),
        fig4_sets_per_point=100,
        fig5_topologies=tuple(_mesh_list()),
        fig5_mappings=100,
        didactic_offset_step=1,
        buffer_depths=(2, 4, 8, 16, 32, 64, 100),
        buffer_sets=100,
        validation_buffer_depths=(2, 4, 8, 10, 16, 32),
        validation_synthetic_sets=10,
    ),
}


def get_scale(name: str | None = None) -> Scale:
    """Resolve a preset by name, or from ``REPRO_SCALE`` (default "ci").

    >>> get_scale("paper").fig4_sets_per_point
    100
    """
    if name is None:
        name = os.environ.get("REPRO_SCALE", "ci")
    try:
        return _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; pick one of {sorted(_PRESETS)}"
        ) from None
