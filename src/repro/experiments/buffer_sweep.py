"""Buffer-size ablation (Section VI claim).

The paper: "We have performed the same experiments with a range of
different buffer sizes between 2 and 100 [...] in every case, the analysis
was able to guarantee schedulability of a smaller number of flow sets when
considering routers with larger buffers."

This experiment fixes one Figure 4 load point and sweeps the buffer depth,
reporting the percentage of flow sets IBN deems schedulable per depth —
expected to be monotonically non-increasing in the depth (a property test
asserts this on top of the benchmark output).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.analyses.ibn import IBNAnalysis
from repro.core.engine import is_schedulable
from repro.core.interference import InterferenceGraph
from repro.experiments.schedulability_sweep import SweepResult
from repro.flows.flowset import FlowSet
from repro.noc.platform import NoCPlatform
from repro.noc.topology import Mesh2D
from repro.util.rng import spawn_rng
from repro.workloads.synthetic import SyntheticConfig, synthetic_flows


def buffer_sweep(
    mesh: tuple[int, int],
    buffer_depths: Sequence[int],
    num_flows: int,
    sets: int,
    *,
    seed: int,
    config_kwargs: dict | None = None,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """IBN schedulability versus per-VC buffer depth at a fixed load."""
    cols, rows = mesh
    config = SyntheticConfig(num_flows=num_flows, **(config_kwargs or {}))
    base_platform = NoCPlatform(Mesh2D(cols, rows), buf=min(buffer_depths))
    analysis = IBNAnalysis()
    result = SweepResult(x_label="per-VC buffer depth (flits)", sets_per_point=sets)

    # Generate the flow sets once; every depth sees identical traffic.
    all_flows = []
    for set_index in range(sets):
        rng = spawn_rng(seed, "synthetic", num_flows, set_index)
        all_flows.append(
            synthetic_flows(config, base_platform.topology.num_nodes, rng)
        )
    graphs: list[InterferenceGraph] = [
        InterferenceGraph(FlowSet(base_platform, flows)) for flows in all_flows
    ]

    for depth in buffer_depths:
        platform = base_platform.with_buffers(depth)
        schedulable = 0
        for flows, graph in zip(all_flows, graphs):
            flowset = FlowSet(platform, flows)
            schedulable += is_schedulable(flowset, analysis, graph=graph)
        percentage = 100.0 * schedulable / sets
        result.add_point(depth, {"IBN": percentage})
        if progress is not None:
            progress(f"buf={depth}: IBN={percentage:.0f}%")
    return result
