"""Buffer-size ablation (Section VI claim).

The paper: "We have performed the same experiments with a range of
different buffer sizes between 2 and 100 [...] in every case, the analysis
was able to guarantee schedulability of a smaller number of flow sets when
considering routers with larger buffers."

This experiment fixes one Figure 4 load point and sweeps the buffer depth,
reporting the percentage of flow sets IBN deems schedulable per depth —
expected to be monotonically non-increasing in the depth (a property test
asserts this on top of the benchmark output).

Runs on the campaign engine: one content-addressed job per
``(depth, set-chunk)``; every depth sees byte-identical traffic because
the per-set RNG derivation depends only on the campaign seed and the set
index, never on the depth.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.campaigns.progress import Progress
from repro.campaigns.registry import CampaignKind, Plan, register_kind
from repro.campaigns.scheduler import worker_platform
from repro.campaigns.spec import (
    CampaignSpec,
    Job,
    chunk_size_param,
    spec_param,
)
from repro.campaigns import registry as _registry
from repro.core.analyses.ibn import IBNAnalysis
from repro.core.engine import is_schedulable
from repro.core.interference import InterferenceGraph
from repro.experiments.schedulability_sweep import (
    SweepResult,
    default_chunk_size,
    sweep_csv_export,
    sweep_to_jsonable,
)
from repro.flows.flowset import FlowSet
from repro.util.rng import spawn_rng
from repro.workloads.synthetic import SyntheticConfig, synthetic_flows


#: Worker-local (flows, graph) cache keyed by the depth-independent part
#: of a chunk's identity.  Traffic and interference geometry do not
#: depend on the buffer depth, so the chunks of different depths share
#: one generation + graph build per set whenever they land on the same
#: worker (always, in serial runs — restoring the pre-engine
#: "generate the flow sets once" behaviour).  Bounded FIFO so paper-scale
#: campaigns with many distinct chunks cannot grow it without limit.
_CHUNK_CACHE: dict[tuple, list] = {}
_CHUNK_CACHE_LIMIT = 64


def _chunk_flows_and_graphs(
    platform, params: Mapping
) -> list[tuple[list, InterferenceGraph]]:
    """The chunk's flow sets with their buffer-independent graphs."""
    num_flows = params["num_flows"]
    key = (
        params["seed"],
        num_flows,
        params["set_start"],
        params["set_count"],
        tuple(params["mesh"]),
        tuple(sorted(params["config"].items())),
    )
    cached = _CHUNK_CACHE.get(key)
    if cached is None:
        config = SyntheticConfig(num_flows=num_flows, **params["config"])
        cached = []
        set_start = params["set_start"]
        for set_index in range(set_start, set_start + params["set_count"]):
            rng = spawn_rng(params["seed"], "synthetic", num_flows, set_index)
            flows = synthetic_flows(config, platform.topology.num_nodes, rng)
            cached.append((flows, InterferenceGraph(FlowSet(platform, flows))))
        while len(_CHUNK_CACHE) >= _CHUNK_CACHE_LIMIT:
            _CHUNK_CACHE.pop(next(iter(_CHUNK_CACHE)))
        _CHUNK_CACHE[key] = cached
    return cached


@_registry.job_executor("buffer_chunk")
def run_buffer_chunk(params: Mapping) -> dict:
    """Worker: IBN verdicts for one depth over one chunk of flow sets."""
    return run_buffer_chunk_block([params])[0]


@_registry.block_executor("buffer_chunk")
def run_buffer_chunk_block(params_list: Sequence[Mapping]) -> list[dict]:
    """Worker: a block of depth-chunks as one mixed-depth scenario batch.

    Every (depth, set) cell of the block becomes one scenario of a
    single :func:`~repro.core.batch.analyze_batch` call; the cells of
    different depths share their flow sets and buffer-agnostic graphs
    through the worker-local chunk cache exactly as the per-job path
    does.  Per-job results are identical to :func:`run_buffer_chunk`.
    """
    from repro.core.batch import Scenario, analyze_batch, min_batch_flows

    scenarios: list[Scenario] = []
    spans: list[tuple[int, int]] = []
    for params in params_list:
        cols, rows = params["mesh"]
        platform = worker_platform(cols, rows, params["depth"])
        analysis = IBNAnalysis()
        start = len(scenarios)
        for flows, graph in _chunk_flows_and_graphs(platform, params):
            scenarios.append(
                Scenario(FlowSet(platform, flows), analysis, graph=graph)
            )
        spans.append((start, len(scenarios)))
    if sum(len(s.flowset) for s in scenarios) >= min_batch_flows():
        batch = analyze_batch(scenarios, early_exit=True)
        verdicts = [r.complete and r.schedulable for r in batch]
    else:
        verdicts = [
            is_schedulable(s.flowset, s.analysis, graph=s.graph)
            for s in scenarios
        ]
    return [
        {
            "schedulable": sum(verdicts[start:stop]),
            "sets": params["set_count"],
        }
        for params, (start, stop) in zip(params_list, spans)
    ]


def buffer_sweep_spec(
    mesh: tuple[int, int],
    buffer_depths: Sequence[int],
    num_flows: int,
    sets: int,
    *,
    seed: int,
    name: str = "buffer_sweep",
    config_kwargs: dict | None = None,
    chunk_size: int | None = None,
    title: str | None = None,
) -> CampaignSpec:
    """Declare the buffer-depth ablation as a campaign spec."""
    return CampaignSpec(
        kind="buffer_sweep",
        name=name,
        params={
            "mesh": list(mesh),
            "buffer_depths": list(buffer_depths),
            "num_flows": num_flows,
            "sets": sets,
            "seed": seed,
            "config": dict(config_kwargs or {}),
            "chunk_size": chunk_size,
            "title": title,
        },
    )


def _buffer_params(spec: CampaignSpec) -> dict:
    """Validated spec parameters with kind defaults (JSON specs too)."""
    return {
        "mesh": spec_param(spec, "mesh"),
        "buffer_depths": spec_param(spec, "buffer_depths"),
        "num_flows": spec_param(spec, "num_flows"),
        "sets": spec_param(spec, "sets"),
        "seed": spec_param(spec, "seed"),
        "config": spec_param(spec, "config", {}),
        "chunk_size": chunk_size_param(spec),
    }


def _buffer_plan(spec: CampaignSpec) -> Plan:
    p = _buffer_params(spec)
    cols, rows = p["mesh"]
    chunk_size = p["chunk_size"] or default_chunk_size(p["sets"])
    depth_jobs: list[list[Job]] = []
    for depth in p["buffer_depths"]:
        chunks = []
        for set_start in range(0, p["sets"], chunk_size):
            set_count = min(chunk_size, p["sets"] - set_start)
            chunks.append(
                Job(
                    kind="buffer_chunk",
                    params={
                        "mesh": [cols, rows],
                        "depth": depth,
                        "num_flows": p["num_flows"],
                        "set_start": set_start,
                        "set_count": set_count,
                        "seed": p["seed"],
                        "config": p["config"],
                    },
                    label=(
                        f"{spec.name} buf={depth} "
                        f"sets {set_start}+{set_count}"
                    ),
                )
            )
        depth_jobs.append(chunks)
    return Plan(
        jobs=[job for chunks in depth_jobs for job in chunks],
        context=depth_jobs,
    )


def _buffer_aggregate(
    spec: CampaignSpec, plan: Plan, results: Mapping[str, Mapping]
) -> SweepResult:
    p = _buffer_params(spec)
    result = SweepResult(
        x_label="per-VC buffer depth (flits)", sets_per_point=p["sets"]
    )
    for depth, chunks in zip(p["buffer_depths"], plan.context):
        schedulable = sum(
            results[job.job_id]["schedulable"] for job in chunks
        )
        result.add_point(depth, {"IBN": 100.0 * schedulable / p["sets"]})
    return result


def _buffer_render(spec: CampaignSpec, result: SweepResult) -> str:
    from repro.experiments.report import render_sweep

    p = _buffer_params(spec)
    title = spec.params.get("title") or (
        f"Buffer-depth ablation (IBN, {p['num_flows']} flows on "
        f"{p['mesh'][0]}x{p['mesh'][1]})"
    )
    return render_sweep(result, title=title)


BUFFER_SWEEP_KIND = register_kind(
    CampaignKind(
        name="buffer_sweep",
        plan=_buffer_plan,
        aggregate=_buffer_aggregate,
        render=_buffer_render,
        to_csv=sweep_csv_export,
        to_jsonable=sweep_to_jsonable,
    )
)


def buffer_sweep(
    mesh: tuple[int, int],
    buffer_depths: Sequence[int],
    num_flows: int,
    sets: int,
    *,
    seed: int,
    config_kwargs: dict | None = None,
    workers: int = 1,
    progress: Progress | None = None,
) -> SweepResult:
    """IBN schedulability versus per-VC buffer depth at a fixed load."""
    from repro.campaigns.engine import run_campaign

    spec = buffer_sweep_spec(
        mesh,
        buffer_depths,
        num_flows,
        sets,
        seed=seed,
        config_kwargs=config_kwargs,
    )
    return run_campaign(spec, workers=workers, progress=progress).result
