"""Registries binding campaign kinds and job executors to their code.

Two registries, both keyed by plain strings so that specs and stored
jobs stay pure data:

* **job executors** — ``@job_executor("sched_chunk")`` registers the
  worker-side function for one job kind.  Scheduler worker processes
  resolve executors by name, importing the builtin experiment modules
  on first use (:func:`load_builtins`), so a job line in a store is
  runnable by any process that can import ``repro``.
* **campaign kinds** — a :class:`CampaignKind` bundles the five hooks a
  declarative campaign needs: ``plan`` (spec -> deterministic job list
  plus aggregation scaffolding), ``aggregate`` (job results -> domain
  result object), ``render`` (result -> the exact text the runner
  prints), ``to_csv`` and ``to_jsonable`` (exporter payloads).

The experiment modules under :mod:`repro.experiments` register their
kinds at import time; :func:`load_builtins` imports them lazily to keep
``repro.campaigns`` free of import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.campaigns.spec import CampaignSpec, Job

_EXECUTORS: dict[str, Callable[[Mapping[str, Any]], Any]] = {}
_BLOCK_EXECUTORS: dict[str, Callable[[Sequence[Mapping[str, Any]]], list]] = {}
_KINDS: dict[str, "CampaignKind"] = {}
_BUILTINS_LOADED = False

#: Modules that register builtin campaign kinds / job executors on
#: import: the seven experiment families plus the serving layer's
#: single-request jobs (so any worker process can run a served query).
_BUILTIN_MODULES = (
    "repro.experiments.schedulability_sweep",
    "repro.experiments.av_topologies",
    "repro.experiments.buffer_sweep",
    "repro.experiments.routing_study",
    "repro.experiments.didactic_table",
    "repro.experiments.validation_sweep",
    "repro.experiments.allocation_sweep",
    "repro.serve.jobs",
    "repro.campaigns.faults",
)


@dataclass
class Plan:
    """A spec expanded into jobs, plus kind-private aggregation context."""

    jobs: list[Job]
    context: Any = None


@dataclass(frozen=True)
class CampaignKind:
    """One campaign family: how to expand, aggregate and export it."""

    name: str
    plan: Callable[[CampaignSpec], Plan]
    aggregate: Callable[[CampaignSpec, Plan, Mapping[str, Any]], Any]
    render: Callable[[CampaignSpec, Any], str]
    to_csv: Callable[[CampaignSpec, Any], str] | None = None
    to_jsonable: Callable[[CampaignSpec, Any], Any] | None = None


def job_executor(kind: str):
    """Class decorator-style registration of one job kind's executor."""

    def register(fn: Callable[[Mapping[str, Any]], Any]):
        if kind in _EXECUTORS and _EXECUTORS[kind] is not fn:
            raise ValueError(f"job kind {kind!r} registered twice")
        _EXECUTORS[kind] = fn
        return fn

    return register


def block_executor(kind: str):
    """Register a *block* executor: many same-kind jobs in one call.

    The function receives a list of job params and must return a list
    of results **aligned with the input order** — each entry exactly
    what the kind's plain executor would have returned for that job.
    The scheduler ships whole blocks to worker processes when one is
    registered (one pickle per block instead of one per job) and the
    executor batches the contained scenarios through the columnar
    kernel (:mod:`repro.core.batch`).  Per-job executors remain
    mandatory: a block executor is an optimisation, never a semantic
    change.
    """

    def register(fn: Callable[[Sequence[Mapping[str, Any]]], list]):
        if kind in _BLOCK_EXECUTORS and _BLOCK_EXECUTORS[kind] is not fn:
            raise ValueError(f"block executor for {kind!r} registered twice")
        _BLOCK_EXECUTORS[kind] = fn
        return fn

    return register


def has_block_executor(kind: str) -> bool:
    """Does this job kind batch whole blocks (builtins loaded on demand)?"""
    load_builtins()
    return kind in _BLOCK_EXECUTORS


def execute_block(kind: str, params_list: Sequence[Mapping[str, Any]]) -> list:
    """Run several same-kind jobs, batched when the kind supports it.

    Falls back to per-job execution for kinds without a block executor,
    so callers can treat every kind uniformly.
    """
    load_builtins()
    fn = _BLOCK_EXECUTORS.get(kind)
    if fn is None:
        return [execute_job(kind, params) for params in params_list]
    results = list(fn(list(params_list)))
    if len(results) != len(params_list):
        raise RuntimeError(
            f"block executor for {kind!r} returned {len(results)} results "
            f"for {len(params_list)} jobs"
        )
    return results


def register_kind(kind: CampaignKind) -> CampaignKind:
    """Register one campaign kind (idempotent per kind object)."""
    existing = _KINDS.get(kind.name)
    if existing is not None and existing is not kind:
        raise ValueError(f"campaign kind {kind.name!r} registered twice")
    _KINDS[kind.name] = kind
    return kind


def load_builtins() -> None:
    """Import the builtin experiment modules (registering their kinds)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    _BUILTINS_LOADED = True


def get_kind(name: str) -> CampaignKind:
    """Resolve a campaign kind by name (builtins loaded on demand)."""
    load_builtins()
    try:
        return _KINDS[name]
    except KeyError:
        raise ValueError(
            f"unknown campaign kind {name!r}; "
            f"available kinds: {', '.join(sorted(_KINDS))}"
        ) from None


def get_executor(kind: str) -> Callable[[Mapping[str, Any]], Any]:
    """Resolve a job executor by kind (builtins loaded on demand)."""
    load_builtins()
    try:
        return _EXECUTORS[kind]
    except KeyError:
        raise ValueError(
            f"no executor registered for job kind {kind!r}; "
            f"known kinds: {', '.join(sorted(_EXECUTORS))}"
        ) from None


def execute_job(kind: str, params: Mapping[str, Any]) -> Any:
    """Run one job in the current process (used serially and by workers)."""
    return get_executor(kind)(params)


def kind_names() -> Sequence[str]:
    """All registered campaign kinds (builtins included)."""
    load_builtins()
    return tuple(sorted(_KINDS))
