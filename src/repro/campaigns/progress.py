"""The one progress protocol shared by every campaign.

Before the campaign engine, each experiment carried its own ad-hoc
``progress: Callable[[str], None]`` printer with hand-rolled messages.
The scheduler now emits one :class:`ProgressEvent` per completed job
(and one opening event when a resumed campaign skips stored jobs), so a
single callback type serves every campaign and carries the numbers a
front end actually wants: jobs done / total, how many were satisfied
from the result store, and an ETA extrapolated from the jobs finished
so far.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class ProgressEvent:
    """One scheduler heartbeat.

    ``done`` counts jobs executed in this run, ``skipped`` the jobs
    replayed from the store, ``total`` the campaign's unique jobs; the
    invariant ``done + skipped <= total`` always holds and equality
    marks the final event.  ``eta_s`` is ``None`` until at least one job
    has finished in this run.
    """

    done: int
    total: int
    skipped: int
    label: str
    elapsed_s: float
    eta_s: float | None

    @property
    def finished(self) -> int:
        """Jobs accounted for so far (executed + replayed)."""
        return self.done + self.skipped


#: The callback protocol: anything accepting a :class:`ProgressEvent`.
Progress = Callable[[ProgressEvent], None]


def stderr_progress(event: ProgressEvent) -> None:
    """Default printer: one stderr line per event, with counts and ETA."""
    eta = f", eta {event.eta_s:.0f}s" if event.eta_s is not None else ""
    label = f" {event.label}" if event.label else ""
    print(
        f"  .. [{event.finished}/{event.total}]{label}{eta}",
        file=sys.stderr,
    )
