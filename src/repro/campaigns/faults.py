"""Fault-injection jobs: the test surface of the fault-tolerant tier.

The ``fault`` job kind misbehaves *on demand* — raise, hang, die by
SIGKILL (how the kernel's OOM killer takes a worker out), or fail only
the first N attempts — so the scheduler's retry / timeout / quarantine
/ pool-self-healing machinery can be exercised deterministically by
ordinary campaigns (``tools/chaos.py`` and the test suite).  The
matching ``faults`` campaign *kind* wraps a list of such jobs into a
spec whose aggregation is the trivial key -> value mapping, giving the
chaos scenarios a byte-comparable artefact.

Fail-N-times jobs count their attempts in a shared ``state_dir`` using
``O_CREAT | O_EXCL`` marker files, the only primitive that stays atomic
across processes — every execution attempt (in any worker, after any
pool rebuild) claims exactly one attempt number.  The ``state_dir`` is
part of the job params on purpose: attempt state is semantic input for
a job whose behaviour depends on how often it ran, so two scenarios
never share a content address.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.campaigns.registry import (
    CampaignKind,
    Plan,
    block_executor,
    job_executor,
    register_kind,
)
from repro.campaigns.spec import CampaignSpec, Job, spec_param

#: Failure modes ``run_fault`` understands.
FAULT_MODES = ("ok", "raise", "hang", "kill", "exit")


class FaultInjected(RuntimeError):
    """The deliberate failure raised by ``mode="raise"`` fault jobs."""


def _claim_attempt(state_dir: str, key: str) -> int:
    """Atomically claim the next attempt number for a fail-N job.

    Marker files ``<key>.<n>`` are created with ``O_CREAT | O_EXCL``;
    the first ``n`` this process manages to create is its attempt
    number.  Works across processes and pool rebuilds — exactly one
    claimant per number, ever.
    """
    directory = Path(state_dir)
    directory.mkdir(parents=True, exist_ok=True)
    attempt = 1
    while True:
        marker = directory / f"{key}.{attempt}"
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            attempt += 1
            continue
        os.close(fd)
        return attempt


@job_executor("fault")
def run_fault(params: Mapping[str, Any]) -> dict:
    """Execute one fault job: misbehave as instructed, else succeed.

    Params: ``key`` (required; names the job), ``mode`` (one of
    :data:`FAULT_MODES`, default ``"ok"``), ``value`` (success payload,
    default the key), ``fail_times`` + ``state_dir`` (misbehave only on
    the first N attempts, counted durably in ``state_dir``), ``hang_s``
    (sleep length for ``mode="hang"``, default 60).
    """
    key = params["key"]
    mode = params.get("mode", "ok")
    if mode not in FAULT_MODES:
        raise ValueError(f"unknown fault mode {mode!r}")
    fail_times = params.get("fail_times")
    if fail_times is not None:
        attempt = _claim_attempt(params["state_dir"], key)
        if attempt > fail_times:
            mode = "ok"
    if mode == "raise":
        raise FaultInjected(f"injected failure for {key!r}")
    if mode == "hang":
        time.sleep(params.get("hang_s", 60))
    elif mode == "kill":
        # SIGKILL this worker — indistinguishable from an OOM kill.
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "exit":
        os._exit(3)
    return {"key": key, "value": params.get("value", key)}


@block_executor("fault")
def run_fault_block(params_list: Sequence[Mapping[str, Any]]) -> list[dict]:
    """Trivial block executor: lets fault jobs ship in multi-job blocks.

    Exists so the scheduler's block-splitting path (a failed multi-job
    block re-run as singletons) is exercisable — a kind without a block
    executor only ever ships one job per block.
    """
    return [run_fault(params) for params in params_list]


def _plan(spec: CampaignSpec) -> Plan:
    entries = spec_param(spec, "jobs")
    if not isinstance(entries, list) or not entries:
        raise ValueError(
            f"campaign {spec.name!r}: 'jobs' must be a non-empty list"
        )
    jobs = []
    for entry in entries:
        if not isinstance(entry, Mapping) or "key" not in entry:
            raise ValueError(
                f"campaign {spec.name!r}: each fault job needs a 'key'"
            )
        jobs.append(
            Job(kind="fault", params=dict(entry),
                label=f"fault {entry['key']}")
        )
    return Plan(jobs=jobs, context=None)


def _aggregate(spec: CampaignSpec, plan: Plan, results: Mapping[str, Any]):
    values = {}
    for job in plan.jobs:
        body = results[job.job_id]
        values[body["key"]] = body["value"]
    return {"values": values}


def _render(spec: CampaignSpec, result: Any) -> str:
    lines = [f"faults campaign {spec.name}: {len(result['values'])} jobs"]
    lines += [
        f"  {key} = {value}" for key, value in sorted(result["values"].items())
    ]
    return "\n".join(lines)


def _to_csv(spec: CampaignSpec, result: Any) -> str:
    rows = ["key,value"]
    rows += [
        f"{key},{value}" for key, value in sorted(result["values"].items())
    ]
    return "\n".join(rows) + "\n"


def _to_jsonable(spec: CampaignSpec, result: Any) -> Any:
    return result


register_kind(
    CampaignKind(
        name="faults",
        plan=_plan,
        aggregate=_aggregate,
        render=_render,
        to_csv=_to_csv,
        to_jsonable=_to_jsonable,
    )
)


def faults_spec(entries: Sequence[Mapping[str, Any]],
                name: str = "faults") -> CampaignSpec:
    """Build a ``faults`` campaign spec from job entries."""
    return CampaignSpec(
        kind="faults", name=name, params={"jobs": [dict(e) for e in entries]}
    )
