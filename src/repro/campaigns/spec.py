"""Declarative campaign specifications and content-addressed jobs.

A :class:`CampaignSpec` is pure data: a campaign *kind* (which family of
experiment — ``schedulability``, ``av_topologies``, ``buffer_sweep``,
``routing``, ``didactic_table``, ``validation``), a name used for export
files, and a kind-specific ``params`` mapping describing the evaluation
grid (topologies × flow counts × buffer depths × seeds × analysis
points).  Specs are expressible from Python and as JSON documents
(``python -m repro campaign spec.json``), and everything downstream —
job expansion, scheduling, storage, aggregation — is a deterministic
function of the spec.

Jobs are content-addressed: :func:`job_hash` fingerprints the canonical
JSON of ``{kind, params}``, so a job's identity is exactly the
computation it denotes.  **Stability rules** (see DESIGN.md): params
hold only semantic inputs (never worker counts, timestamps, or paths);
chunk boundaries are derived from spec fields alone so the same spec
always expands to the same job set; params are normalised through JSON
before hashing so tuples vs lists cannot split the address space.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

SPEC_FORMAT = "repro-campaign/1"


def canonical_json(data: Any) -> str:
    """Canonical JSON text: sorted keys, compact separators, finite floats.

    The canonical form is the hashing substrate, so it must be stable
    across processes and Python versions: ``sort_keys`` fixes object
    order, compact separators fix whitespace, and ``allow_nan=False``
    rejects values whose text form is not valid JSON.

    >>> canonical_json({"b": (1, 2), "a": None})
    '{"a":null,"b":[1,2]}'
    """
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def jsonable(data: Any) -> Any:
    """Normalise nested data through a JSON round-trip (tuples -> lists)."""
    return json.loads(canonical_json(data))


def job_hash(kind: str, params: Mapping[str, Any]) -> str:
    """The stable content address of one job.

    >>> job_hash("demo", {"n": 1}) == job_hash("demo", {"n": 1})
    True
    >>> job_hash("demo", {"n": 1}) == job_hash("demo", {"n": 2})
    False
    """
    payload = canonical_json({"kind": kind, "params": jsonable(params)})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(eq=False)
class Job:
    """One schedulable unit of work: an executor kind plus its inputs.

    ``params`` must be JSON-able (they are normalised at construction);
    ``label`` is a human-readable description used for progress lines
    and is deliberately **excluded** from the content address.
    """

    kind: str
    params: dict = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        self.params = jsonable(self.params)
        self._job_id: str | None = None

    @property
    def job_id(self) -> str:
        """Content address of this job (cached)."""
        if self._job_id is None:
            self._job_id = job_hash(self.kind, self.params)
        return self._job_id


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative campaign: kind + name + grid parameters.

    >>> spec = CampaignSpec(kind="schedulability", name="fig4a",
    ...                     params={"mesh": [4, 4]})
    >>> CampaignSpec.from_dict(spec.to_dict()) == spec
    True
    """

    kind: str
    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or any(sep in self.name for sep in "/\\"):
            raise ValueError(
                f"campaign name must be a plain file stem, got {self.name!r}"
            )
        # Freeze the params into their canonical (JSON-normalised) form
        # so equality, hashing and serialisation all agree.
        object.__setattr__(self, "params", jsonable(dict(self.params)))

    def to_dict(self) -> dict:
        """Serialise to the on-disk JSON document shape."""
        return {
            "format": SPEC_FORMAT,
            "kind": self.kind,
            "name": self.name,
            "params": jsonable(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` data (format-checked)."""
        declared = data.get("format")
        if declared != SPEC_FORMAT:
            raise ValueError(
                f"unsupported campaign format {declared!r}; "
                f"expected {SPEC_FORMAT!r}"
            )
        for key in ("kind", "name"):
            if not isinstance(data.get(key), str):
                raise ValueError(f"campaign spec needs a string {key!r} field")
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise ValueError("campaign spec 'params' must be an object")
        return cls(kind=data["kind"], name=data["name"], params=dict(params))

    def canonical(self) -> str:
        """Canonical JSON text of the whole spec (provenance records)."""
        return canonical_json(self.to_dict())


_MISSING = object()


def spec_param(spec: CampaignSpec, name: str, default: Any = _MISSING) -> Any:
    """A spec parameter, with a campaign-level error when absent.

    Plans read required fields through this so that hand-written JSON
    specs fail with a message naming the spec and the field instead of
    a raw ``KeyError`` deep inside expansion.
    """
    value = spec.params.get(name, _MISSING)
    if value is _MISSING:
        if default is not _MISSING:
            return default
        raise ValueError(
            f"campaign {spec.name!r} (kind={spec.kind}) is missing "
            f"required parameter {name!r}"
        )
    return value


def chunk_size_param(spec: CampaignSpec, name: str = "chunk_size") -> int | None:
    """Validated optional chunk size (``None`` -> kind default).

    Guards the JSON spec path the Python builders cannot: a malformed
    ``chunk_size`` would otherwise expand to an empty job list and a
    silently all-zero campaign.
    """
    value = spec.params.get(name)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ValueError(
            f"campaign {spec.name!r}: {name} must be a positive integer "
            f"or null, got {value!r}"
        )
    return value


def save_spec(spec: CampaignSpec, path: str | Path) -> Path:
    """Write a spec as pretty-printed JSON."""
    target = Path(path)
    target.write_text(
        json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def load_spec(path: str | Path) -> CampaignSpec:
    """Read a campaign spec document (``python -m repro campaign ...``)."""
    return CampaignSpec.from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )
