"""The shared scheduler: one process pool for every campaign's jobs.

The scheduler is where all six experiments' hand-rolled worker pools
collapsed into one code path.  It takes the deterministic job list a
spec expands to, drops every job whose content address is already in
the result store (resume), deduplicates identical jobs within the run
(two x-axis points with the same parameters share one computation), and
fans the remainder out over a single :class:`ProcessPoolExecutor` —
emitting one :class:`~repro.campaigns.progress.ProgressEvent` per
completion.

Jobs ship in same-kind **blocks** — one pickle each way per block
instead of per job — and kinds with a registered block executor
(:func:`repro.campaigns.registry.block_executor`) batch each block's
scenarios through the columnar kernel in the worker; serial runs use
cap-sized blocks for maximal batching.  Worker processes resolve
executors through the registry and reuse process-local platforms via
:func:`worker_platform` (the pattern pioneered by
``schedulability_sweep._worker_platform``): one topology — and with it
one memoized route table — per (mesh, routing) for the lifetime of the
worker, whatever mix of campaigns flows through the pool.

Determinism: results are keyed by content address and aggregation folds
them in job-list order, so worker counts, chunk completion order and
cold-vs-resumed runs all produce identical campaign results.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.campaigns import registry
from repro.campaigns.progress import Progress, ProgressEvent
from repro.campaigns.store import MemoryStore
from repro.noc.platform import NoCPlatform
from repro.noc.routing import RoutingFunction, XYRouting, YXRouting
from repro.noc.topology import Mesh2D

#: Process-local platform cache (see module docstring).  Keyed by
#: (cols, rows, buf, routing name); workers keep one platform per key —
#: and one shared topology per mesh, so buffer-depth variants of the
#: same mesh reuse a single memoized route table.
_WORKER_PLATFORMS: dict[tuple, NoCPlatform] = {}
_WORKER_MESHES: dict[tuple[int, int], Mesh2D] = {}

_ROUTING_TYPES: dict[str, type[RoutingFunction]] = {
    "xy": XYRouting,
    "yx": YXRouting,
}
#: One routing-function instance per name — route tables live on the
#: instance (keyed weakly by topology), so sharing it is what lets
#: buffer variants share routes.
_WORKER_ROUTINGS: dict[str, RoutingFunction] = {}


def worker_platform(
    cols: int, rows: int, buf: int, routing: str = "xy"
) -> NoCPlatform:
    """A process-local, route-cache-sharing mesh platform."""
    key = (cols, rows, buf, routing)
    platform = _WORKER_PLATFORMS.get(key)
    if platform is None:
        mesh = _WORKER_MESHES.get((cols, rows))
        if mesh is None:
            mesh = _WORKER_MESHES.setdefault((cols, rows), Mesh2D(cols, rows))
        router = _WORKER_ROUTINGS.get(routing)
        if router is None:
            router = _WORKER_ROUTINGS.setdefault(
                routing, _ROUTING_TYPES[routing]()
            )
        platform = NoCPlatform(mesh, buf=buf, routing=router)
        _WORKER_PLATFORMS[key] = platform
    return platform


#: Jobs shipped per block at most: bounds both the batch kernel's array
#: footprint inside a worker and the progress-report granularity.
_BLOCK_JOB_CAP = 24


def _pool_execute_block(
    payload: tuple[str, list[tuple[str, dict]]]
) -> list[tuple[str, Any]]:
    """Worker entry point: run one same-kind block of jobs.

    One pickle each way per *block* instead of per job; kinds with a
    registered block executor additionally batch the block's scenarios
    through the columnar kernel.  Results come back keyed by content
    address, so completion order never matters.
    """
    kind, items = payload
    results = registry.execute_block(kind, [params for _, params in items])
    return [(job_id, result) for (job_id, _), result in zip(items, results)]


def _plan_blocks(todo: Mapping[str, Any], workers: int) -> list[tuple[str, list]]:
    """Group the todo jobs into same-kind blocks (insertion order kept).

    Kinds with a block executor get multi-job blocks sized for roughly
    four blocks per worker (capped at :data:`_BLOCK_JOB_CAP`; serial
    callers pass ``workers=0`` for cap-sized blocks); other kinds ship
    one job per block, preserving their old fan-out shape.
    """
    by_kind: dict[str, list] = {}
    for job_id, job in todo.items():
        by_kind.setdefault(job.kind, []).append((job_id, job))
    blocks: list[tuple[str, list]] = []
    for kind, items in by_kind.items():
        if registry.has_block_executor(kind):
            if workers < 1:
                size = _BLOCK_JOB_CAP
            else:
                size = min(
                    _BLOCK_JOB_CAP,
                    max(1, -(-len(items) // (workers * 4))),
                )
        else:
            size = 1
        for start in range(0, len(items), size):
            blocks.append((kind, items[start:start + size]))
    return blocks


@dataclass(frozen=True)
class RunStats:
    """Accounting of one scheduler pass over a campaign's job list."""

    jobs_total: int
    jobs_skipped: int
    jobs_run: int
    elapsed_s: float

    @property
    def resumed(self) -> bool:
        """True when at least one job was replayed from the store."""
        return self.jobs_skipped > 0


class Scheduler:
    """Expand-once, run-anywhere job scheduler over one shared pool.

    ``pool`` optionally injects an externally-owned
    :class:`concurrent.futures.Executor` (the serving layer shares one
    process pool between single-request jobs and whole campaigns); the
    scheduler then fans out on it without ever shutting it down.  When
    ``pool`` is ``None``, a private ``ProcessPoolExecutor`` is created
    per run for ``workers > 1`` as before.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        progress: Progress | None = None,
        pool: Executor | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.progress = progress
        self.pool = pool

    def run(
        self, jobs: Sequence, store: MemoryStore
    ) -> tuple[dict[str, Any], RunStats]:
        """Execute every job not already stored; return results + stats.

        The returned mapping covers each distinct job id exactly once,
        whether its result was computed now or replayed from the store.
        """
        start = time.perf_counter()
        stored = store.load()
        needed: dict[str, Any] = {}  # job_id -> Job, insertion-ordered
        for job in jobs:
            needed.setdefault(job.job_id, job)
        todo = {
            job_id: job
            for job_id, job in needed.items()
            if job_id not in stored
        }
        skipped = len(needed) - len(todo)
        results = {
            job_id: stored[job_id] for job_id in needed if job_id in stored
        }
        done = 0

        def emit(label: str) -> None:
            if self.progress is None:
                return
            elapsed = time.perf_counter() - start
            eta = None
            if 0 < done and todo:
                eta = elapsed / done * (len(todo) - done)
            self.progress(
                ProgressEvent(
                    done=done,
                    total=len(needed),
                    skipped=skipped,
                    label=label,
                    elapsed_s=elapsed,
                    eta_s=eta,
                )
            )

        if skipped:
            emit(f"resumed: {skipped} stored jobs skipped")

        def absorb(job_id: str, result: Any) -> None:
            nonlocal done
            done += 1
            results[job_id] = store.put(job_id, result)

        # An injected pool is used even for a single job (the serving
        # layer must keep heavy work out of its own process); an owned
        # pool is only worth spawning when there is real fan-out.
        if todo and (
            self.pool is not None or (self.workers > 1 and len(todo) > 1)
        ):
            owned: ProcessPoolExecutor | None = None
            pool = self.pool
            if pool is None:
                owned = pool = ProcessPoolExecutor(max_workers=self.workers)
            try:
                futures = {
                    pool.submit(
                        _pool_execute_block,
                        (kind, [(jid, job.params) for jid, job in items]),
                    ): items
                    for kind, items in _plan_blocks(todo, self.workers)
                }
                for future in as_completed(futures):
                    labels = {
                        jid: job.label for jid, job in futures[future]
                    }
                    for job_id, result in future.result():
                        absorb(job_id, result)
                        emit(labels[job_id])
            finally:
                if owned is not None:
                    owned.shutdown()
        else:
            # Serial runs batch maximally: every same-kind block goes
            # through execute_block so the columnar kernel sees the
            # largest scenario blocks the cap allows.
            for kind, items in _plan_blocks(todo, workers=0):
                if len(items) == 1:
                    job_id, job = items[0]
                    absorb(job_id, registry.execute_job(kind, job.params))
                    emit(job.label)
                    continue
                block_results = registry.execute_block(
                    kind, [job.params for _, job in items]
                )
                for (job_id, job), result in zip(items, block_results):
                    absorb(job_id, result)
                    emit(job.label)

        stats = RunStats(
            jobs_total=len(needed),
            jobs_skipped=skipped,
            jobs_run=done,
            elapsed_s=time.perf_counter() - start,
        )
        return results, stats
