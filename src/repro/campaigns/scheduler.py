"""The shared scheduler: one process pool for every campaign's jobs.

The scheduler is where all six experiments' hand-rolled worker pools
collapsed into one code path.  It takes the deterministic job list a
spec expands to, drops every job whose content address is already in
the result store (resume), deduplicates identical jobs within the run
(two x-axis points with the same parameters share one computation), and
fans the remainder out over a single :class:`ProcessPoolExecutor` —
emitting one :class:`~repro.campaigns.progress.ProgressEvent` per
completion.

Jobs ship in same-kind **blocks** — one pickle each way per block
instead of per job — and kinds with a registered block executor
(:func:`repro.campaigns.registry.block_executor`) batch each block's
scenarios through the columnar kernel in the worker; serial runs use
cap-sized blocks for maximal batching.  Worker processes resolve
executors through the registry and reuse process-local platforms via
:func:`worker_platform` (the pattern pioneered by
``schedulability_sweep._worker_platform``): one topology — and with it
one memoized route table — per (mesh, routing) for the lifetime of the
worker, whatever mix of campaigns flows through the pool.

Determinism: results are keyed by content address and aggregation folds
them in job-list order, so worker counts, chunk completion order and
cold-vs-resumed runs all produce identical campaign results.

**Fault tolerance** (see DESIGN.md "Fault tolerance"): a
:class:`FaultPolicy` bounds how hard the scheduler fights for each job.
Failed multi-job blocks re-run as singletons to isolate the culprit;
failed singletons retry with exponential backoff up to
``policy.retries`` times, then **quarantine** — a structured
``repro-error/1`` document (:func:`repro.campaigns.store.error_result`)
is stored in the job's slot and the campaign continues without it.
When the scheduler owns its pool it also *self-heals*: a
``BrokenProcessPool`` (a worker OOM-killed or crashed) rebuilds the
pool and resubmits the in-flight blocks — safe because jobs are
content-addressed and deterministic, so a resubmitted job writes the
byte-identical result line it would have written the first time.
Because one dead worker fails *every* in-flight future, the culprit is
ambiguous whenever several blocks were in flight; those blocks drain
through a serial **probe** queue (one block in flight at a time) where
the next break unambiguously convicts the block it killed.  Per-block
wall-clock timeouts (``policy.job_timeout_s``, owned pools only) kill
the workers to reclaim a hung block; the resulting pool break is
recognised as self-inflicted and the innocent blocks resubmit straight
back to the parallel queue.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.campaigns import registry
from repro.campaigns.progress import Progress, ProgressEvent
from repro.core import backend as backend_module
from repro.campaigns.store import MemoryStore, error_result, is_error_result
from repro.noc.platform import NoCPlatform
from repro.noc.routing import RoutingFunction, XYRouting, YXRouting
from repro.noc.topology import Mesh2D

#: Process-local platform cache (see module docstring).  Keyed by
#: (cols, rows, buf, routing name); workers keep one platform per key —
#: and one shared topology per mesh, so buffer-depth variants of the
#: same mesh reuse a single memoized route table.
_WORKER_PLATFORMS: dict[tuple, NoCPlatform] = {}
_WORKER_MESHES: dict[tuple[int, int], Mesh2D] = {}

_ROUTING_TYPES: dict[str, type[RoutingFunction]] = {
    "xy": XYRouting,
    "yx": YXRouting,
}
#: One routing-function instance per name — route tables live on the
#: instance (keyed weakly by topology), so sharing it is what lets
#: buffer variants share routes.
_WORKER_ROUTINGS: dict[str, RoutingFunction] = {}


def worker_platform(
    cols: int, rows: int, buf: int, routing: str = "xy"
) -> NoCPlatform:
    """A process-local, route-cache-sharing mesh platform."""
    key = (cols, rows, buf, routing)
    platform = _WORKER_PLATFORMS.get(key)
    if platform is None:
        mesh = _WORKER_MESHES.get((cols, rows))
        if mesh is None:
            mesh = _WORKER_MESHES.setdefault((cols, rows), Mesh2D(cols, rows))
        router = _WORKER_ROUTINGS.get(routing)
        if router is None:
            router = _WORKER_ROUTINGS.setdefault(
                routing, _ROUTING_TYPES[routing]()
            )
        platform = NoCPlatform(mesh, buf=buf, routing=router)
        _WORKER_PLATFORMS[key] = platform
    return platform


#: Jobs shipped per block at most: bounds both the batch kernel's array
#: footprint inside a worker and the progress-report granularity.
_BLOCK_JOB_CAP = 24


def _pool_execute_block(
    payload: tuple[str, str | None, list[tuple[str, dict]]]
) -> list[tuple[str, Any]]:
    """Worker entry point: run one same-kind block of jobs.

    One pickle each way per *block* instead of per job; kinds with a
    registered block executor additionally batch the block's scenarios
    through the columnar kernel.  Results come back keyed by content
    address, so completion order never matters.  The coordinator's
    compute-backend choice rides along with every block: environment
    inheritance covers fork-started pools, the explicit name covers
    spawn and any pool living longer than a ``set_backend`` call.
    """
    kind, backend_name, items = payload
    backend_module.apply_worker_backend(backend_name)
    results = registry.execute_block(kind, [params for _, params in items])
    return [(job_id, result) for (job_id, _), result in zip(items, results)]


def _plan_blocks(todo: Mapping[str, Any], workers: int) -> list[tuple[str, list]]:
    """Group the todo jobs into same-kind blocks (insertion order kept).

    Kinds with a block executor get multi-job blocks sized for roughly
    four blocks per worker (capped at :data:`_BLOCK_JOB_CAP`; serial
    callers pass ``workers=0`` for cap-sized blocks); other kinds ship
    one job per block, preserving their old fan-out shape.
    """
    by_kind: dict[str, list] = {}
    for job_id, job in todo.items():
        by_kind.setdefault(job.kind, []).append((job_id, job))
    blocks: list[tuple[str, list]] = []
    for kind, items in by_kind.items():
        if registry.has_block_executor(kind):
            if workers < 1:
                size = _BLOCK_JOB_CAP
            else:
                size = min(
                    _BLOCK_JOB_CAP,
                    max(1, -(-len(items) // (workers * 4))),
                )
        else:
            size = 1
        for start in range(0, len(items), size):
            blocks.append((kind, items[start:start + size]))
    return blocks


@dataclass(frozen=True)
class FaultPolicy:
    """How hard the scheduler fights for each job before giving up.

    ``retries`` bounds *re*-executions per job (``retries=2`` means a
    job runs at most 3 times before quarantine); ``job_timeout_s``
    (owned pools only) is the per-block wall-clock budget after which
    the workers are killed and the block handled as timed out;
    ``backoff_s``/``backoff_max_s`` shape the exponential retry delay;
    ``max_pool_rebuilds`` caps self-healing (``None`` derives a
    generous bound from the job count so a systemically-broken
    environment still terminates).
    """

    retries: int = 2
    job_timeout_s: float | None = None
    backoff_s: float = 0.05
    backoff_max_s: float = 2.0
    max_pool_rebuilds: int | None = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise ValueError(
                f"job_timeout_s must be positive, got {self.job_timeout_s}"
            )
        if self.backoff_s < 0 or self.backoff_max_s < 0:
            raise ValueError(
                f"backoff must be >= 0, got {self.backoff_s}/"
                f"{self.backoff_max_s}"
            )

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        return min(
            self.backoff_s * (2 ** max(0, attempt - 1)), self.backoff_max_s
        )

    def rebuild_cap(self, jobs: int) -> int:
        """Effective pool-rebuild bound for a run of ``jobs`` jobs."""
        if self.max_pool_rebuilds is not None:
            return self.max_pool_rebuilds
        return 8 + (self.retries + 1) * max(1, jobs)


@dataclass
class _Block:
    """One in-flight unit of work plus its fault-handling state."""

    kind: str
    items: list  # [(job_id, Job), ...]
    attempts: int = 0  # failed executions so far (singletons only)
    deadline: float | None = None  # monotonic; None = no timeout
    timed_out: bool = False  # we killed the workers to reclaim it
    serial: bool = False  # must run through the probe queue


@dataclass(frozen=True)
class RunStats:
    """Accounting of one scheduler pass over a campaign's job list."""

    jobs_total: int
    jobs_skipped: int
    jobs_run: int
    elapsed_s: float
    jobs_quarantined: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0

    @property
    def resumed(self) -> bool:
        """True when at least one job was replayed from the store."""
        return self.jobs_skipped > 0

    @property
    def degraded(self) -> bool:
        """True when at least one job was quarantined (partial run)."""
        return self.jobs_quarantined > 0


class Scheduler:
    """Expand-once, run-anywhere job scheduler over one shared pool.

    ``pool`` optionally injects an externally-owned
    :class:`concurrent.futures.Executor` (the serving layer shares one
    process pool between single-request jobs and whole campaigns); the
    scheduler then fans out on it without ever shutting it down — and
    without killing its workers or rebuilding it, so ``job_timeout_s``
    and pool self-healing only apply to owned pools (an injected
    resilient pool heals itself; see :mod:`repro.serve.pool`).  When
    ``pool`` is ``None``, a private ``ProcessPoolExecutor`` is created
    per run for ``workers > 1`` as before.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        progress: Progress | None = None,
        pool: Executor | None = None,
        faults: FaultPolicy | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.progress = progress
        self.pool = pool
        self.faults = faults if faults is not None else FaultPolicy()

    def run(
        self, jobs: Sequence, store: MemoryStore
    ) -> tuple[dict[str, Any], RunStats]:
        """Execute every job not already stored; return results + stats.

        The returned mapping covers each distinct job id exactly once,
        whether its result was computed now or replayed from the store.
        Quarantined jobs appear as ``repro-error/1`` documents — stored
        error documents from previous runs do **not** count as done and
        are re-attempted.
        """
        start = time.perf_counter()
        stored = {
            job_id: result
            for job_id, result in store.load().items()
            if not is_error_result(result)
        }
        needed: dict[str, Any] = {}  # job_id -> Job, insertion-ordered
        for job in jobs:
            needed.setdefault(job.job_id, job)
        todo = {
            job_id: job
            for job_id, job in needed.items()
            if job_id not in stored
        }
        skipped = len(needed) - len(todo)
        results = {
            job_id: stored[job_id] for job_id in needed if job_id in stored
        }
        done = 0
        counters = {
            "quarantined": 0, "retries": 0, "timeouts": 0, "rebuilds": 0
        }

        def emit(label: str) -> None:
            if self.progress is None:
                return
            elapsed = time.perf_counter() - start
            eta = None
            if 0 < done and todo:
                eta = elapsed / done * (len(todo) - done)
            self.progress(
                ProgressEvent(
                    done=done,
                    total=len(needed),
                    skipped=skipped,
                    label=label,
                    elapsed_s=elapsed,
                    eta_s=eta,
                )
            )

        if skipped:
            emit(f"resumed: {skipped} stored jobs skipped")

        def absorb(job_id: str, result: Any) -> None:
            nonlocal done
            done += 1
            results[job_id] = store.put(job_id, result)

        def quarantine(job_id: str, job, error: str, reason: str,
                       attempts: int) -> None:
            counters["quarantined"] += 1
            results[job_id] = store.put(
                job_id, error_result(job.kind, error, attempts, reason)
            )
            emit(f"quarantined ({reason}): {job.label or job_id[:12]}")

        # An injected pool is used even for a single job (the serving
        # layer must keep heavy work out of its own process); an owned
        # pool is only worth spawning when there is real fan-out.
        if todo and (
            self.pool is not None or (self.workers > 1 and len(todo) > 1)
        ):
            self._run_pooled(todo, absorb, emit, quarantine, counters)
        elif todo:
            self._run_serial(todo, absorb, emit, quarantine, counters)

        stats = RunStats(
            jobs_total=len(needed),
            jobs_skipped=skipped,
            jobs_run=done,
            elapsed_s=time.perf_counter() - start,
            jobs_quarantined=counters["quarantined"],
            retries=counters["retries"],
            timeouts=counters["timeouts"],
            pool_rebuilds=counters["rebuilds"],
        )
        return results, stats

    def _run_serial(self, todo, absorb, emit, quarantine, counters) -> None:
        """In-process execution with per-job retry and quarantine.

        Serial runs batch maximally: every same-kind block goes through
        ``execute_block`` so the columnar kernel sees the largest
        scenario blocks the cap allows; a failing block falls back to
        per-job execution to isolate and retry the culprit alone.
        """
        policy = self.faults

        def run_one(job_id: str, job) -> None:
            attempts = 0
            while True:
                try:
                    result = registry.execute_job(job.kind, job.params)
                except Exception as exc:  # noqa: BLE001 - quarantine boundary
                    attempts += 1
                    if attempts > policy.retries:
                        quarantine(job_id, job, repr(exc), "error", attempts)
                        return
                    counters["retries"] += 1
                    time.sleep(policy.backoff(attempts))
                    continue
                absorb(job_id, result)
                emit(job.label)
                return

        for kind, items in _plan_blocks(todo, workers=0):
            if len(items) == 1:
                run_one(*items[0])
                continue
            try:
                block_results = registry.execute_block(
                    kind, [job.params for _, job in items]
                )
            except Exception:  # noqa: BLE001 - isolate the culprit per job
                for job_id, job in items:
                    run_one(job_id, job)
                continue
            for (job_id, job), result in zip(items, block_results):
                absorb(job_id, result)
                emit(job.label)

    def _run_pooled(self, todo, absorb, emit, quarantine, counters) -> None:
        """The fault-tolerant supervisor loop over a process pool.

        Keeps a bounded submission window in flight; failed blocks
        split/retry/quarantine per :class:`FaultPolicy`; owned pools
        self-heal on ``BrokenProcessPool`` and enforce per-block
        timeouts by killing the workers (see module docstring for the
        probe-queue convict/exonerate protocol).
        """
        policy = self.faults
        owns_pool = self.pool is None
        owned: ProcessPoolExecutor | None = None
        pool: Executor
        if owns_pool:
            owned = pool = ProcessPoolExecutor(max_workers=self.workers)
        else:
            pool = self.pool
        # Timeouts require killing workers; never on a shared pool.
        enforce_timeouts = owns_pool and policy.job_timeout_s is not None
        rebuild_cap = policy.rebuild_cap(len(todo))

        ready: deque[_Block] = deque(
            _Block(kind, items)
            for kind, items in _plan_blocks(todo, self.workers)
        )
        probes: deque[_Block] = deque()
        retry_heap: list[tuple[float, int, _Block]] = []
        seq = itertools.count()
        inflight: dict[Any, _Block] = {}
        window = max(2, self.workers * 2)

        def submit(block: _Block) -> None:
            if enforce_timeouts:
                block.deadline = time.monotonic() + policy.job_timeout_s
            future = pool.submit(
                _pool_execute_block,
                (block.kind, backend_module.get_backend().name,
                 [(jid, job.params) for jid, job in block.items]),
            )
            inflight[future] = block

        def schedule_retry(block: _Block, *, serial: bool) -> None:
            counters["retries"] += 1
            block.serial = serial
            release = time.monotonic() + policy.backoff(block.attempts)
            heapq.heappush(retry_heap, (release, next(seq), block))

        def split(block: _Block, *, serial: bool) -> None:
            for item in block.items:
                child = _Block(block.kind, [item], serial=serial)
                (probes if serial else ready).append(child)

        def fail_error(block: _Block, exc: BaseException) -> None:
            """An executor raised: split multi blocks, retry singletons."""
            if len(block.items) > 1:
                split(block, serial=False)
                return
            job_id, job = block.items[0]
            block.attempts += 1
            if block.attempts > policy.retries:
                quarantine(job_id, job, repr(exc), "error", block.attempts)
            else:
                schedule_retry(block, serial=False)

        def fail_crash(block: _Block) -> None:
            """A solo in-flight block broke the pool: proven culprit."""
            if len(block.items) > 1:
                split(block, serial=True)
                return
            job_id, job = block.items[0]
            block.attempts += 1
            if block.attempts > policy.retries:
                quarantine(
                    job_id, job,
                    "worker process died executing this job "
                    "(crash or out-of-memory kill)",
                    "crash", block.attempts,
                )
            else:
                schedule_retry(block, serial=True)

        def fail_timeout(block: _Block) -> None:
            """The block outlived ``job_timeout_s`` and was killed."""
            counters["timeouts"] += 1
            block.timed_out = False
            if len(block.items) > 1:
                split(block, serial=False)
                return
            job_id, job = block.items[0]
            block.attempts += 1
            if block.attempts > policy.retries:
                quarantine(
                    job_id, job,
                    f"timed out after {policy.job_timeout_s}s "
                    f"({block.attempts} attempts)",
                    "timeout", block.attempts,
                )
            else:
                schedule_retry(block, serial=False)

        def kill_workers() -> None:
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                process.kill()

        def handle_break(broken: list[_Block]) -> None:
            """Rebuild the owned pool and reroute every dead block."""
            nonlocal pool, owned
            counters["rebuilds"] += 1
            if counters["rebuilds"] > rebuild_cap:
                raise RuntimeError(
                    f"worker pool broke {counters['rebuilds']} times; "
                    "giving up (raise FaultPolicy.max_pool_rebuilds to "
                    "keep fighting)"
                )
            owned.shutdown(wait=True)
            owned = pool = ProcessPoolExecutor(max_workers=self.workers)
            timed = [b for b in broken if b.timed_out]
            fresh = [b for b in broken if not b.timed_out]
            for block in timed:
                fail_timeout(block)
            if timed:
                # Self-inflicted break: the bystanders are innocent,
                # straight back to the parallel queue.
                ready.extend(fresh)
            elif len(fresh) == 1:
                fail_crash(fresh[0])
            else:
                # Ambiguous culprit: drain the suspects serially; the
                # next break convicts exactly the block it killed.
                for block in fresh:
                    block.serial = True
                    probes.append(block)

        try:
            while ready or probes or retry_heap or inflight:
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    _, _, block = heapq.heappop(retry_heap)
                    (probes if block.serial else ready).append(block)
                if probes:
                    # Probe mode: exactly one suspect in flight at a
                    # time, and only once the parallel wave drained.
                    if not inflight:
                        submit(probes.popleft())
                else:
                    while ready and len(inflight) < window:
                        submit(ready.popleft())
                if not inflight:
                    if retry_heap:
                        time.sleep(
                            max(0.0, retry_heap[0][0] - time.monotonic())
                        )
                    continue
                timeout = None
                waits = []
                if enforce_timeouts:
                    deadlines = [
                        b.deadline for b in inflight.values()
                        if b.deadline is not None
                    ]
                    if deadlines:
                        waits.append(min(deadlines) - now)
                if retry_heap:
                    waits.append(retry_heap[0][0] - now)
                if waits:
                    timeout = max(0.0, min(waits))
                completed, _ = wait(
                    list(inflight), timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not completed:
                    if enforce_timeouts:
                        now = time.monotonic()
                        expired = [
                            b for b in inflight.values()
                            if b.deadline is not None and b.deadline <= now
                        ]
                        if expired:
                            for block in expired:
                                block.timed_out = True
                            # The only way to reclaim a hung worker is
                            # to kill it; the pool break that follows
                            # is recognised as self-inflicted.
                            kill_workers()
                    continue
                broken_exc: BaseException | None = None
                broken_blocks: list[_Block] = []
                for future in completed:
                    block = inflight.pop(future)
                    try:
                        block_results = future.result()
                    except BrokenExecutor as exc:
                        broken_exc = exc
                        broken_blocks.append(block)
                        continue
                    except Exception as exc:  # noqa: BLE001 - fault boundary
                        fail_error(block, exc)
                        continue
                    labels = {jid: job.label for jid, job in block.items}
                    for job_id, result in block_results:
                        absorb(job_id, result)
                        emit(labels[job_id])
                if broken_blocks:
                    if not owns_pool:
                        # Shared pools are healed by their owner (the
                        # serving tier); surface the break to it.
                        raise broken_exc
                    # Every other in-flight future died with the pool.
                    broken_blocks.extend(inflight.values())
                    inflight.clear()
                    handle_break(broken_blocks)
        finally:
            if owned is not None:
                owned.shutdown()
