"""Campaign orchestration: spec -> plan -> schedule -> aggregate.

:func:`run_campaign` is the one entry point every experiment and the
CLI go through: resolve the spec's kind, expand it into the
deterministic job list, run whatever the result store does not already
hold, and fold the per-job results into the kind's domain object
(a ``SweepResult``, ``DidacticTables``, ``ValidationResult``...).

Because expansion and aggregation are pure functions of the spec and
the job results are content-addressed, re-running a killed campaign
with the same spec and run directory picks up exactly where it stopped
and reproduces the final tables byte-identically.
"""

from __future__ import annotations

from concurrent.futures import Executor
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.campaigns import registry
from repro.campaigns.progress import Progress
from repro.campaigns.scheduler import RunStats, Scheduler
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import MemoryStore, open_store


@dataclass(frozen=True)
class CampaignRun:
    """Everything one campaign run produced."""

    spec: CampaignSpec
    result: Any
    stats: RunStats

    def render(self) -> str:
        """The campaign's full text report (delegates to its kind)."""
        return registry.get_kind(self.spec.kind).render(self.spec, self.result)


def expand_jobs(spec: CampaignSpec) -> list:
    """The spec's deterministic job list (dry runs, tests, tooling)."""
    return registry.get_kind(spec.kind).plan(spec).jobs


def run_campaign(
    spec: CampaignSpec,
    *,
    store: MemoryStore | str | Path | None = None,
    workers: int = 1,
    progress: Progress | None = None,
    pool: "Executor | None" = None,
) -> CampaignRun:
    """Run (or resume) one campaign end to end.

    ``store`` may be a store instance, a run-directory path (making the
    campaign resumable across processes), or ``None`` for an ephemeral
    in-memory run.  ``workers`` sizes the shared process pool; results
    are identical for every worker count.  ``pool`` optionally hands the
    scheduler an externally-owned executor instead (see
    :class:`~repro.campaigns.scheduler.Scheduler`).
    """
    kind = registry.get_kind(spec.kind)
    plan = kind.plan(spec)
    backing = open_store(store)
    backing.prepare(spec)
    scheduler = Scheduler(workers=workers, progress=progress, pool=pool)
    results, stats = scheduler.run(plan.jobs, backing)
    result = kind.aggregate(spec, plan, results)
    return CampaignRun(spec=spec, result=result, stats=stats)
