"""Campaign orchestration: spec -> plan -> schedule -> aggregate.

:func:`run_campaign` is the one entry point every experiment and the
CLI go through: resolve the spec's kind, expand it into the
deterministic job list, run whatever the result store does not already
hold, and fold the per-job results into the kind's domain object
(a ``SweepResult``, ``DidacticTables``, ``ValidationResult``...).

Because expansion and aggregation are pure functions of the spec and
the job results are content-addressed, re-running a killed campaign
with the same spec and run directory picks up exactly where it stopped
and reproduces the final tables byte-identically.

**Degraded campaigns**: when the scheduler quarantines poison jobs
(see DESIGN.md "Fault tolerance"), their slots hold ``repro-error/1``
documents instead of results.  Aggregation then runs over the clean
results only; if the kind's aggregate cannot cope with the holes, the
campaign completes with ``result=None`` and the quarantine list tells
the caller exactly which jobs are missing and why.  Only a run where
*nothing* succeeded raises :class:`CampaignError` — partial progress
is never thrown away.
"""

from __future__ import annotations

from concurrent.futures import Executor
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.campaigns import registry
from repro.campaigns.progress import Progress
from repro.campaigns.scheduler import FaultPolicy, RunStats, Scheduler
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import MemoryStore, is_error_result, open_store


class CampaignError(RuntimeError):
    """A campaign where every attempted job was quarantined."""


@dataclass(frozen=True)
class QuarantinedJob:
    """One job the scheduler gave up on, with its stored error document."""

    job_id: str
    label: str
    error: dict

    def describe(self) -> str:
        """One human-readable line: label, reason, attempts, error."""
        return (
            f"{self.label or self.job_id[:12]}: "
            f"{self.error.get('reason', 'error')} after "
            f"{self.error.get('attempts', '?')} attempts — "
            f"{self.error.get('error', '')}"
        )


@dataclass(frozen=True)
class CampaignRun:
    """Everything one campaign run produced."""

    spec: CampaignSpec
    result: Any
    stats: RunStats
    quarantine: tuple[QuarantinedJob, ...] = ()

    @property
    def partial(self) -> bool:
        """True when quarantined jobs left holes in the campaign."""
        return bool(self.quarantine)

    def render(self) -> str:
        """The campaign's full text report (delegates to its kind).

        Partial campaigns whose aggregate could not run render a
        degradation report instead of the kind's table.
        """
        if self.result is None and self.partial:
            lines = [
                f"campaign {self.spec.name}: PARTIAL — "
                f"{len(self.quarantine)} of {self.stats.jobs_total} jobs "
                "quarantined, aggregate unavailable"
            ]
            lines += [f"  {item.describe()}" for item in self.quarantine]
            return "\n".join(lines)
        report = registry.get_kind(self.spec.kind).render(
            self.spec, self.result
        )
        if self.partial:
            lines = [
                report,
                f"WARNING: partial campaign — {len(self.quarantine)} "
                "quarantined jobs excluded:",
            ]
            lines += [f"  {item.describe()}" for item in self.quarantine]
            return "\n".join(lines)
        return report


def expand_jobs(spec: CampaignSpec) -> list:
    """The spec's deterministic job list (dry runs, tests, tooling)."""
    return registry.get_kind(spec.kind).plan(spec).jobs


def run_campaign(
    spec: CampaignSpec,
    *,
    store: MemoryStore | str | Path | None = None,
    workers: int = 1,
    progress: Progress | None = None,
    pool: "Executor | None" = None,
    faults: FaultPolicy | None = None,
) -> CampaignRun:
    """Run (or resume) one campaign end to end.

    ``store`` may be a store instance, a run-directory path (making the
    campaign resumable across processes), or ``None`` for an ephemeral
    in-memory run.  ``workers`` sizes the shared process pool; results
    are identical for every worker count.  ``pool`` optionally hands the
    scheduler an externally-owned executor instead (see
    :class:`~repro.campaigns.scheduler.Scheduler`); ``faults`` tunes
    retry/timeout/quarantine behaviour (default
    :class:`~repro.campaigns.scheduler.FaultPolicy`).
    """
    kind = registry.get_kind(spec.kind)
    plan = kind.plan(spec)
    backing = open_store(store)
    backing.prepare(spec)
    scheduler = Scheduler(
        workers=workers, progress=progress, pool=pool, faults=faults
    )
    results, stats = scheduler.run(plan.jobs, backing)

    quarantine: list[QuarantinedJob] = []
    if stats.jobs_quarantined:
        labels = {job.job_id: job.label for job in plan.jobs}
        quarantine = [
            QuarantinedJob(job_id=job_id, label=labels.get(job_id, ""),
                           error=result)
            for job_id, result in results.items()
            if is_error_result(result)
        ]
    if quarantine and stats.jobs_run == 0 and stats.jobs_skipped == 0:
        raise CampaignError(
            f"campaign {spec.name!r}: all {len(quarantine)} attempted jobs "
            "were quarantined — "
            + "; ".join(item.describe() for item in quarantine)
        )

    if quarantine:
        clean = {
            job_id: result
            for job_id, result in results.items()
            if not is_error_result(result)
        }
        try:
            result = kind.aggregate(spec, plan, clean)
        except Exception:  # noqa: BLE001 - degrade instead of dying
            result = None
    else:
        result = kind.aggregate(spec, plan, results)
    return CampaignRun(
        spec=spec, result=result, stats=stats, quarantine=tuple(quarantine)
    )
