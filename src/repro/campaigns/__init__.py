"""The campaign engine: declarative specs, shared scheduler, resumable store.

Every paper artefact (Tables I-II, Figures 4-5, the validation sweep)
is a Monte-Carlo campaign; this package is the one orchestration layer
they all run on:

* :mod:`repro.campaigns.spec` — declarative :class:`CampaignSpec` (grid
  of topology × flow count × buffer depth × seed × analysis points),
  expressible from Python and from JSON via
  ``python -m repro campaign spec.json``, plus content-addressed jobs;
* :mod:`repro.campaigns.scheduler` — deterministic job expansion fanned
  out over one shared process pool with worker-local platform reuse;
* :mod:`repro.campaigns.store` — a JSONL :class:`ResultStore` keyed by
  stable job hashes, making every campaign resumable;
* :mod:`repro.campaigns.export` — shared ``text`` / ``csv`` / ``json``
  exporters replacing the experiments' duplicated output plumbing;
* :mod:`repro.campaigns.progress` — the one progress protocol
  (jobs done / total, ETA) every campaign reports through.
"""

from repro.campaigns.engine import (
    CampaignError,
    CampaignRun,
    QuarantinedJob,
    expand_jobs,
    run_campaign,
)
from repro.campaigns.export import CsvExporter, JsonExporter, TextExporter
from repro.campaigns.progress import Progress, ProgressEvent, stderr_progress
from repro.campaigns.registry import (
    CampaignKind,
    Plan,
    job_executor,
    kind_names,
    register_kind,
)
from repro.campaigns.scheduler import (
    FaultPolicy,
    RunStats,
    Scheduler,
    worker_platform,
)
from repro.campaigns.spec import (
    CampaignSpec,
    Job,
    canonical_json,
    job_hash,
    load_spec,
    save_spec,
)
from repro.campaigns.store import MemoryStore, ResultStore, open_store

__all__ = [
    "CampaignError",
    "CampaignKind",
    "CampaignRun",
    "CampaignSpec",
    "CsvExporter",
    "FaultPolicy",
    "Job",
    "JsonExporter",
    "MemoryStore",
    "Plan",
    "Progress",
    "ProgressEvent",
    "QuarantinedJob",
    "ResultStore",
    "RunStats",
    "Scheduler",
    "TextExporter",
    "canonical_json",
    "expand_jobs",
    "job_executor",
    "job_hash",
    "kind_names",
    "load_spec",
    "open_store",
    "register_kind",
    "run_campaign",
    "save_spec",
    "stderr_progress",
    "worker_platform",
]
