"""Pluggable exporters: one place campaign results leave the engine.

The pre-engine experiments each hand-rolled their own printing and CSV
writing; the exporter layer collapses that plumbing into three small
classes sharing one protocol — ``export(run)`` on a finished
:class:`~repro.campaigns.engine.CampaignRun`:

* :class:`TextExporter` — the campaign's full text report (tables +
  ASCII charts), byte-identical to the historical runner output;
* :class:`CsvExporter` — ``<name>.csv`` via the kind's ``to_csv`` hook;
* :class:`JsonExporter` — ``<name>.json`` carrying the spec, run stats
  and the kind's structured result payload.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import IO

from repro.campaigns import registry
from repro.campaigns.engine import CampaignRun
from repro.util.csvout import write_csv

RESULT_FORMAT = "repro-campaign-result/1"


class TextExporter:
    """Print the rendered report (rows + ascii_chart) to a stream."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream

    def export(self, run: CampaignRun) -> None:
        """Write the kind's rendered text for this run."""
        print(run.render(), file=self.stream or sys.stdout)


class CsvExporter:
    """Write ``<csv_dir>/<spec.name>.csv`` when the kind exports CSV."""

    def __init__(self, csv_dir: str | Path) -> None:
        self.csv_dir = Path(csv_dir)

    def export(self, run: CampaignRun) -> Path | None:
        """Write the CSV file; returns its path (None when unsupported)."""
        kind = registry.get_kind(run.spec.kind)
        if kind.to_csv is None or run.result is None:
            return None
        return write_csv(
            self.csv_dir / f"{run.spec.name}.csv",
            kind.to_csv(run.spec, run.result),
        )


class JsonExporter:
    """Write ``<json_dir>/<spec.name>.json`` with spec + stats + result."""

    def __init__(self, json_dir: str | Path) -> None:
        self.json_dir = Path(json_dir)

    def export(self, run: CampaignRun) -> Path:
        """Write the JSON document; returns its path."""
        kind = registry.get_kind(run.spec.kind)
        payload = {
            "format": RESULT_FORMAT,
            "spec": run.spec.to_dict(),
            "stats": {
                "jobs_total": run.stats.jobs_total,
                "jobs_skipped": run.stats.jobs_skipped,
                "jobs_run": run.stats.jobs_run,
                "elapsed_s": round(run.stats.elapsed_s, 3),
                "jobs_quarantined": run.stats.jobs_quarantined,
                "retries": run.stats.retries,
                "timeouts": run.stats.timeouts,
                "pool_rebuilds": run.stats.pool_rebuilds,
            },
            "result": (
                kind.to_jsonable(run.spec, run.result)
                if kind.to_jsonable is not None and run.result is not None
                else None
            ),
        }
        if run.partial:
            payload["quarantine"] = [
                {"job": item.job_id, "label": item.label, **item.error}
                for item in run.quarantine
            ]
        self.json_dir.mkdir(parents=True, exist_ok=True)
        target = self.json_dir / f"{run.spec.name}.json"
        target.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target
