"""Content-addressed result stores: what makes campaigns resumable.

A :class:`ResultStore` persists one JSON line per completed job under a
run directory — ``{"job": <hash>, "result": {...}}`` appended to
``results.jsonl`` as soon as the job finishes.  Because lines are
keyed by the job's content address (:func:`repro.campaigns.spec.job_hash`)
and appended atomically-enough (one ``write`` of one line), a campaign
killed mid-run can simply be re-run: the scheduler skips every job
whose hash is already present and recomputes only the rest, and the
final aggregation is byte-identical to an uninterrupted run because
results are JSON-normalised the moment they are produced — a fresh
result and a replayed one are the same object either way.

:class:`MemoryStore` is the ephemeral variant used when no run
directory is given (one-shot campaigns, tests).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.campaigns.spec import jsonable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.campaigns.spec import CampaignSpec

RESULTS_NAME = "results.jsonl"
SPEC_NAME = "spec.json"

#: Format tag for quarantined-job records.  A job that keeps failing is
#: recorded in the store as a *structured error document* instead of a
#: result, so the failure is durable (a resumed run knows the job was
#: attempted) without being mistaken for a completed job: the scheduler
#: re-attempts error-documented jobs on the next run.
ERROR_FORMAT = "repro-error/1"


def error_result(
    kind: str, error: str, attempts: int, reason: str
) -> dict[str, Any]:
    """The quarantine document stored for a permanently-failing job.

    ``reason`` is the scheduler's failure class (``"error"``,
    ``"crash"`` or ``"timeout"``); ``error`` is the repr of the last
    exception (or a synthesized description for crashes/timeouts).
    """
    return {
        "format": ERROR_FORMAT,
        "kind": kind,
        "error": error,
        "attempts": attempts,
        "reason": reason,
    }


def is_error_result(result: Any) -> bool:
    """True when a stored result is a quarantine document."""
    return isinstance(result, dict) and result.get("format") == ERROR_FORMAT


def result_line(job_id: str, normalised: Any) -> str:
    """One store line: the canonical ``{"job", "result"}`` record.

    Shared by :class:`ResultStore` and the serving layer's
    offset-indexed query store so their files stay interchangeable.
    """
    return json.dumps(
        {"job": job_id, "result": normalised},
        sort_keys=True,
        separators=(",", ":"),
    )


def iter_result_records(path: Path) -> Iterator[tuple[int, dict]]:
    """Yield ``(byte_offset, record)`` per intact line of a store file.

    Tolerates a torn final line (killed run/server): everything before
    it is intact, the torn job simply reruns.
    """
    if not path.exists():
        return
    with path.open("rb") as handle:
        offset = 0
        for raw in handle:
            line = raw.strip()
            if line:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    record = None  # torn line
                if isinstance(record, dict) and "job" in record:
                    yield offset, record
            offset += len(raw)


def tail_needs_newline(path: Path) -> bool:
    """True when the file ends mid-line (torn write).

    The next append must then start on a fresh line, or the new record
    would merge with the torn bytes and be lost on the next reload.
    """
    if not path.exists():
        return False
    with path.open("rb") as handle:
        size = handle.seek(0, 2)
        if not size:
            return False
        handle.seek(size - 1)
        return handle.read(1) != b"\n"


class MemoryStore:
    """Ephemeral in-process store with the :class:`ResultStore` interface."""

    #: Whether results survive the process (diagnostics, ``/stats``).
    persistent = False

    def __init__(self) -> None:
        self._results: dict[str, Any] = {}

    def prepare(self, spec: "CampaignSpec") -> None:
        """No provenance to write for an in-memory run."""

    def load(self) -> dict[str, Any]:
        """All stored results, keyed by job hash."""
        return dict(self._results)

    def put(self, job_id: str, result: Any) -> Any:
        """Record one finished job; returns the normalised result."""
        normalised = jsonable(result)
        self._results[job_id] = normalised
        return normalised

    def get(self, job_id: str, default: Any = None) -> Any:
        """One stored result by content address (no copy, O(1)).

        ``load()`` snapshots the whole store for the scheduler's bulk
        resume check; point lookups (the serving layer's cache misses)
        go through here instead.
        """
        return self._results.get(job_id, default)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._results

    def __len__(self) -> int:
        return len(self._results)


class ResultStore(MemoryStore):
    """JSONL-backed store under a run directory; append-only, resumable."""

    persistent = True

    def __init__(self, run_dir: str | Path) -> None:
        super().__init__()
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / RESULTS_NAME
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self._results = {
            record["job"]: record.get("result")
            for _, record in iter_result_records(self.path)
        }
        self._needs_newline = tail_needs_newline(self.path)

    def prepare(self, spec: "CampaignSpec") -> None:
        """Pin the run directory to one campaign.

        Writes ``spec.json`` on first use and refuses to resume when the
        directory already belongs to a *different* spec — mixing two
        campaigns' results in one store would silently corrupt both.
        """
        spec_path = self.run_dir / SPEC_NAME
        canonical = spec.canonical()
        if spec_path.exists():
            existing = spec_path.read_text(encoding="utf-8").strip()
            if existing != canonical:
                raise ValueError(
                    f"{self.run_dir} already holds results for a different "
                    "campaign spec; use a fresh --run-dir"
                )
            return
        spec_path.write_text(canonical + "\n", encoding="utf-8")

    def put(self, job_id: str, result: Any) -> Any:
        """Append one result line and mirror it in memory."""
        normalised = jsonable(result)
        line = result_line(job_id, normalised)
        with self.path.open("a", encoding="utf-8") as handle:
            if self._needs_newline:
                handle.write("\n")
                self._needs_newline = False
            handle.write(line + "\n")
            handle.flush()
        self._results[job_id] = normalised
        return normalised


def open_store(target: "MemoryStore | str | Path | None") -> MemoryStore:
    """Coerce ``None`` / path-likes / stores into a store instance."""
    if target is None:
        return MemoryStore()
    if isinstance(target, MemoryStore):
        return target
    return ResultStore(target)
