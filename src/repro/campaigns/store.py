"""Content-addressed result stores: what makes campaigns resumable.

A :class:`ResultStore` persists one JSON line per completed job under a
run directory — ``{"job": <hash>, "result": {...}}`` appended to
``results.jsonl`` as soon as the job finishes.  Because lines are
keyed by the job's content address (:func:`repro.campaigns.spec.job_hash`)
and appended atomically-enough (one ``write`` of one line), a campaign
killed mid-run can simply be re-run: the scheduler skips every job
whose hash is already present and recomputes only the rest, and the
final aggregation is byte-identical to an uninterrupted run because
results are JSON-normalised the moment they are produced — a fresh
result and a replayed one are the same object either way.

:class:`MemoryStore` is the ephemeral variant used when no run
directory is given (one-shot campaigns, tests).
"""

from __future__ import annotations

import base64
import json
import os
import time
import warnings
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.campaigns.spec import jsonable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.campaigns.spec import CampaignSpec

RESULTS_NAME = "results.jsonl"
SPEC_NAME = "spec.json"
#: Sidecar next to a store file collecting its quarantined records.
CORRUPT_SUFFIX = ".corrupt"

#: Valid fsync policies for the JSONL stores (see :class:`FsyncPolicy`).
FSYNC_MODES = ("none", "batch", "always")


class StoreWriteWarning(UserWarning):
    """A store append failed (``ENOSPC``/IO error); writer degraded."""


class StoreCorruptionWarning(UserWarning):
    """A store file held corrupt records; they were quarantined."""


class FsyncPolicy:
    """When appended store lines are forced to stable storage.

    * ``none``   — rely on the OS page cache (a *machine* crash may lose
      the last writes; a killed process loses nothing).  The historical
      behaviour, and the fastest.
    * ``batch``  — ``fsync`` at most once per ``interval_s`` of writes:
      a machine crash loses at most the last interval's appends.  The
      deployment default for the replicated tier, where the replica
      already covers single-node loss.
    * ``always`` — ``fsync`` after every append: a ``put`` acknowledged
      is a ``put`` on the platter, at the cost of one disk flush per
      record.
    """

    def __init__(self, mode: str = "none", interval_s: float = 0.05) -> None:
        if mode not in FSYNC_MODES:
            raise ValueError(
                f"fsync mode must be one of {', '.join(FSYNC_MODES)}, "
                f"got {mode!r}"
            )
        if interval_s < 0:
            raise ValueError(f"fsync interval must be >= 0, got {interval_s}")
        self.mode = mode
        self.interval_s = interval_s
        self._last_sync = 0.0

    def sync(self, fileno: int) -> None:
        """Apply the policy to one freshly-flushed file descriptor."""
        if self.mode == "none":
            return
        if self.mode == "batch":
            now = time.monotonic()
            if now - self._last_sync < self.interval_s:
                return
            self._last_sync = now
        os.fsync(fileno)

    @classmethod
    def coerce(
        cls, policy: "FsyncPolicy | str | None", interval_s: float = 0.05
    ) -> "FsyncPolicy":
        """``None`` / mode strings / instances -> an instance."""
        if policy is None:
            return cls("none", interval_s)
        if isinstance(policy, FsyncPolicy):
            return policy
        return cls(policy, interval_s)

#: Format tag for quarantined-job records.  A job that keeps failing is
#: recorded in the store as a *structured error document* instead of a
#: result, so the failure is durable (a resumed run knows the job was
#: attempted) without being mistaken for a completed job: the scheduler
#: re-attempts error-documented jobs on the next run.
ERROR_FORMAT = "repro-error/1"


def error_result(
    kind: str, error: str, attempts: int, reason: str
) -> dict[str, Any]:
    """The quarantine document stored for a permanently-failing job.

    ``reason`` is the scheduler's failure class (``"error"``,
    ``"crash"`` or ``"timeout"``); ``error`` is the repr of the last
    exception (or a synthesized description for crashes/timeouts).
    """
    return {
        "format": ERROR_FORMAT,
        "kind": kind,
        "error": error,
        "attempts": attempts,
        "reason": reason,
    }


def is_error_result(result: Any) -> bool:
    """True when a stored result is a quarantine document."""
    return isinstance(result, dict) and result.get("format") == ERROR_FORMAT


def record_crc(job_id: str, normalised: Any) -> int:
    """CRC32 over the canonical ``{"job", "result"}`` payload bytes.

    Computed on the record *without* its ``crc`` field, so the checksum
    covers exactly the bytes that matter and verification is
    re-serialise-and-compare, independent of field ordering on disk.
    """
    payload = json.dumps(
        {"job": job_id, "result": normalised},
        sort_keys=True,
        separators=(",", ":"),
    )
    return zlib.crc32(payload.encode("utf-8"))


def result_line(job_id: str, normalised: Any) -> str:
    """One store line: the canonical ``{"crc", "job", "result"}`` record.

    Shared by :class:`ResultStore` and the serving layer's
    offset-indexed query store so their files stay interchangeable.
    The ``crc`` field lets readers detect bit-rot inside a record, not
    just a torn tail; legacy lines without it are accepted unverified.
    """
    return json.dumps(
        {
            "crc": record_crc(job_id, normalised),
            "job": job_id,
            "result": normalised,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def verify_record(record: dict) -> bool:
    """True when a parsed record's checksum matches (or it has none)."""
    stored = record.get("crc")
    if stored is None:
        return True  # pre-checksum line: accept unverified
    return stored == record_crc(record.get("job"), record.get("result"))


def iter_result_records(
    path: Path,
    on_corrupt: Callable[[int, bytes, str], None] | None = None,
) -> Iterator[tuple[int, dict]]:
    """Yield ``(byte_offset, record)`` per intact line of a store file.

    Tolerates a torn final line (killed run/server): everything before
    it is intact, the torn job simply reruns.  A *complete* line that
    fails to parse, lacks a ``job`` field, or fails its CRC check is
    corruption rather than a torn write; it is skipped and reported via
    ``on_corrupt(offset, raw_line, reason)`` when given.
    """
    if not path.exists():
        return
    with path.open("rb") as handle:
        offset = 0
        for raw in handle:
            line = raw.strip()
            if line:
                complete = raw.endswith(b"\n")
                reason = None
                record = None
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    reason = "unparseable"
                else:
                    if not isinstance(record, dict) or "job" not in record:
                        reason = "not-a-record"
                    elif not verify_record(record):
                        reason = "crc-mismatch"
                if reason is None:
                    yield offset, record
                elif complete and on_corrupt is not None:
                    # A torn tail (no trailing newline) stays silent:
                    # it is the normal signature of a killed writer.
                    on_corrupt(offset, raw, reason)
            offset += len(raw)


def quarantine_record(path: Path, offset: int, raw: bytes, reason: str) -> bool:
    """Append one corrupt record to ``path``'s ``.corrupt`` sidecar.

    The main store file is never rewritten — the damaged record simply
    drops out of the index (its hash recomputes and re-appends).  The
    sidecar keeps the raw bytes (base64) plus offset and reason for
    forensics.  Deduped by offset so rescans do not re-quarantine;
    returns True when a new entry was written.
    """
    sidecar = path.with_name(path.name + CORRUPT_SUFFIX)
    if sidecar.exists():
        for line in sidecar.read_text(encoding="utf-8").splitlines():
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and entry.get("offset") == offset:
                return False
    entry = {
        "offset": offset,
        "reason": reason,
        "raw": base64.b64encode(raw).decode("ascii"),
    }
    with sidecar.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return True


def quarantined_count(path: Path) -> int:
    """Number of records in ``path``'s ``.corrupt`` sidecar."""
    sidecar = path.with_name(path.name + CORRUPT_SUFFIX)
    if not sidecar.exists():
        return 0
    return sum(
        1 for line in sidecar.read_text(encoding="utf-8").splitlines() if line
    )


def tail_needs_newline(path: Path) -> bool:
    """True when the file ends mid-line (torn write).

    The next append must then start on a fresh line, or the new record
    would merge with the torn bytes and be lost on the next reload.
    """
    if not path.exists():
        return False
    with path.open("rb") as handle:
        size = handle.seek(0, 2)
        if not size:
            return False
        handle.seek(size - 1)
        return handle.read(1) != b"\n"


class MemoryStore:
    """Ephemeral in-process store with the :class:`ResultStore` interface."""

    #: Whether results survive the process (diagnostics, ``/stats``).
    persistent = False

    def __init__(self) -> None:
        self._results: dict[str, Any] = {}

    def prepare(self, spec: "CampaignSpec") -> None:
        """No provenance to write for an in-memory run."""

    def load(self) -> dict[str, Any]:
        """All stored results, keyed by job hash."""
        return dict(self._results)

    def put(self, job_id: str, result: Any) -> Any:
        """Record one finished job; returns the normalised result."""
        normalised = jsonable(result)
        self._results[job_id] = normalised
        return normalised

    def get(self, job_id: str, default: Any = None) -> Any:
        """One stored result by content address (no copy, O(1)).

        ``load()`` snapshots the whole store for the scheduler's bulk
        resume check; point lookups (the serving layer's cache misses)
        go through here instead.
        """
        return self._results.get(job_id, default)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._results

    def __len__(self) -> int:
        return len(self._results)


class ResultStore(MemoryStore):
    """JSONL-backed store under a run directory; append-only, resumable."""

    persistent = True

    def __init__(
        self,
        run_dir: str | Path,
        fsync: FsyncPolicy | str | None = None,
    ) -> None:
        super().__init__()
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / RESULTS_NAME
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = FsyncPolicy.coerce(fsync)
        self.read_only = False
        self.write_errors = 0
        self.corrupt_records = 0
        self._results = {
            record["job"]: record.get("result")
            for _, record in iter_result_records(self.path, self._quarantine)
        }
        self._needs_newline = tail_needs_newline(self.path)

    def _quarantine(self, offset: int, raw: bytes, reason: str) -> None:
        self.corrupt_records += 1
        if quarantine_record(self.path, offset, raw, reason):
            warnings.warn(
                f"{self.path}: corrupt record at offset {offset} ({reason}); "
                f"quarantined to {self.path.name}{CORRUPT_SUFFIX}",
                StoreCorruptionWarning,
                stacklevel=2,
            )

    def prepare(self, spec: "CampaignSpec") -> None:
        """Pin the run directory to one campaign.

        Writes ``spec.json`` on first use and refuses to resume when the
        directory already belongs to a *different* spec — mixing two
        campaigns' results in one store would silently corrupt both.
        """
        spec_path = self.run_dir / SPEC_NAME
        canonical = spec.canonical()
        if spec_path.exists():
            existing = spec_path.read_text(encoding="utf-8").strip()
            if existing != canonical:
                raise ValueError(
                    f"{self.run_dir} already holds results for a different "
                    "campaign spec; use a fresh --run-dir"
                )
            return
        spec_path.write_text(canonical + "\n", encoding="utf-8")

    def put(self, job_id: str, result: Any) -> Any:
        """Append one result line and mirror it in memory.

        A failed append (``ENOSPC``, permission loss, dying disk) does
        not crash the campaign mid-run: the store degrades to read-only
        — results keep flowing through the in-memory mirror so the run
        finishes, they just will not survive for resume.
        """
        normalised = jsonable(result)
        if not self.read_only:
            line = result_line(job_id, normalised)
            try:
                with self.path.open("a", encoding="utf-8") as handle:
                    if self._needs_newline:
                        handle.write("\n")
                        self._needs_newline = False
                    handle.write(line + "\n")
                    handle.flush()
                    self.fsync.sync(handle.fileno())
            except OSError as exc:
                self.read_only = True
                self.write_errors += 1
                warnings.warn(
                    f"{self.path}: append failed ({exc}); store degraded to "
                    "read-only — results from here on are in-memory only",
                    StoreWriteWarning,
                    stacklevel=2,
                )
        self._results[job_id] = normalised
        return normalised


def open_store(target: "MemoryStore | str | Path | None") -> MemoryStore:
    """Coerce ``None`` / path-likes / stores into a store instance."""
    if target is None:
        return MemoryStore()
    if isinstance(target, MemoryStore):
        return target
    return ResultStore(target)
