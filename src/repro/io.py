"""Serialization: flow sets and analysis results to/from JSON.

The on-disk format is a small, versioned JSON document so that flow sets
can be shared between tools, checked into repositories, and fed to the
command line (``python -m repro analyze traffic.json``)::

    {
      "format": "repro-flowset/1",
      "platform": {"topology": {"type": "mesh", "cols": 4, "rows": 4},
                   "buf": 2, "linkl": 1, "routl": 0, "vc_count": null},
      "flows": [{"name": "ctrl", "priority": 1, "period": 2000,
                 "deadline": 2000, "jitter": 0, "length": 64,
                 "src": 11, "dst": 7}, ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.engine import AnalysisResult
from repro.flows.flow import Flow
from repro.flows.flowset import FlowSet
from repro.noc.platform import NoCPlatform
from repro.noc.topology import Mesh2D

FORMAT = "repro-flowset/1"


def flowset_to_dict(flowset: FlowSet) -> dict:
    """Serialise a flow set (platform + flows) to plain data."""
    platform = flowset.platform
    topology = platform.topology
    if not isinstance(topology, Mesh2D):
        raise TypeError(
            f"only Mesh2D topologies serialise (got {type(topology).__name__})"
        )
    return {
        "format": FORMAT,
        "platform": {
            "topology": {"type": "mesh", "cols": topology.cols,
                         "rows": topology.rows},
            "buf": platform.buf,
            "linkl": platform.linkl,
            "routl": platform.routl,
            "vc_count": platform.vc_count,
            # JSON object keys are strings; router indices round-trip
            # through str() / int() in flowset_from_dict.
            "buf_map": (
                {str(router): depth for router, depth in platform.buf_map.items()}
                if platform.buf_map
                else None
            ),
        },
        "flows": [
            {
                "name": flow.name,
                "priority": flow.priority,
                "period": flow.period,
                "deadline": flow.deadline,
                "jitter": flow.jitter,
                "length": flow.length,
                "src": flow.src,
                "dst": flow.dst,
            }
            for flow in flowset.flows
        ],
    }


def flowset_from_dict(data: dict) -> FlowSet:
    """Rebuild a flow set from :func:`flowset_to_dict` data."""
    declared = data.get("format")
    if declared != FORMAT:
        raise ValueError(
            f"unsupported format {declared!r}; expected {FORMAT!r}"
        )
    platform_data = data["platform"]
    topology_data = platform_data["topology"]
    if topology_data.get("type") != "mesh":
        raise ValueError(f"unknown topology type {topology_data.get('type')!r}")
    buf_map_data = platform_data.get("buf_map")
    platform = NoCPlatform(
        Mesh2D(topology_data["cols"], topology_data["rows"]),
        buf=platform_data["buf"],
        linkl=platform_data["linkl"],
        routl=platform_data["routl"],
        vc_count=platform_data.get("vc_count"),
        buf_map=(
            {int(router): depth for router, depth in buf_map_data.items()}
            if buf_map_data
            else None
        ),
    )
    flows = [
        Flow(
            name=f["name"],
            priority=f["priority"],
            period=f["period"],
            deadline=f.get("deadline"),
            jitter=f.get("jitter", 0),
            length=f["length"],
            src=f["src"],
            dst=f["dst"],
        )
        for f in data["flows"]
    ]
    return FlowSet(platform, flows)


def save_flowset(flowset: FlowSet, path: str | Path) -> Path:
    """Write a flow set as JSON (pretty-printed, stable key order)."""
    target = Path(path)
    target.write_text(
        json.dumps(flowset_to_dict(flowset), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def load_flowset(path: str | Path) -> FlowSet:
    """Read a flow set written by :func:`save_flowset`."""
    return flowset_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def result_to_dict(result: AnalysisResult) -> dict:
    """Serialise an analysis outcome (for logging/post-processing)."""
    return {
        "format": "repro-result/1",
        "analysis": result.analysis_name,
        "unsafe": result.unsafe,
        "complete": result.complete,
        "schedulable": result.schedulable,
        "flows": {
            name: {
                "priority": r.priority,
                "c": r.c,
                "deadline": r.deadline,
                "response_time": r.response_time,
                "converged": r.converged,
                "schedulable": r.schedulable,
                "slack": r.slack,
            }
            for name, r in result.flows.items()
        },
    }
