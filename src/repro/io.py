"""Serialization: flow sets and analysis results to/from JSON.

The on-disk format is a small, versioned JSON document so that flow sets
can be shared between tools, checked into repositories, and fed to the
command line (``python -m repro analyze traffic.json``)::

    {
      "format": "repro-flowset/2",
      "platform": {"topology": {"type": "mesh", "cols": 4, "rows": 4},
                   "buf": 2, "linkl": 1, "routl": 0, "vc_count": null,
                   "buf_map": {"3": 8}, "credit_delay": 1},
      "flows": [{"name": "ctrl", "priority": 1, "period": 2000,
                 "deadline": 2000, "jitter": 0, "length": 64,
                 "src": 11, "dst": 7}, ...]
    }

Format history: ``repro-flowset/1`` described uniform-buffer Mesh2D
platforms only; ``/2`` adds the heterogeneous ``buf_map`` (per-router
buffer-depth overrides) and the simulator's ``credit_delay`` so that
simulation scenarios round-trip too.  Writers emit ``/2``; readers
accept both versions (``/1`` documents simply have no overrides and no
credit delay).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.engine import AnalysisResult
from repro.flows.flow import Flow
from repro.flows.flowset import FlowSet
from repro.noc.platform import NoCPlatform
from repro.noc.topology import Mesh2D

FORMAT = "repro-flowset/2"

#: Document versions :func:`flowset_from_dict` accepts.
READ_FORMATS = ("repro-flowset/1", FORMAT)


def flowset_to_dict(
    flowset: FlowSet, *, credit_delay: int | None = None
) -> dict:
    """Serialise a flow set (platform + flows) to plain data.

    ``credit_delay`` optionally records the simulator's credit-return
    latency alongside the platform (``null`` when not given) — it is not
    a :class:`FlowSet` property, but simulation scenarios are incomplete
    without it; recover it with :func:`credit_delay_from_dict`.
    """
    platform = flowset.platform
    topology = platform.topology
    if not isinstance(topology, Mesh2D):
        raise TypeError(
            f"only Mesh2D topologies serialise (got {type(topology).__name__})"
        )
    _check_credit_delay(credit_delay)
    return {
        "format": FORMAT,
        "platform": {
            "topology": {"type": "mesh", "cols": topology.cols,
                         "rows": topology.rows},
            "buf": platform.buf,
            "linkl": platform.linkl,
            "routl": platform.routl,
            "vc_count": platform.vc_count,
            # JSON object keys are strings; router indices round-trip
            # through str() / int() in flowset_from_dict.
            "buf_map": (
                {str(router): depth for router, depth in platform.buf_map.items()}
                if platform.buf_map
                else None
            ),
            "credit_delay": credit_delay,
        },
        "flows": [
            {
                "name": flow.name,
                "priority": flow.priority,
                "period": flow.period,
                "deadline": flow.deadline,
                "jitter": flow.jitter,
                "length": flow.length,
                "src": flow.src,
                "dst": flow.dst,
            }
            for flow in flowset.flows
        ],
    }


def platform_from_dict(
    platform_data: dict, *, topology=None, routing=None
) -> NoCPlatform:
    """Rebuild just the platform section of a flow-set document.

    Exposed separately so servers can cache platforms (and with them the
    memoized route tables) across requests that repeat a topology — see
    :mod:`repro.serve.jobs`.  ``topology`` substitutes an existing
    :class:`Mesh2D` for the document's (caller vouches the dimensions
    match); ``routing`` substitutes a shared routing-function instance,
    whose per-topology route memo then carries across documents.
    """
    topology_data = platform_data["topology"]
    if topology_data.get("type") != "mesh":
        raise ValueError(f"unknown topology type {topology_data.get('type')!r}")
    if topology is None:
        topology = Mesh2D(topology_data["cols"], topology_data["rows"])
    buf_map_data = platform_data.get("buf_map")
    kwargs = {} if routing is None else {"routing": routing}
    return NoCPlatform(
        topology,
        buf=platform_data["buf"],
        linkl=platform_data["linkl"],
        routl=platform_data["routl"],
        vc_count=platform_data.get("vc_count"),
        buf_map=(
            {int(router): depth for router, depth in buf_map_data.items()}
            if buf_map_data
            else None
        ),
        **kwargs,
    )


def flowset_from_dict(data: dict, *, platform: NoCPlatform | None = None) -> FlowSet:
    """Rebuild a flow set from :func:`flowset_to_dict` data.

    Accepts every version in :data:`READ_FORMATS`; fields introduced by
    later versions default to their ``/1`` meaning when absent.
    ``platform`` optionally substitutes an already-built platform for
    the document's platform section — the caller vouches that it was
    built from an identical section (the serving layer's cache does).
    """
    declared = data.get("format")
    if declared not in READ_FORMATS:
        raise ValueError(
            f"unsupported format {declared!r}; "
            f"expected one of {', '.join(READ_FORMATS)}"
        )
    if platform is None:
        platform = platform_from_dict(data["platform"])
    flows = [
        Flow(
            name=f["name"],
            priority=f["priority"],
            period=f["period"],
            deadline=f.get("deadline"),
            jitter=f.get("jitter", 0),
            length=f["length"],
            src=f["src"],
            dst=f["dst"],
        )
        for f in data["flows"]
    ]
    return FlowSet(platform, flows)


def _check_credit_delay(value) -> None:
    """Writer and reader share one rule: a non-negative int or None."""
    if value is None:
        return
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ValueError(
            f"credit_delay must be a non-negative int, got {value!r}"
        )


def credit_delay_from_dict(data: dict) -> int | None:
    """The serialised simulator credit-return latency, when recorded.

    ``/1`` documents (and ``/2`` documents written without one) return
    ``None`` — callers fall back to the simulator default.
    """
    value = data.get("platform", {}).get("credit_delay")
    _check_credit_delay(value)
    return value


def save_flowset(
    flowset: FlowSet, path: str | Path, *, credit_delay: int | None = None
) -> Path:
    """Write a flow set as JSON (pretty-printed, stable key order)."""
    target = Path(path)
    target.write_text(
        json.dumps(
            flowset_to_dict(flowset, credit_delay=credit_delay),
            indent=2,
            sort_keys=True,
        ) + "\n",
        encoding="utf-8",
    )
    return target


def load_flowset(path: str | Path) -> FlowSet:
    """Read a flow set written by :func:`save_flowset` (any version)."""
    return flowset_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def load_credit_delay(path: str | Path) -> int | None:
    """Read the credit delay recorded next to a flow set, if any."""
    return credit_delay_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )


def result_to_dict(result: AnalysisResult) -> dict:
    """Serialise an analysis outcome (for logging/post-processing)."""
    return {
        "format": "repro-result/1",
        "analysis": result.analysis_name,
        "unsafe": result.unsafe,
        "complete": result.complete,
        "schedulable": result.schedulable,
        "flows": {
            name: {
                "priority": r.priority,
                "c": r.c,
                "deadline": r.deadline,
                "response_time": r.response_time,
                "converged": r.converged,
                "schedulable": r.schedulable,
                "slack": r.slack,
            }
            for name, r in result.flows.items()
        },
    }
