"""Deterministic random-number plumbing for the experiment campaigns.

Every experiment in this project is reproducible from a single integer seed.
Sub-experiments (one flow set out of a hundred, one mapping out of a
hundred) derive child seeds with :func:`derive_seed` so that changing the
number of repetitions does not reshuffle the workloads of the others.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *path: int | str) -> int:
    """Derive a stable 63-bit child seed from a root seed and a label path.

    The derivation is a SHA-256 over the textual path, so it is stable across
    Python versions and processes (unlike ``hash()``).

    >>> derive_seed(42, "fig4a", 40, 7) == derive_seed(42, "fig4a", 40, 7)
    True
    >>> derive_seed(42, "fig4a", 40, 7) != derive_seed(42, "fig4a", 40, 8)
    True
    """
    text = ":".join([str(root_seed), *[str(p) for p in path]])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def spawn_rng(root_seed: int, *path: int | str) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for a derived seed."""
    return np.random.default_rng(derive_seed(root_seed, *path))
