"""Small shared utilities (integer math, RNG plumbing, text output helpers).

These helpers are intentionally free of any NoC-specific knowledge so that
the domain packages (:mod:`repro.noc`, :mod:`repro.core`, :mod:`repro.sim`)
stay focused on the paper's concepts.
"""

from repro.util.mathx import ceil_div, fixed_point, FixedPointDiverged
from repro.util.rng import spawn_rng, derive_seed

__all__ = [
    "ceil_div",
    "fixed_point",
    "FixedPointDiverged",
    "spawn_rng",
    "derive_seed",
]
