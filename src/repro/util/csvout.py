"""CSV emission for experiment results."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping, Sequence


def series_to_csv(
    x_name: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
) -> str:
    """Render an x-axis plus named series as CSV text.

    >>> print(series_to_csv("n", [1, 2], {"a": [3, 4]}), end="")
    n,a
    1,3
    2,4
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, x-axis has "
                f"{len(x_values)}"
            )
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([x_name, *series.keys()])
    for row_index, x in enumerate(x_values):
        writer.writerow([x, *(series[name][row_index] for name in series)])
    return buffer.getvalue()


def write_csv(path: str | Path, content: str) -> Path:
    """Write CSV text to ``path``, creating parent directories."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(content, encoding="utf-8")
    return target
