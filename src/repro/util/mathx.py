"""Integer math helpers used throughout the response-time analyses.

All timing quantities in this project are integers (clock cycles), so the
fixed-point iterations of the schedulability analyses terminate exactly
(either at a true fixed point or by exceeding an explicit bound) without any
floating-point tolerance games.
"""

from __future__ import annotations

from typing import Callable


class FixedPointDiverged(Exception):
    """Raised when a response-time recurrence exceeds its iteration budget.

    This is distinct from exceeding the deadline: callers that treat a missed
    deadline as "unschedulable, stop iterating" never see this exception.
    It exists to guard against pathological recurrences that grow forever
    (e.g. utilisation > 1 on some link) when no upper cut-off was supplied.
    """

    def __init__(self, last_value: int, iterations: int):
        super().__init__(
            f"fixed point did not converge after {iterations} iterations "
            f"(last value {last_value})"
        )
        self.last_value = last_value
        self.iterations = iterations


def ceil_div(numerator: int, denominator: int) -> int:
    """Exact integer ceiling of ``numerator / denominator``.

    Both arguments must be non-negative and ``denominator`` positive; this is
    the ``⌈x/T⌉`` that appears in every interference term of the paper.

    >>> ceil_div(0, 5)
    0
    >>> ceil_div(10, 5)
    2
    >>> ceil_div(11, 5)
    3
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)


def fixed_point(
    recurrence: Callable[[int], int],
    start: int,
    *,
    give_up_above: int | None = None,
    max_iterations: int = 100_000,
) -> tuple[int, bool]:
    """Iterate ``x_{n+1} = recurrence(x_n)`` from ``start`` to a fixed point.

    The recurrence must be monotonically non-decreasing in its argument (all
    response-time recurrences in this project are: they are sums of ceilings
    of the argument).  Iteration stops when:

    * a fixed point is reached -> returns ``(value, True)``;
    * the value exceeds ``give_up_above`` -> returns ``(value, False)``,
      where ``value`` is the first iterate above the cut-off.  Callers use
      the deadline (or a multiple of it) as the cut-off, since any response
      time beyond the deadline means "unschedulable" regardless of the exact
      magnitude;
    * ``max_iterations`` is exhausted -> raises :class:`FixedPointDiverged`.
    """
    value = start
    for _ in range(max_iterations):
        nxt = recurrence(value)
        if nxt < value:
            raise ValueError(
                "recurrence decreased from "
                f"{value} to {nxt}; response-time recurrences must be "
                "monotonic"
            )
        if nxt == value:
            return value, True
        value = nxt
        if give_up_above is not None and value > give_up_above:
            return value, False
    raise FixedPointDiverged(value, max_iterations)
