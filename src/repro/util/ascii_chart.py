"""Plain-text line charts for experiment output.

The benchmark harness prints every figure it regenerates as an ASCII chart
(plus CSV on request) so results are readable in a terminal or CI log with
no plotting dependencies.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def ascii_chart(
    x_labels: Sequence,
    series: Mapping[str, Sequence[float]],
    *,
    height: int = 16,
    y_min: float = 0.0,
    y_max: float = 100.0,
    y_label: str = "%",
    title: str = "",
) -> str:
    """Render one or more series over a shared x-axis.

    Each series gets a distinct marker; collisions show the marker of the
    later series.  Values outside [y_min, y_max] are clamped.

    >>> print(ascii_chart([1, 2], {"a": [0, 100]}, height=3))  # doctest: +SKIP
    """
    if height < 2:
        raise ValueError(f"chart height must be >= 2, got {height}")
    if y_max <= y_min:
        raise ValueError(f"empty y range [{y_min}, {y_max}]")
    markers = "ox+*#@%&"
    names = list(series)
    width = len(x_labels)
    for name in names:
        if len(series[name]) != width:
            raise ValueError(
                f"series {name!r} has {len(series[name])} points, "
                f"x-axis has {width}"
            )
    grid = [[" "] * width for _ in range(height)]
    for series_index, name in enumerate(names):
        marker = markers[series_index % len(markers)]
        for col, value in enumerate(series[name]):
            clamped = min(max(value, y_min), y_max)
            rel = (clamped - y_min) / (y_max - y_min)
            row = height - 1 - round(rel * (height - 1))
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        rel = 1.0 - row_index / (height - 1)
        tick = y_min + rel * (y_max - y_min)
        lines.append(f"{tick:6.1f} |" + "".join(row))
    lines.append(" " * 7 + "+" + "-" * width)
    label_line = [" "] * width
    step = max(1, width // 8)
    for col in range(0, width, step):
        text = str(x_labels[col])
        for offset, char in enumerate(text):
            if col + offset < width:
                label_line[col + offset] = char
    lines.append(" " * 8 + "".join(label_line))
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(names)
    )
    lines.append(f"        [{y_label}]  {legend}")
    return "\n".join(lines)
