"""Priority-assignment policies.

The paper's evaluation uses rate-monotonic assignment ("despite
sub-optimality, given that no optimal assignment is known for this
problem", Section VI).  Deadline-monotonic and an Audsley-style optimal
priority assignment (OPA) search are provided as extensions; note that OPA
is only a *heuristic* here because wormhole response-time analyses are not
OPA-compatible in general (a flow's bound depends on the relative order of
higher-priority flows through the indirect-interference sets).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.flows.flow import Flow


def rate_monotonic(flows: Iterable[Flow]) -> list[Flow]:
    """Assign unique priorities by ascending period (shorter period wins).

    Ties are broken by deadline, then by name, so the assignment is
    deterministic.  Returns new :class:`Flow` objects with priorities
    1..n; the input flows' priorities are ignored.

    >>> fast = Flow("fast", 9, 100, 1, 0, 0)
    >>> slow = Flow("slow", 1, 900, 1, 0, 0)
    >>> [f.name for f in rate_monotonic([slow, fast])]
    ['fast', 'slow']
    """
    ordered = sorted(flows, key=lambda f: (f.period, f.deadline, f.name))
    return [flow.with_priority(level) for level, flow in enumerate(ordered, start=1)]


def deadline_monotonic(flows: Iterable[Flow]) -> list[Flow]:
    """Assign unique priorities by ascending relative deadline."""
    ordered = sorted(flows, key=lambda f: (f.deadline, f.period, f.name))
    return [flow.with_priority(level) for level, flow in enumerate(ordered, start=1)]


def assign_priorities_audsley(
    flows: Sequence[Flow],
    is_schedulable_at_lowest: Callable[[Flow, Sequence[Flow]], bool],
) -> list[Flow] | None:
    """Audsley-style lowest-priority-first assignment (heuristic).

    ``is_schedulable_at_lowest(candidate, others)`` must decide whether
    ``candidate`` meets its deadline when it has the lowest priority and
    ``others`` (in any relative order) are all higher priority.  The caller
    typically wraps one of the analyses in :mod:`repro.core.analyses`.

    Returns a priority-assigned copy of the flows, or ``None`` when no
    assignment is found.  Because wormhole analyses are not strictly
    OPA-compatible, a returned assignment should be re-checked with the
    full analysis (the helper in :mod:`repro.core.engine` does this).
    """
    remaining: list[Flow] = list(flows)
    assignment: list[tuple[Flow, int]] = []
    for level in range(len(remaining), 0, -1):
        placed = None
        for candidate in sorted(
            remaining, key=lambda f: (-f.period, -f.deadline, f.name)
        ):
            others = [f for f in remaining if f is not candidate]
            if is_schedulable_at_lowest(candidate, others):
                placed = candidate
                break
        if placed is None:
            return None
        remaining.remove(placed)
        assignment.append((placed, level))
    return [flow.with_priority(level) for flow, level in assignment]
