"""Flow sets: the traffic load Γ bound to a platform.

A :class:`FlowSet` validates the flows against the model assumptions
(unique names, unique priorities, enough virtual channels when the platform
declares a finite ``vc_count``), caches each flow's route and zero-load
latency ``C_i`` (Equation 1), and exposes the per-flow quantities the
analyses consume.
"""

from __future__ import annotations

import copy
from typing import Iterable, Iterator

from repro.flows.flow import Flow
from repro.noc.platform import NoCPlatform


class FlowSet:
    """The set Γ of flows to be analysed on a given platform.

    Flows are exposed in priority order (highest priority, i.e. lowest
    ``P``, first), which is the order every response-time analysis
    processes them in.

    >>> from repro.noc import Mesh2D, NoCPlatform
    >>> platform = NoCPlatform(Mesh2D(2, 1), buf=2)
    >>> fs = FlowSet(platform, [Flow("a", 1, 100, 10, src=0, dst=1)])
    >>> fs.c("a")   # 1*1 routl? routl=0: linkl*3 + linkl*9
    12
    """

    def __init__(self, platform: NoCPlatform, flows: Iterable[Flow]):
        self.platform = platform
        ordered = sorted(flows, key=lambda f: f.priority)
        self._flows: tuple[Flow, ...] = tuple(ordered)
        self._by_name: dict[str, Flow] = {}
        self._routes: dict[str, tuple[int, ...]] = {}
        self._c: dict[str, int] = {}
        self._validate_and_bind()

    def _validate_and_bind(self) -> None:
        if not self._flows:
            raise ValueError("a flow set needs at least one flow")
        priorities: dict[int, str] = {}
        num_nodes = self.platform.topology.num_nodes
        for flow in self._flows:
            if flow.name in self._by_name:
                raise ValueError(f"duplicate flow name {flow.name!r}")
            if flow.priority in priorities:
                raise ValueError(
                    f"flows {priorities[flow.priority]!r} and {flow.name!r} share "
                    f"priority {flow.priority}; the model assigns one VC per "
                    "priority level, so priorities must be unique"
                )
            if not (0 <= flow.src < num_nodes and 0 <= flow.dst < num_nodes):
                raise ValueError(
                    f"{flow.name}: nodes ({flow.src}, {flow.dst}) outside "
                    f"{self.platform.topology!r}"
                )
            priorities[flow.priority] = flow.name
            self._by_name[flow.name] = flow
            route = self.platform.route(flow.src, flow.dst)
            self._routes[flow.name] = route
            self._c[flow.name] = self.platform.zero_load_latency(
                len(route), flow.length
            )
        vc_count = self.platform.vc_count
        networked = sum(1 for f in self._flows if not f.is_local)
        if vc_count is not None and networked > vc_count:
            raise ValueError(
                f"{networked} networked flows need {networked} priority levels "
                f"but the platform only provides vc_count={vc_count} VCs"
            )

    # -- access -------------------------------------------------------------

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows)

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def flows(self) -> tuple[Flow, ...]:
        """All flows, highest priority first."""
        return self._flows

    def flow(self, name: str) -> Flow:
        """Look a flow up by name."""
        return self._by_name[name]

    def route(self, name: str) -> tuple[int, ...]:
        """The flow's route (ordered link ids), cached."""
        return self._routes[name]

    def c(self, name: str) -> int:
        """The flow's maximum zero-load latency ``C_i`` (Equation 1)."""
        return self._c[name]

    def higher_priority(self, name: str) -> tuple[Flow, ...]:
        """Flows with higher priority than ``name`` (lower ``P``)."""
        mine = self._by_name[name].priority
        return tuple(f for f in self._flows if f.priority < mine)

    # -- metrics ------------------------------------------------------------

    def total_utilization(self) -> float:
        """Sum over flows of ``C_i / T_i`` (a crude load indicator)."""
        return sum(self._c[f.name] / f.period for f in self._flows)

    def max_link_utilization(self) -> float:
        """Highest per-link utilisation ``Σ C_i/T_i`` over links.

        A value above 1.0 guarantees unschedulability (some link is
        overloaded); the experiment harness uses this as a fast filter and
        as a sanity metric when calibrating workloads.
        """
        per_link: dict[int, float] = {}
        for flow in self._flows:
            share = self._c[flow.name] / flow.period
            for link in self._routes[flow.name]:
                per_link[link] = per_link.get(link, 0.0) + share
        return max(per_link.values(), default=0.0)

    def on_platform(self, platform: NoCPlatform) -> "FlowSet":
        """Rebind the same flows to a different platform.

        Used throughout the experiments to compare buffer sizes: the flows
        (and their priorities) are identical, only ``buf(Ξ)`` changes.
        When the target platform differs from the current one *only* in
        buffer depths (same topology, routing, latencies, VC budget) the
        validated routes and zero-load latencies are carried over instead
        of being recomputed — the sweep campaigns rebind every random set
        onto several buffer variants.
        """
        mine = self.platform
        if (
            platform.topology is mine.topology
            and type(platform.routing) is type(mine.routing)
            and platform.linkl == mine.linkl
            and platform.routl == mine.routl
            and platform.vc_count == mine.vc_count
        ):
            clone = copy.copy(self)
            clone.platform = platform
            return clone
        return FlowSet(platform, self._flows)

    def __repr__(self) -> str:
        return f"FlowSet({len(self._flows)} flows on {self.platform!r})"
