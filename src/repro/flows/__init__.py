"""Real-time traffic model (paper Section II).

A :class:`~repro.flows.flow.Flow` is a periodic/sporadic stream of packets
``τ_i = (P_i, C_i, T_i, D_i, J_i, π_s_i, π_d_i)``; a
:class:`~repro.flows.flowset.FlowSet` is the set Γ analysed for
schedulability, bound to the platform that gives each flow its route and
zero-load latency.  :mod:`repro.flows.priority` provides priority-assignment
policies (rate-monotonic, as used in the paper's evaluation, plus
alternatives).
"""

from repro.flows.flow import Flow
from repro.flows.flowset import FlowSet
from repro.flows.priority import (
    assign_priorities_audsley,
    deadline_monotonic,
    rate_monotonic,
)

__all__ = [
    "Flow",
    "FlowSet",
    "rate_monotonic",
    "deadline_monotonic",
    "assign_priorities_audsley",
]
