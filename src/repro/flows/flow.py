"""A single real-time traffic flow.

Flows are immutable value objects; everything derived from the platform
(route, zero-load latency) lives in :class:`repro.flows.flowset.FlowSet`,
so the same flows can be analysed on platforms with different buffer sizes
— exactly what the paper's IBN2/IBN100 comparisons do.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Flow:
    """A periodic or sporadic packet flow ``τ_i`` (paper Section II).

    Attributes
    ----------
    name:
        Human-readable identifier (unique within a flow set).
    priority:
        ``P_i`` — 1 is the highest priority, larger integers are lower.
        Priorities are unique within a flow set (one VC per priority level).
    period:
        ``T_i`` — minimum inter-release time, in cycles.
    deadline:
        ``D_i`` — relative deadline, in cycles; constrained ``D_i <= T_i``.
    jitter:
        ``J_i`` — maximum release jitter, in cycles.
    length:
        ``L_i`` — maximum packet length, in flits.
    src, dst:
        ``π_s_i`` and ``π_d_i`` — source and destination node indices.
    """

    name: str
    priority: int
    period: int
    length: int
    src: int
    dst: int
    deadline: int | None = None
    jitter: int = 0

    def __post_init__(self):
        if self.priority < 1:
            raise ValueError(f"{self.name}: priority must be >= 1, got {self.priority}")
        if self.period < 1:
            raise ValueError(f"{self.name}: period must be >= 1 cycle, got {self.period}")
        if self.length < 1:
            raise ValueError(f"{self.name}: packets have >= 1 flit, got {self.length}")
        if self.jitter < 0:
            raise ValueError(f"{self.name}: jitter must be >= 0, got {self.jitter}")
        if self.deadline is None:
            object.__setattr__(self, "deadline", self.period)
        if self.deadline < 1:
            raise ValueError(f"{self.name}: deadline must be >= 1, got {self.deadline}")
        if self.deadline > self.period:
            raise ValueError(
                f"{self.name}: constrained deadlines required "
                f"(D={self.deadline} > T={self.period}); the analyses dismiss "
                "self-interference on this assumption"
            )

    def with_priority(self, priority: int) -> "Flow":
        """Copy of this flow with a different priority level."""
        return replace(self, priority=priority)

    def with_mapping(self, src: int, dst: int) -> "Flow":
        """Copy of this flow with different source/destination nodes.

        Used by the Figure 5 experiment, which maps the same application
        onto many topologies.
        """
        return replace(self, src=src, dst=dst)

    @property
    def is_local(self) -> bool:
        """True when source and destination coincide.

        Local flows never enter the network: they have zero latency, meet
        any deadline, and impose no interference.  The AV mapping study
        produces many of these on small topologies.
        """
        return self.src == self.dst

    def utilization(self, zero_load_latency: int) -> float:
        """Network utilisation ``C_i / T_i`` given the flow's ``C_i``."""
        return zero_load_latency / self.period

    def __str__(self) -> str:
        return (
            f"{self.name}(P={self.priority}, T={self.period}, D={self.deadline}, "
            f"J={self.jitter}, L={self.length}, {self.src}→{self.dst})"
        )
