"""Asyncio transport for the analysis service.

Three ways to run one :class:`~repro.serve.service.AnalysisService`:

* :func:`serve` — the coroutine: bind, accept, loop until cancelled
  (compose it into your own event loop);
* :func:`run_server` — the blocking CLI entry point behind
  ``python -m repro serve`` (Ctrl-C stops it cleanly);
* :func:`start_in_thread` — a background-thread server with its own
  event loop, returning a :class:`ServerHandle` exposing the bound port
  and a ``close()``; this is what the tests, benchmarks and
  ``examples/serve_quickstart.py`` use to stand a real socket up
  in-process.

Connection handling is deliberately plain: one task per connection,
keep-alive request loop, every response JSON.  Handler exceptions map
to JSON error bodies (:class:`~repro.serve.http.HttpError` keeps its
status, anything else becomes a 500) — a broken request never takes the
server down.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys
import threading
from dataclasses import dataclass, field

from repro.serve.http import HttpError, read_request, render_response
from repro.serve.service import AnalysisService, ServeConfig


async def _drain_peer(reader: asyncio.StreamReader) -> None:
    """Best-effort discard of a peer's in-flight bytes before closing.

    When a framing error aborts an exchange mid-upload, closing with
    unread data in the receive queue makes the kernel send RST and the
    peer loses the error response.  Discarding what is already in
    flight (bounded in bytes and time) lets the 4xx reach the client.
    """
    discarded = 0
    while discarded < 4 * 1024 * 1024:
        try:
            chunk = await asyncio.wait_for(reader.read(64 * 1024), 0.25)
        except (asyncio.TimeoutError, ConnectionError):
            return
        if not chunk:
            return
        discarded += len(chunk)


async def _handle_connection(
    service: AnalysisService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One connection's request loop (keep-alive until close/EOF)."""
    idle_timeout = service.config.idle_timeout_s
    try:
        while True:
            try:
                request = await asyncio.wait_for(
                    read_request(reader), idle_timeout
                )
            except asyncio.TimeoutError:
                break  # stalled or idle peer: reclaim the connection
            except HttpError as exc:
                writer.write(
                    render_response(
                        exc.status, exc.body(), keep_alive=False,
                        extra_headers=exc.headers(),
                    )
                )
                await writer.drain()
                await _drain_peer(reader)
                break
            if request is None:
                break
            keep_alive = request.keep_alive and not service.draining
            extra_headers: dict[str, str] = {}
            try:
                status, payload = await service.handle(request)
            except HttpError as exc:
                status, payload = exc.status, exc.body()
                extra_headers = exc.headers()
            except Exception as exc:  # handler bug -> 500, connection lives
                status = 500
                payload = {
                    "error": f"{type(exc).__name__}: {exc}",
                    "status": 500,
                }
            # Draining may have started while the handler ran: answer
            # this request, then close instead of keeping alive.
            keep_alive = keep_alive and not service.draining
            writer.write(
                render_response(
                    status, payload, keep_alive=keep_alive,
                    extra_headers=extra_headers,
                )
            )
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionResetError, BrokenPipeError):
        pass
    except asyncio.CancelledError:
        # Server shutting down mid-exchange; the connection is being
        # dropped anyway, so complete the task instead of propagating
        # (propagating would make the stream protocol's completion
        # callback log the cancellation as an error).
        pass
    finally:
        writer.close()
        with contextlib.suppress(Exception, asyncio.CancelledError):
            await writer.wait_closed()


async def serve(
    config: ServeConfig | None = None,
    *,
    service: AnalysisService | None = None,
    stop: asyncio.Event | None = None,
    on_started=None,
    sock=None,
) -> None:
    """Bind and serve until ``stop`` is set (or forever / cancellation).

    ``on_started`` (if given) is called once with ``(host, port,
    service)`` after the socket is bound — the hook
    :func:`start_in_thread` and the CLI use to learn the ephemeral port.

    ``sock`` serves on a pre-bound listening socket instead of binding
    ``config.host:config.port`` — how cluster front-ends share one
    listener (an inherited socket, or a per-process ``SO_REUSEPORT``
    bind; see :mod:`repro.serve.cluster`).
    """
    config = config or ServeConfig()
    service = service or AnalysisService(config)
    stop = stop or asyncio.Event()
    conn_tasks: set[asyncio.Task] = set()

    async def handler(reader, writer) -> None:
        task = asyncio.current_task()
        conn_tasks.add(task)
        try:
            await _handle_connection(service, reader, writer)
        finally:
            conn_tasks.discard(task)

    if sock is not None:
        server = await asyncio.start_server(handler, sock=sock)
    else:
        server = await asyncio.start_server(handler, config.host, config.port)
    host, port = server.sockets[0].getsockname()[:2]
    loop = asyncio.get_running_loop()
    # Graceful drain on SIGTERM (the container/orchestrator stop
    # signal).  add_signal_handler is main-thread-only and POSIX-only;
    # background-thread servers (tests) simply skip it.
    sigterm_hooked = False
    with contextlib.suppress(ValueError, NotImplementedError,
                             RuntimeError, AttributeError):
        loop.add_signal_handler(signal.SIGTERM, stop.set)
        sigterm_hooked = True
    if on_started is not None:
        on_started(host, port, service)
    try:
        await stop.wait()
    finally:
        # Graceful drain: stop accepting, let in-flight exchanges
        # finish (bounded by drain_timeout_s), then flush and close.
        service.draining = True
        server.close()
        await server.wait_closed()
        if conn_tasks:
            _done, pending = await asyncio.wait(
                conn_tasks, timeout=config.drain_timeout_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if sigterm_hooked:
            with contextlib.suppress(ValueError, RuntimeError):
                loop.remove_signal_handler(signal.SIGTERM)
        await service.aclose()


def run_server(config: ServeConfig | None = None) -> int:
    """Blocking entry point of ``python -m repro serve``."""
    config = config or ServeConfig()

    def announce(host: str, port: int, _service: AnalysisService) -> None:
        print(f"repro-serve listening on http://{host}:{port}", file=sys.stderr)

    try:
        asyncio.run(serve(config, on_started=announce))
    except KeyboardInterrupt:
        print("repro-serve: shutting down", file=sys.stderr)
    except OSError as exc:
        # Bind failures (port in use, bad address) are operator errors,
        # not crashes — one line and a clean exit code.
        print(
            f"serve: cannot listen on {config.host}:{config.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    return 0


@dataclass
class ServerHandle:
    """A background-thread server: where it listens and how to stop it."""

    host: str = ""
    port: int = 0
    service: AnalysisService | None = None
    error: str | None = None
    _loop: asyncio.AbstractEventLoop | None = field(default=None, repr=False)
    _stop: asyncio.Event | None = field(default=None, repr=False)
    _thread: threading.Thread | None = field(default=None, repr=False)

    def close(self, timeout: float = 10.0) -> None:
        """Signal the server loop to exit and join its thread."""
        if self._loop is not None and not self._loop.is_closed():
            stop = self._stop
            if stop is not None:
                with contextlib.suppress(RuntimeError):
                    self._loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        """Context-manager support: ``with start_in_thread(...) as h:``."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the server on context exit."""
        self.close()


def start_in_thread(
    config: ServeConfig | None = None, *, timeout: float = 10.0
) -> ServerHandle:
    """Run a server on a daemon thread; returns once the socket is bound.

    Raises ``RuntimeError`` when startup fails (e.g. the port is taken).
    """
    config = config or ServeConfig()
    handle = ServerHandle()
    started = threading.Event()

    async def main() -> None:
        handle._loop = asyncio.get_running_loop()
        handle._stop = asyncio.Event()

        def on_started(host: str, port: int, service: AnalysisService) -> None:
            handle.host, handle.port, handle.service = host, port, service
            started.set()

        await serve(
            config, stop=handle._stop, on_started=on_started
        )

    def runner() -> None:
        try:
            asyncio.run(main())
        except Exception as exc:  # startup/loop failure -> surfaced below
            handle.error = f"{type(exc).__name__}: {exc}"
        finally:
            started.set()

    thread = threading.Thread(target=runner, name="repro-serve", daemon=True)
    handle._thread = thread
    thread.start()
    if not started.wait(timeout):
        raise RuntimeError("server did not start within timeout")
    if handle.error is not None:
        raise RuntimeError(f"server failed to start: {handle.error}")
    return handle
