"""The analysis service: JSON endpoints over the campaign machinery.

One :class:`AnalysisService` instance is the whole application state of
``python -m repro serve``.  Requests flow through a fixed path::

    request body --(jobs.py)--> canonical params --> sha256 job hash
        --> LRU / result-store cache?   -> answer immediately
        --> identical job in flight?    -> await its future (coalesce)
        --> otherwise                   -> compute on the worker pool

* **Caching** — results are keyed by the campaign engine's content
  address, held in a bounded :class:`~repro.serve.cache.ServeCache`
  and (with ``run_dir``) written through to a JSONL
  :class:`~repro.campaigns.store.ResultStore`, so a restarted server
  answers warm.
* **Coalescing** — concurrent identical requests share one computation:
  the first creates an ``asyncio.Future`` in the in-flight table, the
  rest await it.  Futures resolve to ``("ok", value)`` / ``("err",
  exc)`` tuples so an unobserved failure never trips the event loop's
  un-retrieved-exception warning.
* **Micro-batching** — concurrent *distinct* analyze misses queue for
  the batch flusher, which ships them as one ``serve_analyze`` block
  per flush — a single batched-kernel call on the worker path (see
  :mod:`repro.core.batch`).  A lone miss bypasses the queue entirely,
  so sequential traffic pays nothing; ``POST /analyze/batch`` carries
  many requests per round trip through the same machinery.
* **Pool** — with ``workers > 0`` the service owns one
  ``ProcessPoolExecutor`` shared by single-request jobs *and* submitted
  campaigns (injected into the :class:`~repro.campaigns.Scheduler`);
  with ``workers == 0`` jobs run on the default thread executor
  (simple, in-process — fine for tests and tiny deployments, but
  GIL-bound).
* **Campaigns** — ``POST /campaign`` accepts a
  :class:`~repro.campaigns.CampaignSpec` document, keys it by the
  sha256 of its canonical JSON (resubmission coalesces), and runs it in
  a background task; ``GET /campaign/<id>`` polls state, the latest
  :class:`~repro.campaigns.ProgressEvent` and, once done, the rendered
  report plus the kind's structured payload.

Failure semantics: validation errors are HTTP 400 before any job is
hashed; executor crashes are HTTP 500 and poison nothing (the job is
simply not cached); a failed campaign parks in state ``"failed"`` with
its error string and never aborts the server.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import threading
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from repro import __version__
from repro.campaigns import registry
from repro.campaigns.engine import run_campaign
from repro.campaigns.progress import ProgressEvent
from repro.campaigns.scheduler import RunStats
from repro.campaigns.spec import CampaignSpec, job_hash, jsonable
from repro.serve import jobs
from repro.serve.cache import JsonlQueryStore, ServeCache
from repro.serve.http import HttpError, HttpRequest
from repro.serve.pool import ResilientPool


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one server instance (CLI flags map 1:1 onto these)."""

    #: Bind address; use ``0.0.0.0`` to accept remote clients.
    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral port (tests, benchmarks).
    port: int = 8177
    #: Process-pool size for job execution; ``0`` = run jobs on the
    #: default thread executor inside the server process.
    workers: int = 0
    #: Bound on the in-memory LRU result cache (entries).
    cache_size: int = 256
    #: Optional directory persisting query results and campaign stores
    #: across restarts (``<run_dir>/queries``, ``<run_dir>/campaigns/*``).
    run_dir: str | None = None
    #: Finished campaign statuses (rendered report + structured data)
    #: kept in memory; the oldest beyond this are evicted — with
    #: ``run_dir`` their job results stay on disk, so resubmitting the
    #: spec replays them near-instantly.
    campaign_history: int = 128
    #: Seconds a keep-alive connection may sit idle (or dribble a
    #: request in) before the server closes it; stalled clients must
    #: not pin file descriptors forever.
    idle_timeout_s: float = 120.0
    #: Campaigns allowed in the pending/running states at once; further
    #: submissions of *new* specs get HTTP 429 (polling and coalescing
    #: resubmissions are unaffected).
    max_active_campaigns: int = 8
    #: Seconds the analyze micro-batcher waits after the first queued
    #: cache miss before flushing, coalescing concurrent ``/analyze``
    #: misses into one batched kernel call.  ``0`` flushes on the next
    #: event-loop tick (no added latency beyond already-queued work).
    batch_window_s: float = 0.0
    #: Upper bound on requests per batched kernel call.
    max_batch: int = 64
    #: Per-request compute deadline in seconds (``None`` = unbounded):
    #: a job still running past it answers 504 while the computation
    #: finishes in the background and fills the cache.
    request_timeout_s: float | None = None
    #: Backpressure window after a worker-pool rebuild: cache misses
    #: answer 503 with ``Retry-After`` until the fresh workers warmed
    #: up for this long (cache hits and coalesced requests still serve).
    rebuild_cooldown_s: float = 0.5
    #: Seconds a graceful drain (SIGTERM / stop) waits for in-flight
    #: requests before cancelling their connections.
    drain_timeout_s: float = 5.0
    #: Store-daemon shard addresses (``host:port``).  Non-empty switches
    #: the query tier to the shared cluster store: results are
    #: consistent-hashed over the shards (every front-end agrees on the
    #: owner), read through the local LRU, and a shard outage degrades
    #: to recomputation.  ``run_dir`` then only persists campaign
    #: stores — query results live in the shard daemons' directories.
    store_addrs: tuple[str, ...] = ()
    #: Fsync policy of the local query store (``none``/``batch``/
    #: ``always``); ignored when ``store_addrs`` routes queries to the
    #: shard daemons (which carry their own policy).
    store_fsync: str = "none"
    #: Admission bound: compute requests (analyze / batch / sizing / allocate)
    #: concurrently in this process.  ``0`` = unbounded (single-process
    #: default); a cluster front-end sets it so overload **sheds** (429
    #: + ``Retry-After``) instead of queueing without bound until every
    #: request times out.
    max_inflight: int = 0
    #: ``Retry-After`` hint (seconds) on shed 429 responses.
    shed_retry_after_s: float = 1.0
    #: Compute backend for this service and its worker pool (``numpy``
    #: or ``cext``; ``None`` keeps ``REPRO_BACKEND``/numpy).  Selection
    #: is exported into the environment, so pool workers inherit it.
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.cache_size < 1:
            raise ValueError(
                f"cache_size must be >= 1, got {self.cache_size}"
            )
        if self.campaign_history < 1:
            raise ValueError(
                f"campaign_history must be >= 1, got {self.campaign_history}"
            )
        if self.idle_timeout_s <= 0:
            raise ValueError(
                f"idle_timeout_s must be > 0, got {self.idle_timeout_s}"
            )
        if self.max_active_campaigns < 1:
            raise ValueError(
                "max_active_campaigns must be >= 1, got "
                f"{self.max_active_campaigns}"
            )
        if self.batch_window_s < 0:
            raise ValueError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError(
                "request_timeout_s must be positive or None, got "
                f"{self.request_timeout_s}"
            )
        if self.rebuild_cooldown_s < 0:
            raise ValueError(
                "rebuild_cooldown_s must be >= 0, got "
                f"{self.rebuild_cooldown_s}"
            )
        if self.drain_timeout_s < 0:
            raise ValueError(
                f"drain_timeout_s must be >= 0, got {self.drain_timeout_s}"
            )
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        for group in self.store_addrs:
            # Each entry is one shard: a single "host:port" or a
            # replicated group "host:port,host:port" (primary,backup).
            members = [part for part in group.split(",") if part]
            if not members:
                raise ValueError(f"empty store address group {group!r}")
            for addr in members:
                host, _, port_text = addr.rpartition(":")
                if not host or not port_text.isdigit():
                    raise ValueError(
                        f"store address must be 'host:port', got {addr!r}"
                    )
        if self.store_fsync not in ("none", "batch", "always"):
            raise ValueError(
                "store_fsync must be 'none', 'batch' or 'always', "
                f"got {self.store_fsync!r}"
            )
        if self.max_inflight < 0:
            raise ValueError(
                f"max_inflight must be >= 0, got {self.max_inflight}"
            )
        if self.shed_retry_after_s <= 0:
            raise ValueError(
                "shed_retry_after_s must be > 0, got "
                f"{self.shed_retry_after_s}"
            )
        if self.backend is not None:
            from repro.core.backend import registered_backend_names

            if self.backend.strip().lower() not in registered_backend_names():
                raise ValueError(
                    f"unknown backend {self.backend!r}; registered: "
                    f"{', '.join(registered_backend_names())}"
                )


class CampaignStatus:
    """Mutable lifecycle record of one submitted campaign."""

    __slots__ = (
        "id", "spec", "state", "progress", "stats", "error", "render", "data",
        "partial", "quarantine",
    )

    def __init__(self, campaign_id: str, spec: CampaignSpec) -> None:
        self.id = campaign_id
        self.spec = spec
        # pending -> running -> done | failed.  One transient detour:
        # "failed: worker pool broken (restarted)" while the service
        # auto-resubmits a pool-break victim from its resumable store.
        self.state = "pending"
        self.progress: ProgressEvent | None = None
        self.stats: RunStats | None = None
        self.error: str | None = None
        self.render: str | None = None
        self.data: Any = None
        self.partial = False
        self.quarantine: list[dict] = []

    def to_jsonable(self, *, include_result: bool = True) -> dict:
        """The status document ``GET /campaign/<id>`` returns."""
        progress = self.progress
        stats = self.stats
        payload: dict[str, Any] = {
            "id": self.id,
            "name": self.spec.name,
            "kind": self.spec.kind,
            "state": self.state,
            "error": self.error,
            "progress": None if progress is None else {
                "done": progress.done,
                "total": progress.total,
                "skipped": progress.skipped,
                "label": progress.label,
                "elapsed_s": round(progress.elapsed_s, 3),
                "eta_s": (
                    None if progress.eta_s is None else round(progress.eta_s, 3)
                ),
            },
            "stats": None if stats is None else {
                "jobs_total": stats.jobs_total,
                "jobs_run": stats.jobs_run,
                "jobs_skipped": stats.jobs_skipped,
                "elapsed_s": round(stats.elapsed_s, 3),
                "jobs_quarantined": stats.jobs_quarantined,
                "retries": stats.retries,
                "timeouts": stats.timeouts,
                "pool_rebuilds": stats.pool_rebuilds,
            },
        }
        if self.partial:
            payload["partial"] = True
            payload["quarantine"] = self.quarantine
        if include_result:
            payload["result"] = (
                None if self.state != "done"
                else {"render": self.render, "data": self.data}
            )
        return payload


def campaign_id(spec: CampaignSpec) -> str:
    """Content address of a campaign: sha256 of its canonical spec JSON."""
    return hashlib.sha256(spec.canonical().encode("utf-8")).hexdigest()


class AnalysisService:
    """Application state + request handlers behind the HTTP layer."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        if self.config.backend is not None:
            # Selection exports REPRO_BACKEND, so the pool's (spawned or
            # forked) workers inherit the choice with the environment.
            from repro.core import backend as backend_mod

            backend_mod.set_backend(self.config.backend)
        store = None
        if self.config.store_addrs:
            # Cluster mode: the query tier is the shared store-daemon
            # shards — every front-end reads/writes the same results,
            # keyed by consistent hash of the content address.
            from repro.serve.stored import RemoteStore

            store = RemoteStore(self.config.store_addrs)
        elif self.config.run_dir is not None:
            # Offset-indexed on disk: the LRU (not the store) bounds
            # what this process holds in memory.
            store = JsonlQueryStore(
                Path(self.config.run_dir) / "queries",
                fsync=self.config.store_fsync,
            )
        self.cache = ServeCache(maxsize=self.config.cache_size, store=store)
        # The shared pool is supervised: worker deaths rebuild it and
        # resubmit the queued work instead of poisoning every future.
        self.pool: ResilientPool | None = (
            ResilientPool(
                self.config.workers,
                cooldown_s=self.config.rebuild_cooldown_s,
            )
            if self.config.workers > 0
            else None
        )
        self.inflight: dict[str, asyncio.Future] = {}
        self.campaigns: dict[str, CampaignStatus] = {}
        self.executed = 0
        self.coalesced = 0
        self.requests = 0
        self.started_at = time.monotonic()
        self._tasks: set[asyncio.Task] = set()
        #: analyze micro-batcher: queued (params, future) cache misses
        #: plus the counters ``GET /stats`` reports under "batching".
        self._batch_queue: list[tuple[dict, asyncio.Future]] = []
        self._batch_flusher: asyncio.Task | None = None
        self._analyze_active = 0
        self.batches = 0
        self.batched_requests = 0
        self.direct_requests = 0
        self.max_batch_seen = 0
        #: Resilience counters (``GET /stats`` "resilience" block).
        self.rejected_503 = 0
        self.deadline_timeouts = 0
        self.campaign_pool_restarts = 0
        #: Overload protection: compute requests admitted right now,
        #: and how many were shed with 429 (``GET /stats`` "overload").
        self.admitted = 0
        self.shed_429 = 0
        #: Latest cluster-wide aggregate, pushed by the supervisor over
        #: the control pipe (cluster front-ends only).  When set,
        #: ``GET /stats`` grows a "cluster" block, so *any* front-end
        #: answers for the whole cluster.
        self.cluster: dict | None = None
        #: Set by the transport on graceful shutdown: finish in-flight
        #: exchanges, answer with ``Connection: close``, accept nothing
        #: new.
        self.draining = False

    # ------------------------------------------------------------------
    # dispatch

    async def handle(self, request: HttpRequest) -> tuple[int, dict]:
        """Route one parsed request to its handler -> (status, payload)."""
        self.requests += 1
        path = request.path.rstrip("/") or "/"
        if path == "/":
            self._require(request, "GET")
            return 200, self._index()
        if path == "/healthz":
            self._require(request, "GET")
            return 200, self._healthz()
        if path == "/stats":
            self._require(request, "GET")
            return 200, self._stats()
        if path == "/analyze":
            self._require(request, "POST")
            with self._admission():
                return await self._job_endpoint(
                    request, "serve_analyze", jobs.analyze_params
                )
        if path == "/analyze/batch":
            self._require(request, "POST")
            with self._admission():
                return await self._analyze_batch_endpoint(request)
        if path == "/sizing":
            self._require(request, "POST")
            with self._admission():
                return await self._job_endpoint(
                    request, "serve_sizing", jobs.sizing_params
                )
        if path == "/allocate":
            self._require(request, "POST")
            with self._admission():
                return await self._job_endpoint(
                    request, "serve_allocate", jobs.allocate_params
                )
        if path == "/campaign":
            if request.method == "GET":
                return 200, self._campaign_list()
            self._require(request, "POST")
            return await self._campaign_submit(request)
        if path.startswith("/campaign/"):
            self._require(request, "GET")
            return 200, self._campaign_status(path.removeprefix("/campaign/"))
        raise HttpError(404, f"no such endpoint: {request.path}")

    @contextlib.contextmanager
    def _admission(self):
        """Bound concurrent compute requests; shed the excess with 429.

        The whole point of shedding: a saturated front-end answering a
        cheap 429 + ``Retry-After`` immediately stays *responsive* (and
        its admitted requests keep their latency), where unbounded
        queueing under overload turns every request into a timeout.
        ``max_inflight == 0`` disables the gate (single-process
        default); counters run on the event loop, so no lock.
        """
        limit = self.config.max_inflight
        if limit and self.admitted >= limit:
            self.shed_429 += 1
            raise HttpError(
                429,
                f"{self.admitted} compute requests already in flight "
                f"(limit {limit}); shedding load — retry after the "
                "hinted delay",
                retry_after=self.config.shed_retry_after_s,
            )
        self.admitted += 1
        try:
            yield
        finally:
            self.admitted -= 1

    @staticmethod
    def _require(request: HttpRequest, method: str) -> None:
        if request.method != method:
            raise HttpError(
                405, f"{request.path} only accepts {method}, got {request.method}"
            )

    # ------------------------------------------------------------------
    # small GET endpoints

    def _index(self) -> dict:
        """``GET /``: endpoint discovery document."""
        return {
            "service": "repro-serve",
            "version": __version__,
            "endpoints": {
                "GET /healthz": "liveness + uptime",
                "GET /stats": "cache / coalescing / campaign counters",
                "POST /analyze": "flowset + analysis -> bounds and verdict",
                "POST /analyze/batch": "many analyze requests, one batched kernel call",
                "POST /sizing": "flowset -> buffer-depth and payload headroom",
                "POST /allocate": "flowset + cost model -> min-cost schedulable buffer allocation",
                "POST /campaign": "submit a campaign spec (async)",
                "GET /campaign": "list submitted campaigns",
                "GET /campaign/<id>": "poll one campaign's progress/result",
            },
        }

    def _healthz(self) -> dict:
        """``GET /healthz``: liveness probe payload."""
        return {
            "status": "ok",
            "version": __version__,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "workers": self.config.workers,
        }

    def _stats(self) -> dict:
        """``GET /stats``: the counters the tests and benchmarks assert."""
        by_state: dict[str, int] = {}
        for status in self.campaigns.values():
            by_state[status.state] = by_state.get(status.state, 0) + 1
        cache_stats = self.cache.stats()
        store_stats = getattr(self.cache.store, "stats", None)
        if callable(store_stats):
            # RemoteStore: shard count, outage, buffered-put and
            # failover counters.
            cache_stats["remote"] = store_stats()
        durability = getattr(self.cache.store, "durability_stats", None)
        if callable(durability):
            # JsonlQueryStore: fsync mode, read-only degradation and
            # corrupt-record quarantine counters.
            cache_stats["store"] = durability()
        from repro.core.backend import get_backend

        payload = {
            "requests": self.requests,
            "executed": self.executed,
            "coalesced": self.coalesced,
            "inflight": len(self.inflight),
            "backend": get_backend().name,
            "cache": cache_stats,
            "campaigns": by_state,
            "batching": {
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "direct_requests": self.direct_requests,
                "max_batch": self.max_batch_seen,
                "queued": len(self._batch_queue),
            },
            "resilience": {
                "pool_rebuilds": getattr(self.pool, "rebuilds", 0),
                "pool_resubmits": getattr(self.pool, "resubmits", 0),
                "pool_rebuilding": bool(
                    getattr(self.pool, "rebuilding", False)
                ),
                "rejected_503": self.rejected_503,
                "deadline_timeouts": self.deadline_timeouts,
                "campaign_pool_restarts": self.campaign_pool_restarts,
                "draining": self.draining,
            },
            "overload": {
                "admitted": self.admitted,
                "max_inflight": self.config.max_inflight,
                "shed_429": self.shed_429,
                "shed_retry_after_s": self.config.shed_retry_after_s,
            },
        }
        if self.cluster is not None:
            payload["cluster"] = self.cluster
        return payload

    # ------------------------------------------------------------------
    # single-request jobs (analyze / sizing / allocate)

    async def _job_endpoint(
        self,
        request: HttpRequest,
        kind: str,
        params_builder: Callable[[Mapping[str, Any]], dict],
    ) -> tuple[int, dict]:
        # Body decode + validation parse the embedded flowset document,
        # which for big requests is real work — run the whole step on a
        # thread, never on the event loop.
        def decode_and_validate() -> dict:
            return params_builder(request.json())

        try:
            params = await asyncio.get_running_loop().run_in_executor(
                None, decode_and_validate
            )
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        job_id, body, source = await self._deadline(
            self._run_job(kind, params)
        )
        return 200, {
            "job": job_id,
            "cached": source != "computed",
            "source": source,
            **body,
        }

    async def _deadline(self, coro):
        """Bound one request by ``request_timeout_s`` (no-op when None).

        The underlying computation is shielded: a deadline answers 504
        to *this* client while the job finishes in the background and
        fills the cache (and resolves any coalesced waiters) — exactly
        the semantics a deterministic content-addressed job allows.
        """
        timeout = self.config.request_timeout_s
        if timeout is None:
            return await coro
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        # Keep the background outcome observed either way, or the loop
        # logs "exception was never retrieved" after a timeout.
        task.add_done_callback(
            lambda t: t.cancelled() or t.exception()
        )
        try:
            return await asyncio.wait_for(asyncio.shield(task), timeout)
        except asyncio.TimeoutError:
            self.deadline_timeouts += 1
            raise HttpError(
                504,
                f"request exceeded the {timeout}s deadline; the "
                "computation continues and its result will be cached",
                retry_after=timeout,
            ) from None

    def _reject_if_rebuilding(self) -> None:
        """503 + Retry-After while the worker pool is rebuilding."""
        pool = self.pool
        if pool is not None and pool.rebuilding:
            self.rejected_503 += 1
            raise HttpError(
                503,
                "worker pool is rebuilding after a worker crash; "
                "retry shortly",
                retry_after=pool.rebuilding_for,
            )

    async def _run_job(
        self, kind: str, params: dict, *, prefer_batch: bool = False
    ) -> tuple[str, Any, str]:
        """Serve one content-addressed job: cache, coalesce or compute.

        The in-flight future is registered *before* any await, so two
        identical concurrent requests can never both reach the compute
        path: the second always finds the first's future.  Cache reads
        and writes both run on the thread executor — a store-backed
        lookup touches disk, and neither may stall the event loop.
        """
        loop = asyncio.get_running_loop()
        # Hashing canonicalises the full params document (multiple JSON
        # serialisations) — thread work for the same reason as above.
        job_id = await loop.run_in_executor(None, job_hash, kind, params)
        pending = self.inflight.get(job_id)
        if pending is not None:
            self.coalesced += 1
            outcome, value = await pending
            if outcome == "err":
                raise value
            return job_id, value, "coalesced"
        future: asyncio.Future = loop.create_future()
        self.inflight[job_id] = future
        try:
            try:
                found, value = await loop.run_in_executor(
                    None, self.cache.get, job_id
                )
                source = "cache"
                if not found:
                    # Cache misses need fresh compute: shed load while
                    # the pool recovers (hits/coalesces still serve).
                    self._reject_if_rebuilding()
                    if kind == "serve_analyze" and (
                        prefer_batch
                        or self._analyze_active > 0
                        or self._batch_queue
                    ):
                        # Another analyze is computing (or this request
                        # arrived as part of a batch): funnel through
                        # the micro-batcher so concurrent misses become
                        # one batched kernel call on the worker path.
                        value = await self._compute_batched(params)
                    elif kind == "serve_analyze":
                        # Lone miss: straight to the worker path — the
                        # batcher must never tax sequential traffic.
                        self._analyze_active += 1
                        self.direct_requests += 1
                        try:
                            value = await loop.run_in_executor(
                                self.pool, registry.execute_job, kind, params
                            )
                        finally:
                            self._analyze_active -= 1
                    else:
                        value = await loop.run_in_executor(
                            self.pool, registry.execute_job, kind, params
                        )
                    value = await loop.run_in_executor(
                        None, self.cache.put, job_id, value
                    )
                    self.executed += 1
                    source = "computed"
            except Exception as exc:
                future.set_result(("err", exc))
                raise
            future.set_result(("ok", value))
            return job_id, value, source
        finally:
            self.inflight.pop(job_id, None)

    async def _compute_batched(self, params: dict):
        """Queue one analyze computation for the next batch flush."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._batch_queue.append((params, future))
        if self._batch_flusher is None or self._batch_flusher.done():
            task = loop.create_task(self._flush_batches())
            self._batch_flusher = task
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        return await future

    async def _flush_batches(self) -> None:
        """Drain the analyze queue in batched kernel calls.

        One task at a time: created by the first queued miss, lives
        until the queue is empty.  Each flush waits ``batch_window_s``
        (or just the next loop tick) so concurrent requests land in the
        same batch, then ships up to ``max_batch`` of them as
        ``serve_analyze`` blocks to the worker path — one block on the
        thread executor (``workers=0``, where batching is the whole
        win), sharded across the process pool otherwise so the batch
        never serialises what the pool could run in parallel.
        """
        loop = asyncio.get_running_loop()
        while self._batch_queue:
            if self.config.batch_window_s > 0:
                await asyncio.sleep(self.config.batch_window_s)
            else:
                await asyncio.sleep(0)
            batch = self._batch_queue[: self.config.max_batch]
            del self._batch_queue[: len(batch)]
            if not batch:
                break
            shards = self._shard(batch)
            self.batches += len(shards)
            self.batched_requests += len(batch)
            self.max_batch_seen = max(
                self.max_batch_seen, max(len(shard) for shard in shards)
            )
            outcomes = await asyncio.gather(
                *[
                    loop.run_in_executor(
                        self.pool,
                        registry.execute_block,
                        "serve_analyze",
                        [params for params, _ in shard],
                    )
                    for shard in shards
                ],
                return_exceptions=True,
            )
            for shard, outcome in zip(shards, outcomes):
                if isinstance(outcome, BaseException):
                    for _, future in shard:
                        if not future.done():
                            future.set_exception(outcome)
                    continue
                for (_, future), value in zip(shard, outcome):
                    if not future.done():
                        future.set_result(value)

    def _shard(self, batch: list) -> list[list]:
        """Split one flush over the process pool's width (≥1 shard)."""
        workers = self.config.workers
        if workers <= 1 or len(batch) <= 1:
            return [batch]
        size = -(-len(batch) // workers)
        return [
            batch[start:start + size]
            for start in range(0, len(batch), size)
        ]

    async def _analyze_batch_endpoint(
        self, request: HttpRequest
    ) -> tuple[int, dict]:
        """``POST /analyze/batch``: many analyze requests in one call.

        Each entry of the ``requests`` array is one ``POST /analyze``
        body; entries flow through the same per-request content
        addressing (cache hits, in-flight coalescing) and the misses
        coalesce into batched kernel calls.  The response's ``results``
        array is aligned with the request order.
        """

        def decode_and_validate() -> list[dict]:
            body = request.json()
            entries = body.get("requests")
            if not isinstance(entries, list) or not entries:
                raise ValueError(
                    "request needs a non-empty 'requests' array of "
                    "analyze documents"
                )
            if len(entries) > 256:
                raise ValueError(
                    f"at most 256 requests per batch, got {len(entries)}"
                )
            params_list = []
            for index, entry in enumerate(entries):
                if not isinstance(entry, dict):
                    raise ValueError(f"requests[{index}] must be an object")
                try:
                    params_list.append(jobs.analyze_params(entry))
                except ValueError as exc:
                    raise ValueError(f"requests[{index}]: {exc}") from None
            return params_list

        try:
            params_list = await asyncio.get_running_loop().run_in_executor(
                None, decode_and_validate
            )
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        outcomes = await asyncio.gather(
            *[
                self._run_job("serve_analyze", params, prefer_batch=True)
                for params in params_list
            ],
            return_exceptions=True,
        )
        results = []
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
            job_id, body, source = outcome
            results.append({
                "job": job_id,
                "cached": source != "computed",
                "source": source,
                **body,
            })
        return 200, {"count": len(results), "results": results}

    # ------------------------------------------------------------------
    # campaigns

    async def _campaign_submit(self, request: HttpRequest) -> tuple[int, dict]:
        def decode_and_address() -> tuple[CampaignSpec, str]:
            # Spec parse + canonical-JSON sha256 are proportional to the
            # document size — thread work, like every other parse here.
            spec = CampaignSpec.from_dict(request.json())
            # Expansion is deterministic and cheap relative to running;
            # doing it here turns unknown kinds and bad params into a
            # 400 at submit time instead of an asynchronous "failed".
            registry.get_kind(spec.kind).plan(spec)
            return spec, campaign_id(spec)

        try:
            spec, cid = await asyncio.get_running_loop().run_in_executor(
                None, decode_and_address
            )
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        status = self.campaigns.get(cid)
        if status is None or status.state == "failed":
            # Unknown campaign, or a failed one being resubmitted:
            # start a fresh attempt (mirrors the single-job semantics —
            # failures cache nothing, the next identical request
            # retries).  Running/done campaigns coalesce.
            active = sum(
                1 for s in self.campaigns.values()
                if s.state in ("pending", "running")
            )
            if active >= self.config.max_active_campaigns:
                raise HttpError(
                    429,
                    f"{active} campaigns already active (limit "
                    f"{self.config.max_active_campaigns}); retry later",
                )
            status = CampaignStatus(cid, spec)
            self.campaigns[cid] = status
            task = asyncio.get_running_loop().create_task(
                self._campaign_task(status)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        return 202, status.to_jsonable(include_result=False)

    async def _campaign_task(self, status: CampaignStatus) -> None:
        """Background driver of one campaign (never raises)."""
        status.state = "running"

        def record_progress(event: ProgressEvent) -> None:
            # Called from the campaign's worker thread; a single
            # attribute assignment is atomic, and readers only ever see
            # a complete (frozen) event.
            status.progress = event

        store = None
        if self.config.run_dir is not None:
            store = (
                Path(self.config.run_dir) / "campaigns" / status.id[:16]
            )
        try:
            run = None
            for attempt in (1, 2):
                try:
                    run = await self._run_campaign_on_thread(
                        status, store, record_progress
                    )
                    break
                except BrokenExecutor as exc:
                    self.campaign_pool_restarts += 1
                    if attempt == 2:
                        raise
                    # The shared pool broke beyond its self-healing
                    # budget under this campaign.  Surface the distinct
                    # transient status and auto-resubmit once: with a
                    # run_dir the resumable store replays every
                    # completed job, so only the tail re-runs.
                    status.error = f"{type(exc).__name__}: {exc}"
                    status.state = "failed: worker pool broken (restarted)"
            kind = registry.get_kind(status.spec.kind)
            data = (
                kind.to_jsonable(status.spec, run.result)
                if kind.to_jsonable is not None and run.result is not None
                else None
            )
            status.render = run.render()
            status.data = None if data is None else jsonable(data)
            status.stats = run.stats
            status.partial = run.partial
            status.quarantine = [
                {"job": item.job_id, "label": item.label, **item.error}
                for item in run.quarantine
            ]
            status.error = None
            status.state = "done"
        except Exception as exc:  # failed campaigns park, server lives on
            status.error = f"{type(exc).__name__}: {exc}"
            status.state = "failed"
        finally:
            self._prune_campaigns()

    async def _run_campaign_on_thread(
        self, status: CampaignStatus, store, progress
    ):
        """Run one campaign on a dedicated daemon thread.

        Not ``asyncio.to_thread``: a campaign can run for hours and is
        uncancellable mid-flight, and ``asyncio.run`` waits for the
        default executor's threads on shutdown — a Ctrl-C would hang
        until the campaign finished.  A daemon thread lets the process
        exit; the content-addressed store makes the interrupted run
        resumable on restart.
        """
        loop = asyncio.get_running_loop()
        finished = asyncio.Event()
        outcome: dict[str, Any] = {}

        def work() -> None:
            try:
                outcome["run"] = run_campaign(
                    status.spec,
                    store=store,
                    workers=max(1, self.config.workers),
                    progress=progress,
                    pool=self.pool,
                )
            except BaseException as exc:
                outcome["error"] = exc
            finally:
                with contextlib.suppress(RuntimeError):
                    # RuntimeError: the loop already closed (shutdown).
                    loop.call_soon_threadsafe(finished.set)

        threading.Thread(
            target=work, daemon=True, name=f"campaign-{status.id[:8]}"
        ).start()
        await finished.wait()
        error = outcome.get("error")
        if error is not None:
            raise error
        return outcome["run"]

    def _prune_campaigns(self) -> None:
        """Evict the oldest finished campaigns beyond the history bound.

        Bounds server memory the same way the query LRU does: a status
        holds the whole rendered report and structured result.  Evicted
        ids answer 404; with ``run_dir`` their jobs remain in the store,
        so resubmitting the spec replays rather than recomputes.
        """
        finished = [
            cid for cid, status in self.campaigns.items()
            if status.state in ("done", "failed")
        ]
        for cid in finished[: max(0, len(finished)
                                  - self.config.campaign_history)]:
            del self.campaigns[cid]

    def _campaign_list(self) -> dict:
        """``GET /campaign``: submission-ordered status summaries."""
        return {
            "campaigns": [
                status.to_jsonable(include_result=False)
                for status in self.campaigns.values()
            ]
        }

    def _campaign_status(self, cid: str) -> dict:
        status = self.campaigns.get(cid)
        if status is None:
            raise HttpError(404, f"unknown campaign id {cid!r}")
        return status.to_jsonable()

    # ------------------------------------------------------------------
    # lifecycle

    async def aclose(self) -> None:
        """Stop background campaign tasks and release the worker pool."""
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
        closer = getattr(self.cache.store, "close", None)
        if callable(closer):
            closer()  # RemoteStore: drop the shard connections
