"""A supervised process pool that survives its workers.

``repro serve`` shares one process pool between every request and every
submitted campaign, so a single worker death (an OOM-killed numpy
worker, a segfault) must not poison the whole server: a plain
``ProcessPoolExecutor`` goes permanently broken and every future ever
submitted to it — including queued coalesced requests that were never
near the dead worker — fails with ``BrokenProcessPool``.

:class:`ResilientPool` wraps the executor with a supervisor:

* callers get an *outer* future that is relayed from the inner pool
  future, so queued work is never lost to a break — on
  ``BrokenProcessPool`` the pool is rebuilt and the work resubmitted
  (bounded by ``max_resubmits`` per future; jobs are content-addressed
  and deterministic, so re-running one is always safe);
* rebuilds are serialised and generation-counted — a stampede of
  broken futures triggers exactly one rebuild;
* :attr:`rebuilding` exposes a short post-rebuild cooldown window the
  service uses for 503/Retry-After backpressure while fresh workers
  warm up.

The wrapper *is* a :class:`concurrent.futures.Executor`, so it drops
into ``loop.run_in_executor`` and the campaign scheduler's injected
``pool`` unchanged.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    InvalidStateError,
    ProcessPoolExecutor,
)


def _finish(future: Future, value=None, error: BaseException | None = None):
    """Resolve an outer future, tolerating cancellation races."""
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(value)
    except InvalidStateError:
        pass  # caller cancelled/abandoned the outer future meanwhile


class ResilientPool(Executor):
    """Self-healing ``ProcessPoolExecutor`` with resubmit-on-break."""

    def __init__(
        self,
        workers: int,
        *,
        max_resubmits: int = 3,
        cooldown_s: float = 0.5,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._workers = workers
        self._max_resubmits = max_resubmits
        self._cooldown_s = cooldown_s
        self._lock = threading.Lock()
        self._pool = ProcessPoolExecutor(max_workers=workers)
        self._generation = 0
        self._rebuilding_until = 0.0
        self._closed = False
        #: Counters surfaced by ``GET /stats`` ("resilience" block).
        self.rebuilds = 0
        self.resubmits = 0

    # ------------------------------------------------------------------
    # Executor interface

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Submit work; the returned future survives pool breakage."""
        with self._lock:
            if self._closed:
                # Plain-Executor semantics at the submission boundary;
                # internal *re*submissions racing a shutdown resolve
                # their outer future instead (see _dispatch).
                raise RuntimeError(
                    "cannot submit to a shut-down ResilientPool"
                )
        outer: Future = Future()
        self._dispatch(outer, fn, args, kwargs, resubmits=0)
        return outer

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False):
        with self._lock:
            self._closed = True
            pool = self._pool
        pool.shutdown(wait=wait, cancel_futures=cancel_futures)

    # ------------------------------------------------------------------
    # supervision

    @property
    def rebuilding(self) -> bool:
        """True during the post-rebuild cooldown (backpressure window)."""
        return time.monotonic() < self._rebuilding_until

    @property
    def rebuilding_for(self) -> float:
        """Seconds of cooldown remaining (0 when healthy)."""
        return max(0.0, self._rebuilding_until - time.monotonic())

    def kill_workers(self) -> None:
        """SIGKILL the current workers (fault injection / reclamation)."""
        with self._lock:
            pool = self._pool
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.kill()

    def _dispatch(self, outer, fn, args, kwargs, resubmits: int) -> None:
        with self._lock:
            if self._closed:
                _finish(outer, error=RuntimeError(
                    "cannot submit to a shut-down ResilientPool"
                ))
                return
            pool = self._pool
            generation = self._generation
        try:
            inner = pool.submit(fn, *args, **kwargs)
        except BrokenExecutor as exc:
            self._on_broken(outer, fn, args, kwargs, resubmits,
                            generation, exc)
            return
        except RuntimeError as exc:  # shutdown race on the inner pool
            _finish(outer, error=exc)
            return
        inner.add_done_callback(
            lambda f: self._relay(f, outer, fn, args, kwargs,
                                  resubmits, generation)
        )

    def _relay(self, inner, outer, fn, args, kwargs, resubmits,
               generation) -> None:
        if outer.done():
            # Outer was cancelled; drop the inner outcome (retrieving
            # the exception below keeps the futures machinery quiet).
            inner.exception()
            return
        error = inner.exception()
        if isinstance(error, BrokenExecutor):
            self._on_broken(outer, fn, args, kwargs, resubmits,
                            generation, error)
        elif error is not None:
            _finish(outer, error=error)
        else:
            _finish(outer, inner.result())

    def _on_broken(self, outer, fn, args, kwargs, resubmits,
                   generation, exc) -> None:
        self._heal(generation)
        if resubmits >= self._max_resubmits:
            _finish(outer, error=exc)
            return
        self.resubmits += 1
        self._dispatch(outer, fn, args, kwargs, resubmits + 1)

    def _heal(self, generation: int) -> None:
        """Replace the broken inner pool (once per generation)."""
        with self._lock:
            if self._closed or generation != self._generation:
                return  # someone else already rebuilt (or we're closing)
            broken = self._pool
            self._generation += 1
            self.rebuilds += 1
            self._rebuilding_until = time.monotonic() + self._cooldown_s
            self._pool = ProcessPoolExecutor(max_workers=self._workers)
        broken.shutdown(wait=False)
