"""Shared result tier: the store daemon and its sharded remote client.

One process per shard owns an offset-indexed
:class:`~repro.serve.cache.JsonlQueryStore` and serves it over a tiny
length-prefixed JSON protocol, so every front-end of a ``repro
cluster`` reads and writes the *same* content-addressed results —
a job computed by any front-end is a cache hit for all of them.

* :class:`StoreDaemon` — the server: thread-per-connection over one
  ``JsonlQueryStore``.  ``put`` is **deduplicating**: a job hash already
  present is not appended again (results are deterministic, so the
  second write can only be a byte-identical recomputation) — which is
  what makes "each distinct hash computed once" checkable by grepping
  the store file.  Restarts recover from torn final lines exactly like
  the campaign store (the scan skips them; the torn job recomputes).
* :class:`StoreClient` — one blocking connection to one daemon, with
  transparent reconnect-once per request.
* :class:`RemoteStore` — the object front-ends plug into
  :class:`~repro.serve.cache.ServeCache`: consistent-hashes each job id
  over the configured shard addresses (:class:`HashRing`), degrades a
  dead shard to a cache miss (``get`` -> recompute) instead of an
  error, and buffers failed ``put``\\ s to flush after the shard comes
  back — a store-daemon bounce costs recomputation, never availability.
* :class:`HashRing` — consistent hashing with virtual nodes: adding or
  removing one shard remaps only ~1/n of the key space, so a resharded
  cluster keeps most of its cache warm.

The protocol is four request kinds, each one JSON document framed by a
4-byte big-endian length::

    {"op": "get",  "job": <hash>}              -> {"ok": true, "found": bool, "result": ...}
    {"op": "put",  "job": <hash>, "result": .} -> {"ok": true, "stored": bool}
    {"op": "stats"}                            -> {"ok": true, "entries": N, ...}
    {"op": "ping"}                             -> {"ok": true}

``python -m repro stored`` runs one daemon standalone;
``python -m repro cluster`` spawns and supervises one per shard.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
import sys
import threading
from bisect import bisect_right
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.campaigns.spec import jsonable
from repro.serve.cache import JsonlQueryStore

#: Frame header: payload length as 4-byte big-endian unsigned int.
_HEADER = struct.Struct(">I")
#: Upper bound on one framed message (a result document is at most a
#: few MB; anything larger is a protocol error, not a result).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_MISS = object()


class StoreUnavailable(Exception):
    """The daemon could not be reached (connect, send or recv failed)."""


class StoreProtocolError(Exception):
    """The peer spoke something that is not the framed-JSON protocol."""


# ----------------------------------------------------------------------
# framing (shared by daemon and client)


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict | None:
    """One framed JSON document; ``None`` on a clean close between frames."""
    try:
        header = sock.recv(_HEADER.size)
    except ConnectionError:
        return None
    if not header:
        return None
    if len(header) < _HEADER.size:
        header += _recv_exactly(sock, _HEADER.size - len(header))
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise StoreProtocolError(f"frame of {length} bytes exceeds the limit")
    payload = _recv_exactly(sock, length)
    try:
        doc = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise StoreProtocolError(f"frame is not JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise StoreProtocolError("frame must be a JSON object")
    return doc


def write_frame(sock: socket.socket, doc: dict) -> None:
    """Serialise and send one framed JSON document."""
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


# ----------------------------------------------------------------------
# consistent hashing


def _ring_hash(text: str) -> int:
    """Stable 64-bit hash for ring points and keys (process-independent)."""
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each node contributes ``replicas`` points on a 64-bit ring; a key
    maps to the first point clockwise from its own hash.  Removing one
    node hands only its arcs to the survivors (~1/n of the key space),
    so rescaling the store tier keeps most shard assignments — and the
    results already stored under them — stable.
    """

    def __init__(self, nodes: Iterable[str], replicas: int = 64) -> None:
        self.nodes = tuple(nodes)
        if not self.nodes:
            raise ValueError("HashRing needs at least one node")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        points = []
        for node in self.nodes:
            for index in range(replicas):
                points.append((_ring_hash(f"{node}#{index}"), node))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [node for _, node in points]

    def node_for(self, key: str) -> str:
        """The node owning ``key`` (the job's content address)."""
        index = bisect_right(self._hashes, _ring_hash(key))
        if index == len(self._hashes):
            index = 0  # wrap: first point clockwise from the top
        return self._owners[index]


# ----------------------------------------------------------------------
# daemon


class StoreDaemon:
    """Thread-per-connection server over one :class:`JsonlQueryStore`.

    Torn-write recovery is inherited from the store: a daemon killed
    mid-append leaves a torn final line that the restart scan skips
    (its job recomputes and is re-put), and the next append starts on
    a fresh line.  ``put`` deduplicates by job hash, so recomputations
    racing across front-ends leave exactly one line per hash.
    """

    def __init__(
        self, directory: str | Path, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.store = JsonlQueryStore(directory)
        self.host = host
        self.port = port
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._conn_lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        #: Counters served by the ``stats`` op (and aggregated into the
        #: cluster's ``per_shard`` stats block).
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.dedups = 0
        self.connections = 0
        self.protocol_errors = 0
        self._counter_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def bind(self) -> "StoreDaemon":
        """Bind and listen; resolves an ephemeral ``port=0`` request."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self.host, self.port = listener.getsockname()[:2]
        self._listener = listener
        return self

    def start(self) -> "StoreDaemon":
        """Bind (if needed) and serve on a background accept thread."""
        if self._listener is None:
            self.bind()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="stored-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and drop every open connection.

        ``shutdown`` before ``close`` on every socket: a bare ``close``
        does not wake a thread blocked in ``accept``/``recv`` on Linux
        (the in-flight syscall keeps the kernel socket alive), which
        would leave the daemon silently serving after "stopping".
        """
        self._stopping.set()
        if self._listener is not None:
            for call in (
                lambda: self._listener.shutdown(socket.SHUT_RDWR),
                self._listener.close,
            ):
                try:
                    call()
                except OSError:
                    pass
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            for call in (
                lambda c=conn: c.shutdown(socket.SHUT_RDWR),
                conn.close,
            ):
                try:
                    call()
                except OSError:
                    pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    def __enter__(self) -> "StoreDaemon":
        """Context-manager support: started daemon in, stopped out."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop the daemon on context exit."""
        self.stop()

    # -- serving -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            with self._counter_lock:
                self.connections += 1
            with self._conn_lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="stored-conn", daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    request = read_frame(conn)
                except StoreProtocolError:
                    with self._counter_lock:
                        self.protocol_errors += 1
                    return  # drop the connection; the daemon lives on
                if request is None:
                    return
                write_frame(conn, self._dispatch(request))
        except OSError:
            pass  # peer vanished mid-exchange
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "get":
            job_id = request.get("job")
            if not isinstance(job_id, str):
                return {"ok": False, "error": "get needs a 'job' string"}
            value = self.store.get(job_id, _MISS)
            with self._counter_lock:
                self.gets += 1
                if value is not _MISS:
                    self.hits += 1
            if value is _MISS:
                return {"ok": True, "found": False}
            return {"ok": True, "found": True, "result": value}
        if op == "put":
            job_id = request.get("job")
            if not isinstance(job_id, str):
                return {"ok": False, "error": "put needs a 'job' string"}
            _value, stored = self.store.put_if_absent(
                job_id, request.get("result")
            )
            with self._counter_lock:
                self.puts += 1
                if not stored:
                    self.dedups += 1
            return {"ok": True, "stored": stored}
        if op == "stats":
            with self._counter_lock:
                return {
                    "ok": True,
                    "entries": len(self.store),
                    "gets": self.gets,
                    "hits": self.hits,
                    "puts": self.puts,
                    "dedups": self.dedups,
                    "connections": self.connections,
                    "protocol_errors": self.protocol_errors,
                    "directory": str(self.store.directory),
                }
        if op == "ping":
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


# ----------------------------------------------------------------------
# client


class StoreClient:
    """One blocking, thread-safe connection to one store daemon.

    Every request reconnects once on a stale or dropped socket before
    giving up with :class:`StoreUnavailable` — a daemon restart costs
    callers one failed round trip at most.
    """

    def __init__(
        self,
        address: str,
        *,
        timeout: float = 10.0,
        connect_timeout: float = 2.0,
    ) -> None:
        host, _, port_text = address.rpartition(":")
        try:
            self.host, self.port = host, int(port_text)
        except ValueError:
            raise ValueError(
                f"store address must be 'host:port', got {address!r}"
            ) from None
        if not self.host:
            raise ValueError(
                f"store address must be 'host:port', got {address!r}"
            )
        self.address = address
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def request(self, doc: dict) -> dict:
        """One framed round trip (raises :class:`StoreUnavailable`)."""
        with self._lock:
            for attempt in (1, 2):
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                    write_frame(self._sock, doc)
                    reply = read_frame(self._sock)
                    if reply is None:
                        raise ConnectionError("daemon closed the connection")
                    return reply
                except (OSError, StoreProtocolError) as exc:
                    self._close_locked()
                    if attempt == 2:
                        raise StoreUnavailable(
                            f"store daemon {self.address}: "
                            f"{type(exc).__name__}: {exc}"
                        ) from None
        raise AssertionError("unreachable")

    def _close_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Drop the connection (reopened by the next request)."""
        with self._lock:
            self._close_locked()


class RemoteStore:
    """Sharded store client with the :class:`JsonlQueryStore` interface.

    Plugs into :class:`~repro.serve.cache.ServeCache` as the backing
    store of a cluster front-end:

    * job ids are consistent-hashed over the shard addresses, so every
      front-end agrees which shard owns which result;
    * a shard outage **degrades**: ``get`` reports a miss (the service
      recomputes — correct, just slower) and ``put`` buffers the result
      (bounded) to flush once the shard answers again, so a bounced
      daemon loses no results and clients see no errors;
    * the daemon deduplicates on put, so outage-window recomputations
      never duplicate store lines.
    """

    persistent = True

    def __init__(
        self,
        addresses: Sequence[str],
        *,
        timeout: float = 10.0,
        connect_timeout: float = 2.0,
        max_buffered_puts: int = 256,
    ) -> None:
        if not addresses:
            raise ValueError("RemoteStore needs at least one shard address")
        self._clients = {
            address: StoreClient(
                address, timeout=timeout, connect_timeout=connect_timeout
            )
            for address in addresses
        }
        self._ring = HashRing(list(self._clients))
        self._max_buffered = max_buffered_puts
        self._buffer_lock = threading.Lock()
        #: job id -> normalised result awaiting a live shard.
        self._buffered: dict[str, Any] = {}
        #: Counters merged into ``GET /stats`` via ``ServeCache.stats``.
        self.remote_errors = 0
        self.buffered_puts = 0
        self.flushed_puts = 0
        self.dropped_puts = 0

    def shard_for(self, job_id: str) -> str:
        """The shard address owning one job hash (ring lookup)."""
        return self._ring.node_for(job_id)

    @property
    def addresses(self) -> tuple[str, ...]:
        """The configured shard addresses."""
        return tuple(self._clients)

    def get(self, job_id: str, default: Any = None) -> Any:
        """One shard lookup; an unreachable shard reports a miss."""
        self._flush_buffered()
        client = self._clients[self.shard_for(job_id)]
        try:
            reply = client.request({"op": "get", "job": job_id})
        except StoreUnavailable:
            self.remote_errors += 1
            return default
        if not reply.get("ok"):
            self.remote_errors += 1
            return default
        return reply["result"] if reply.get("found") else default

    def put(self, job_id: str, result: Any) -> Any:
        """Write one result through; buffer it when the shard is down."""
        normalised = jsonable(result)
        self._flush_buffered()
        if not self._send_put(job_id, normalised):
            with self._buffer_lock:
                if job_id not in self._buffered:
                    if len(self._buffered) >= self._max_buffered:
                        # Drop the oldest: recomputation rebuilds it.
                        self._buffered.pop(next(iter(self._buffered)))
                        self.dropped_puts += 1
                    self._buffered[job_id] = normalised
                    self.buffered_puts += 1
        return normalised

    def _send_put(self, job_id: str, normalised: Any) -> bool:
        client = self._clients[self.shard_for(job_id)]
        try:
            reply = client.request(
                {"op": "put", "job": job_id, "result": normalised}
            )
        except StoreUnavailable:
            self.remote_errors += 1
            return False
        return bool(reply.get("ok"))

    def _flush_buffered(self) -> None:
        """Retry buffered puts (called before every get/put)."""
        if not self._buffered:
            return
        with self._buffer_lock:
            pending = list(self._buffered.items())
        for job_id, normalised in pending:
            if self._send_put(job_id, normalised):
                with self._buffer_lock:
                    if self._buffered.pop(job_id, _MISS) is not _MISS:
                        self.flushed_puts += 1
            else:
                return  # shard still down; keep the rest buffered

    def shard_stats(self) -> dict[str, dict]:
        """Per-shard daemon counters (unreachable shards report so)."""
        stats: dict[str, dict] = {}
        for address, client in self._clients.items():
            try:
                reply = client.request({"op": "stats"})
            except StoreUnavailable:
                stats[address] = {"reachable": False}
                continue
            reply.pop("ok", None)
            stats[address] = {"reachable": True, **reply}
        return stats

    def stats(self) -> dict:
        """Client-side counters for ``GET /stats``."""
        with self._buffer_lock:
            buffered_now = len(self._buffered)
        return {
            "shards": len(self._clients),
            "remote_errors": self.remote_errors,
            "buffered_puts": self.buffered_puts,
            "flushed_puts": self.flushed_puts,
            "dropped_puts": self.dropped_puts,
            "buffered_now": buffered_now,
        }

    def close(self) -> None:
        """Drop every shard connection."""
        for client in self._clients.values():
            client.close()


# ----------------------------------------------------------------------
# standalone entry point


def run_stored(
    directory: str | Path, host: str = "127.0.0.1", port: int = 8178
) -> int:
    """Blocking entry point of ``python -m repro stored``."""
    import signal

    daemon = StoreDaemon(directory, host, port)
    try:
        daemon.bind()
    except OSError as exc:
        print(
            f"stored: cannot listen on {host}:{port}: {exc}", file=sys.stderr
        )
        return 2
    stopped = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, lambda *_: stopped.set())
        except ValueError:
            pass  # not the main thread (embedded use)
    daemon.start()
    print(
        f"repro-stored serving {daemon.store.directory} on "
        f"{daemon.host}:{daemon.port}",
        file=sys.stderr,
    )
    try:
        stopped.wait()
    except KeyboardInterrupt:
        pass
    print("repro-stored: shutting down", file=sys.stderr)
    daemon.stop()
    return 0
