"""Shared result tier: the store daemon and its sharded remote client.

One process per shard owns an offset-indexed
:class:`~repro.serve.cache.JsonlQueryStore` and serves it over a tiny
length-prefixed JSON protocol, so every front-end of a ``repro
cluster`` reads and writes the *same* content-addressed results —
a job computed by any front-end is a cache hit for all of them.

* :class:`StoreDaemon` — the server: thread-per-connection over one
  ``JsonlQueryStore``.  ``put`` is **deduplicating**: a job hash already
  present is not appended again (results are deterministic, so the
  second write can only be a byte-identical recomputation) — which is
  what makes "each distinct hash computed once" checkable by grepping
  the store file.  Restarts recover from torn final lines exactly like
  the campaign store (the scan skips them; the torn job recomputes).
* :class:`StoreClient` — one blocking connection to one daemon, with
  transparent reconnect-once per request.
* :class:`RemoteStore` — the object front-ends plug into
  :class:`~repro.serve.cache.ServeCache`: consistent-hashes each job id
  over the configured shard addresses (:class:`HashRing`), degrades a
  dead shard to a cache miss (``get`` -> recompute) instead of an
  error, and buffers failed ``put``\\ s to flush after the shard comes
  back — a store-daemon bounce costs recomputation, never availability.
* :class:`HashRing` — consistent hashing with virtual nodes: adding or
  removing one shard remaps only ~1/n of the key space, so a resharded
  cluster keeps most of its cache warm.

The protocol is JSON documents framed by a 4-byte big-endian length::

    {"op": "get",  "job": <hash>}              -> {"ok": true, "found": bool, "result": ...}
    {"op": "put",  "job": <hash>, "result": .} -> {"ok": true, "stored": bool, "replicated": bool}
    {"op": "stats"}                            -> {"ok": true, "entries": N, ...}
    {"op": "ping"}                             -> {"ok": true}
    {"op": "sync", "log_id": .., "offset": N}  -> {"ok": true, "records": [..], "offset": N', "more": bool}
    {"op": "stream", "log_id": .., "offset": N} -> header, then a feed of
        {"op": "rep", "job": .., "result": .., "offset": N'} frames; the
        subscriber answers each with {"op": "ack", "offset": N'}
    {"op": "promote"}                          -> {"ok": true, "generation": G}

**Replication** (PR 10): a daemon started with ``replica_of`` runs as a
*backup* — it tails the primary's append-only log over ``stream``,
resuming from its persisted ``(log_id, byte offset)`` position, applies
each record through the same deduplicating ``put_if_absent``, and acks.
The primary identifies its log by a per-directory ``log_id`` (uuid);
a mismatched or too-far offset resyncs from zero, which dedup makes
harmless.  With ``ack_mode="replicated"`` the primary delays its ``put``
reply until a replica has acked past the record (bounded by
``replication_timeout_s``; on timeout it degrades to a local-only ack
and counts an ``ack_downgrade`` rather than stalling clients).  A
``promote`` request — issued by the cluster supervisor when the primary
dies — flips a backup into a primary serving writes, bumping its
``failover_generation``.  Backups serve reads throughout, so a failover
window costs zero recomputation.

``python -m repro stored`` runs one daemon standalone;
``python -m repro cluster`` spawns and supervises one per shard
(primary + backup when ``--store-group`` asks for it).
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import struct
import sys
import threading
import time
import uuid
from bisect import bisect_right
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.campaigns.spec import jsonable
from repro.campaigns.store import FsyncPolicy
from repro.serve.cache import JsonlQueryStore

#: Frame header: payload length as 4-byte big-endian unsigned int.
_HEADER = struct.Struct(">I")
#: Upper bound on one framed message (a result document is at most a
#: few MB; anything larger is a protocol error, not a result).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_MISS = object()


class StoreUnavailable(Exception):
    """The daemon could not be reached (connect, send or recv failed)."""


class StoreProtocolError(Exception):
    """The peer spoke something that is not the framed-JSON protocol."""


# ----------------------------------------------------------------------
# framing (shared by daemon and client)


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict | None:
    """One framed JSON document; ``None`` on a clean close between frames."""
    try:
        header = sock.recv(_HEADER.size)
    except ConnectionError:
        return None
    if not header:
        return None
    if len(header) < _HEADER.size:
        header += _recv_exactly(sock, _HEADER.size - len(header))
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise StoreProtocolError(f"frame of {length} bytes exceeds the limit")
    payload = _recv_exactly(sock, length)
    try:
        doc = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise StoreProtocolError(f"frame is not JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise StoreProtocolError("frame must be a JSON object")
    return doc


def write_frame(sock: socket.socket, doc: dict) -> None:
    """Serialise and send one framed JSON document."""
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


# ----------------------------------------------------------------------
# consistent hashing


def _ring_hash(text: str) -> int:
    """Stable 64-bit hash for ring points and keys (process-independent)."""
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each node contributes ``replicas`` points on a 64-bit ring; a key
    maps to the first point clockwise from its own hash.  Removing one
    node hands only its arcs to the survivors (~1/n of the key space),
    so rescaling the store tier keeps most shard assignments — and the
    results already stored under them — stable.
    """

    def __init__(self, nodes: Iterable[str], replicas: int = 64) -> None:
        self.nodes = tuple(nodes)
        if not self.nodes:
            raise ValueError("HashRing needs at least one node")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        points = []
        for node in self.nodes:
            for index in range(replicas):
                points.append((_ring_hash(f"{node}#{index}"), node))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [node for _, node in points]

    def node_for(self, key: str) -> str:
        """The node owning ``key`` (the job's content address)."""
        index = bisect_right(self._hashes, _ring_hash(key))
        if index == len(self._hashes):
            index = 0  # wrap: first point clockwise from the top
        return self._owners[index]


# ----------------------------------------------------------------------
# daemon


class StoreDaemon:
    """Thread-per-connection server over one :class:`JsonlQueryStore`.

    Torn-write recovery is inherited from the store: a daemon killed
    mid-append leaves a torn final line that the restart scan skips
    (its job recomputes and is re-put), and the next append starts on
    a fresh line.  ``put`` deduplicates by job hash, so recomputations
    racing across front-ends leave exactly one line per hash.
    """

    def __init__(
        self,
        directory: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        replica_of: str | None = None,
        ack_mode: str = "local",
        fsync: FsyncPolicy | str | None = None,
        max_connections: int = 256,
        idle_timeout_s: float | None = 60.0,
        replication_timeout_s: float = 2.0,
    ) -> None:
        if ack_mode not in ("local", "replicated"):
            raise ValueError(
                f"ack_mode must be 'local' or 'replicated', got {ack_mode!r}"
            )
        if max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        self.store = JsonlQueryStore(directory, fsync=fsync)
        self.host = host
        self.port = port
        self.replica_of = replica_of
        self.role = "backup" if replica_of else "primary"
        self.ack_mode = ack_mode
        self.max_connections = max_connections
        self.idle_timeout_s = idle_timeout_s
        self.replication_timeout_s = replication_timeout_s
        self.failover_generation = 0
        #: Stable identity of this daemon's append-only log, persisted
        #: next to it: a replica resuming against a *different* log
        #: (wiped directory, role swap) detects the mismatch and
        #: resyncs from offset zero instead of silently diverging.
        self.log_id = self._load_log_id()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._replication_thread: threading.Thread | None = None
        self._rep_sock: socket.socket | None = None
        self._stopping = threading.Event()
        self._conn_lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        #: Serialises put-and-read-offset so a replicated ack waits on
        #: exactly the offset its record committed at.
        self._put_lock = threading.Lock()
        #: Signalled on every stored put: wakes stream senders.
        self._log_cond = threading.Condition()
        #: Attached replicas: id(conn) -> {"acked": offset, "peer": str}.
        self._replicas: dict[int, dict] = {}
        self._ack_cond = threading.Condition()
        #: Backup-side view of the replication link.
        self.replica_connected = False
        self.replica_offset = 0
        #: Counters served by the ``stats`` op (and aggregated into the
        #: cluster's ``per_shard`` stats block).
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.dedups = 0
        self.rejected_puts = 0
        self.connections = 0
        self.protocol_errors = 0
        self.shed_connections = 0
        self.idle_timeouts = 0
        self.ack_downgrades = 0
        self._counter_lock = threading.Lock()

    def _load_log_id(self) -> str:
        path = self.store.directory / "log_id"
        try:
            existing = path.read_text(encoding="utf-8").strip()
            if existing:
                return existing
        except OSError:
            pass
        fresh = uuid.uuid4().hex
        try:
            path.write_text(fresh + "\n", encoding="utf-8")
        except OSError:
            pass  # read-only filesystem: identity is per-process then
        return fresh

    # -- lifecycle -----------------------------------------------------

    def bind(self) -> "StoreDaemon":
        """Bind and listen; resolves an ephemeral ``port=0`` request."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self.host, self.port = listener.getsockname()[:2]
        self._listener = listener
        return self

    def start(self) -> "StoreDaemon":
        """Bind (if needed) and serve on a background accept thread."""
        if self._listener is None:
            self.bind()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="stored-accept", daemon=True
        )
        self._accept_thread.start()
        if self.role == "backup":
            self._replication_thread = threading.Thread(
                target=self._replication_loop,
                name="stored-replica",
                daemon=True,
            )
            self._replication_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and drop every open connection.

        ``shutdown`` before ``close`` on every socket: a bare ``close``
        does not wake a thread blocked in ``accept``/``recv`` on Linux
        (the in-flight syscall keeps the kernel socket alive), which
        would leave the daemon silently serving after "stopping".
        """
        self._stopping.set()
        with self._log_cond:
            self._log_cond.notify_all()  # release stream senders
        rep_sock = self._rep_sock
        if rep_sock is not None:
            for call in (
                lambda: rep_sock.shutdown(socket.SHUT_RDWR),
                rep_sock.close,
            ):
                try:
                    call()
                except OSError:
                    pass
        if self._listener is not None:
            for call in (
                lambda: self._listener.shutdown(socket.SHUT_RDWR),
                self._listener.close,
            ):
                try:
                    call()
                except OSError:
                    pass
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            for call in (
                lambda c=conn: c.shutdown(socket.SHUT_RDWR),
                conn.close,
            ):
                try:
                    call()
                except OSError:
                    pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    def __enter__(self) -> "StoreDaemon":
        """Context-manager support: started daemon in, stopped out."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop the daemon on context exit."""
        self.stop()

    # -- serving -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            with self._conn_lock:
                over_limit = len(self._conns) >= self.max_connections
                if not over_limit:
                    self._conns.add(conn)
            if over_limit:
                # Polite shed: one error frame, then close.  The cap
                # bounds the thread-per-connection model so a client
                # pileup cannot exhaust fds or threads.
                with self._counter_lock:
                    self.shed_connections += 1
                try:
                    write_frame(conn, {
                        "ok": False,
                        "error": "store daemon at connection capacity",
                        "shed": True,
                    })
                except OSError:
                    pass
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            with self._counter_lock:
                self.connections += 1
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="stored-conn", daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        if self.idle_timeout_s is not None:
            try:
                conn.settimeout(self.idle_timeout_s)
            except OSError:
                pass
        try:
            while True:
                try:
                    request = read_frame(conn)
                except socket.timeout:
                    # No frame within the idle window: reclaim the
                    # thread; a live client simply reconnects.
                    with self._counter_lock:
                        self.idle_timeouts += 1
                    return
                except StoreProtocolError:
                    with self._counter_lock:
                        self.protocol_errors += 1
                    return  # drop the connection; the daemon lives on
                if request is None:
                    return
                if request.get("op") == "stream":
                    # Takes over the connection: it becomes a
                    # replication feed instead of request/response.
                    self._handle_stream(conn, request)
                    return
                write_frame(conn, self._dispatch(request))
        except OSError:
            pass  # peer vanished mid-exchange
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "get":
            job_id = request.get("job")
            if not isinstance(job_id, str):
                return {"ok": False, "error": "get needs a 'job' string"}
            value = self.store.get(job_id, _MISS)
            with self._counter_lock:
                self.gets += 1
                if value is not _MISS:
                    self.hits += 1
            if value is _MISS:
                return {"ok": True, "found": False}
            return {"ok": True, "found": True, "result": value}
        if op == "put":
            job_id = request.get("job")
            if not isinstance(job_id, str):
                return {"ok": False, "error": "put needs a 'job' string"}
            if self.role != "primary":
                # A backup never takes writes: the front-end redirects
                # to the primary (or buffers until a promotion).
                with self._counter_lock:
                    self.rejected_puts += 1
                return {
                    "ok": False,
                    "error": "backup replica does not accept puts",
                    "not_primary": True,
                }
            with self._put_lock:
                _value, stored = self.store.put_if_absent(
                    job_id, request.get("result")
                )
                end_offset = self.store.end_offset
            with self._counter_lock:
                self.puts += 1
                if not stored:
                    self.dedups += 1
            replicated = False
            if stored:
                with self._log_cond:
                    self._log_cond.notify_all()
                if self.ack_mode == "replicated":
                    outcome = self._wait_replicated(end_offset)
                    replicated = bool(outcome)
                    if outcome is False:
                        with self._counter_lock:
                            self.ack_downgrades += 1
            return {"ok": True, "stored": stored, "replicated": replicated}
        if op == "sync":
            # One-shot catch-up batch: the poll-based sibling of
            # ``stream``, used by tools and tests.
            offset = self._resume_offset(request)
            records, next_offset, more = self._read_log(offset, limit=256)
            return {
                "ok": True,
                "log_id": self.log_id,
                "records": records,
                "offset": next_offset,
                "more": more,
            }
        if op == "promote":
            return self._promote(request)
        if op == "stats":
            with self._ack_cond:
                replicas = [dict(r) for r in self._replicas.values()]
            end_offset = self.store.end_offset
            min_acked = min(
                (r["acked"] for r in replicas), default=end_offset
            )
            with self._counter_lock:
                return {
                    "ok": True,
                    "entries": len(self.store),
                    "gets": self.gets,
                    "hits": self.hits,
                    "puts": self.puts,
                    "dedups": self.dedups,
                    "rejected_puts": self.rejected_puts,
                    "connections": self.connections,
                    "protocol_errors": self.protocol_errors,
                    "shed_connections": self.shed_connections,
                    "idle_timeouts": self.idle_timeouts,
                    "directory": str(self.store.directory),
                    "role": self.role,
                    "ack_mode": self.ack_mode,
                    "failover_generation": self.failover_generation,
                    "log_id": self.log_id,
                    "durability": self.store.durability_stats(),
                    "replication": {
                        "replicas": len(replicas),
                        "end_offset": end_offset,
                        "min_acked_offset": min_acked,
                        "lag_bytes": max(0, end_offset - min_acked),
                        "ack_downgrades": self.ack_downgrades,
                        "connected_to_primary": self.replica_connected,
                        "applied_offset": self.replica_offset,
                        "replica_of": self.replica_of,
                    },
                }
        if op == "ping":
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- replication: primary side -------------------------------------

    def _resume_offset(self, request: dict) -> int:
        """Where a subscriber may resume: its offset when it has been
        following *this* log and is not ahead of it, else zero."""
        offset = request.get("offset")
        if (
            request.get("log_id") == self.log_id
            and isinstance(offset, int)
            and 0 <= offset <= self.store.end_offset
        ):
            return offset
        return 0

    def _read_log(
        self, offset: int, limit: int
    ) -> tuple[list[dict], int, bool]:
        """Up to ``limit`` committed records from byte ``offset``.

        Returns ``(records, next_offset, more)``.  Reads the
        append-only file directly — committed bytes never change, so no
        lock is needed.  Corrupt or blank lines advance the offset
        without producing a record (the primary's own rescan
        quarantines them; a replica simply never sees them).
        """
        records: list[dict] = []
        try:
            handle = self.store.path.open("rb")
        except OSError:
            return records, offset, False
        with handle:
            handle.seek(offset)
            while len(records) < limit:
                raw = handle.readline()
                if not raw.endswith(b"\n"):
                    break  # torn tail or EOF: stop before it
                line = raw.strip()
                if line:
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        record = None
                    if isinstance(record, dict) and "job" in record:
                        records.append({
                            "job": record["job"],
                            "result": record.get("result"),
                            "offset": offset + len(raw),
                        })
                offset += len(raw)
            more = bool(handle.readline())
        return records, offset, more

    def _handle_stream(self, conn: socket.socket, request: dict) -> None:
        """Serve one replication subscriber until it disconnects.

        The connection thread becomes the ack reader; a dedicated
        sender thread pushes ``rep`` frames as the log grows.
        """
        if self.role != "primary":
            write_frame(conn, {
                "ok": False,
                "error": "only a primary streams its log",
                "not_primary": True,
            })
            return
        start = self._resume_offset(request)
        try:
            conn.settimeout(None)  # a healthy feed is often idle
        except OSError:
            pass
        peer = "?"
        try:
            peer = "%s:%s" % conn.getpeername()[:2]
        except OSError:
            pass
        write_frame(conn, {"ok": True, "log_id": self.log_id, "offset": start})
        key = id(conn)
        with self._ack_cond:
            self._replicas[key] = {"acked": start, "peer": peer}
        stop = threading.Event()
        sender = threading.Thread(
            target=self._stream_sender,
            args=(conn, start, stop),
            name="stored-stream",
            daemon=True,
        )
        sender.start()
        try:
            while True:
                frame = read_frame(conn)
                if frame is None:
                    return
                if frame.get("op") == "ack" and isinstance(
                    frame.get("offset"), int
                ):
                    with self._ack_cond:
                        self._replicas[key]["acked"] = frame["offset"]
                        self._ack_cond.notify_all()
        except (OSError, StoreProtocolError):
            pass
        finally:
            stop.set()
            with self._log_cond:
                self._log_cond.notify_all()  # wake the sender to exit
            with self._ack_cond:
                self._replicas.pop(key, None)
                self._ack_cond.notify_all()  # waiters re-check membership

    def _stream_sender(
        self, conn: socket.socket, offset: int, stop: threading.Event
    ) -> None:
        try:
            while not (stop.is_set() or self._stopping.is_set()):
                records, offset, _more = self._read_log(offset, limit=256)
                if not records:
                    with self._log_cond:
                        self._log_cond.wait(timeout=0.5)
                    continue
                for record in records:
                    write_frame(conn, {"op": "rep", **record})
        except OSError:
            pass  # subscriber went away; the ack reader cleans up

    def _wait_replicated(self, target_offset: int) -> bool | None:
        """Block until a replica acked past ``target_offset``.

        ``True`` — replicated; ``False`` — replica(s) attached but the
        timeout passed (caller downgrades the ack); ``None`` — no
        replica attached at all (a lone primary acks locally, otherwise
        a failover window would refuse every write).
        """
        deadline = time.monotonic() + self.replication_timeout_s
        with self._ack_cond:
            while True:
                if not self._replicas:
                    return None
                if any(
                    entry["acked"] >= target_offset
                    for entry in self._replicas.values()
                ):
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._ack_cond.wait(remaining)

    # -- replication: backup side --------------------------------------

    def _promote(self, request: dict) -> dict:
        """Flip this daemon into a write-accepting primary."""
        was = self.role
        if was != "primary":
            self.role = "primary"
            generation = request.get("generation")
            self.failover_generation = (
                generation
                if isinstance(generation, int)
                else self.failover_generation + 1
            )
            rep_sock = self._rep_sock
            if rep_sock is not None:
                for call in (
                    lambda: rep_sock.shutdown(socket.SHUT_RDWR),
                    rep_sock.close,
                ):
                    try:
                        call()
                    except OSError:
                        pass
        return {
            "ok": True,
            "role": self.role,
            "was": was,
            "generation": self.failover_generation,
        }

    @property
    def _replica_state_path(self) -> Path:
        return self.store.directory / "replica_state.json"

    def _load_replica_state(self) -> dict:
        try:
            state = json.loads(
                self._replica_state_path.read_text(encoding="utf-8")
            )
            if isinstance(state, dict):
                return state
        except (OSError, json.JSONDecodeError):
            pass
        return {}

    def _save_replica_state(self, log_id: str, offset: int) -> None:
        # tmp + rename: a crash mid-save leaves the previous state, and
        # resuming from a *stale* offset only re-applies records that
        # ``put_if_absent`` dedupes anyway.
        path = self._replica_state_path
        tmp = path.with_suffix(".tmp")
        try:
            tmp.write_text(
                json.dumps({"log_id": log_id, "offset": offset}) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, path)
        except OSError:
            pass

    def _replication_loop(self) -> None:
        """Backup main loop: subscribe, apply, ack; reconnect forever."""
        host, _, port_text = self.replica_of.rpartition(":")
        primary = (host, int(port_text))
        while not self._stopping.is_set() and self.role == "backup":
            sock = None
            try:
                sock = socket.create_connection(primary, timeout=2.0)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                sock.settimeout(None)
                self._rep_sock = sock
                state = self._load_replica_state()
                write_frame(sock, {
                    "op": "stream",
                    "log_id": state.get("log_id"),
                    "offset": state.get("offset", 0),
                })
                header = read_frame(sock)
                if not header or not header.get("ok"):
                    raise ConnectionError("primary refused the stream")
                log_id = header["log_id"]
                offset = header["offset"]
                self.replica_connected = True
                self.replica_offset = offset
                while not self._stopping.is_set() and self.role == "backup":
                    frame = read_frame(sock)
                    if frame is None:
                        break
                    if frame.get("op") != "rep":
                        continue
                    with self._put_lock:
                        self.store.put_if_absent(
                            frame["job"], frame.get("result")
                        )
                    offset = frame.get("offset", offset)
                    self.replica_offset = offset
                    self._save_replica_state(log_id, offset)
                    write_frame(sock, {"op": "ack", "offset": offset})
            except (OSError, StoreProtocolError, KeyError, ValueError):
                pass
            finally:
                self.replica_connected = False
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
                self._rep_sock = None
            if not self._stopping.is_set() and self.role == "backup":
                self._stopping.wait(0.2)


# ----------------------------------------------------------------------
# client


class StoreClient:
    """One blocking, thread-safe connection to one store daemon.

    Every request reconnects once on a stale or dropped socket before
    giving up with :class:`StoreUnavailable` — a daemon restart costs
    callers one failed round trip at most.
    """

    def __init__(
        self,
        address: str,
        *,
        timeout: float = 10.0,
        connect_timeout: float = 2.0,
    ) -> None:
        host, _, port_text = address.rpartition(":")
        try:
            self.host, self.port = host, int(port_text)
        except ValueError:
            raise ValueError(
                f"store address must be 'host:port', got {address!r}"
            ) from None
        if not self.host:
            raise ValueError(
                f"store address must be 'host:port', got {address!r}"
            )
        self.address = address
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def request(self, doc: dict) -> dict:
        """One framed round trip (raises :class:`StoreUnavailable`)."""
        with self._lock:
            for attempt in (1, 2):
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                    write_frame(self._sock, doc)
                    reply = read_frame(self._sock)
                    if reply is None:
                        raise ConnectionError("daemon closed the connection")
                    return reply
                except (OSError, StoreProtocolError) as exc:
                    self._close_locked()
                    if attempt == 2:
                        raise StoreUnavailable(
                            f"store daemon {self.address}: "
                            f"{type(exc).__name__}: {exc}"
                        ) from None
        raise AssertionError("unreachable")

    def _close_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Drop the connection (reopened by the next request)."""
        with self._lock:
            self._close_locked()


class RemoteStore:
    """Sharded store client with the :class:`JsonlQueryStore` interface.

    Plugs into :class:`~repro.serve.cache.ServeCache` as the backing
    store of a cluster front-end:

    * job ids are consistent-hashed over the shard *address groups*, so
      every front-end agrees which shard owns which result.  An address
      may be a replica group ``"primary,backup"``: the group is one
      ring node, and requests walk its members — on a dead or demoted
      member the client redirects to the sibling and remembers it
      (``failovers`` counter), so a promoted backup takes over without
      reconfiguration;
    * a whole-group outage **degrades**: ``get`` reports a miss (the
      service recomputes — correct, just slower) and ``put`` buffers
      the result (bounded) to flush once a member answers again, so a
      bounced daemon loses no results and clients see no errors;
    * the daemon deduplicates on put, so outage-window recomputations
      never duplicate store lines.
    """

    persistent = True

    def __init__(
        self,
        addresses: Sequence[str],
        *,
        timeout: float = 10.0,
        connect_timeout: float = 2.0,
        max_buffered_puts: int = 256,
    ) -> None:
        if not addresses:
            raise ValueError("RemoteStore needs at least one shard address")
        #: group string -> member clients, in configured order
        #: (primary first by convention).
        self._groups: dict[str, list[StoreClient]] = {}
        for group in addresses:
            members = [part for part in group.split(",") if part]
            if not members:
                raise ValueError(f"empty shard address group {group!r}")
            self._groups[group] = [
                StoreClient(
                    member, timeout=timeout, connect_timeout=connect_timeout
                )
                for member in members
            ]
        self._ring = HashRing(list(self._groups))
        #: group -> index of the member currently believed writable.
        self._active: dict[str, int] = {group: 0 for group in self._groups}
        self._max_buffered = max_buffered_puts
        self._buffer_lock = threading.Lock()
        #: job id -> normalised result awaiting a live shard.
        self._buffered: dict[str, Any] = {}
        #: Counters merged into ``GET /stats`` via ``ServeCache.stats``.
        self.remote_errors = 0
        self.buffered_puts = 0
        self.flushed_puts = 0
        self.dropped_puts = 0
        self.failovers = 0

    def shard_for(self, job_id: str) -> str:
        """The shard group owning one job hash (ring lookup)."""
        return self._ring.node_for(job_id)

    @property
    def addresses(self) -> tuple[str, ...]:
        """The configured shard address groups."""
        return tuple(self._groups)

    def _group_request(
        self, group: str, doc: dict, *, need_primary: bool
    ) -> dict | None:
        """One request against a group, walking members on failure.

        Starts at the member last known good, redirects on an
        unreachable member — and, for writes, on a ``not_primary``
        refusal — and pins the member that answered.  ``None`` when no
        member could serve the request.
        """
        members = self._groups[group]
        start = self._active.get(group, 0) % len(members)
        for step in range(len(members)):
            index = (start + step) % len(members)
            try:
                reply = members[index].request(doc)
            except StoreUnavailable:
                self.remote_errors += 1
                continue
            if need_primary and reply.get("not_primary"):
                continue  # a backup: try the sibling for the write
            if index != start:
                self._active[group] = index
                self.failovers += 1
            return reply
        return None

    def get(self, job_id: str, default: Any = None) -> Any:
        """One shard lookup; an unreachable group reports a miss.

        Reads are served by *any* member — a backup replica answers
        during a failover window, so a killed primary costs zero
        recomputation for already-committed results.
        """
        self._flush_buffered()
        reply = self._group_request(
            self.shard_for(job_id),
            {"op": "get", "job": job_id},
            need_primary=False,
        )
        if reply is None:
            return default
        if not reply.get("ok"):
            self.remote_errors += 1
            return default
        return reply["result"] if reply.get("found") else default

    def put(self, job_id: str, result: Any) -> Any:
        """Write one result through; buffer it when the shard is down."""
        normalised = jsonable(result)
        self._flush_buffered()
        if not self._send_put(job_id, normalised):
            with self._buffer_lock:
                if job_id not in self._buffered:
                    if len(self._buffered) >= self._max_buffered:
                        # Drop the oldest: recomputation rebuilds it.
                        self._buffered.pop(next(iter(self._buffered)))
                        self.dropped_puts += 1
                    self._buffered[job_id] = normalised
                    self.buffered_puts += 1
        return normalised

    def _send_put(self, job_id: str, normalised: Any) -> bool:
        reply = self._group_request(
            self.shard_for(job_id),
            {"op": "put", "job": job_id, "result": normalised},
            need_primary=True,
        )
        return bool(reply and reply.get("ok"))

    def _flush_buffered(self) -> None:
        """Retry buffered puts (called before every get/put)."""
        if not self._buffered:
            return
        with self._buffer_lock:
            pending = list(self._buffered.items())
        for job_id, normalised in pending:
            if self._send_put(job_id, normalised):
                with self._buffer_lock:
                    if self._buffered.pop(job_id, _MISS) is not _MISS:
                        self.flushed_puts += 1
            else:
                return  # shard still down; keep the rest buffered

    def shard_stats(self) -> dict[str, dict]:
        """Per-member daemon counters (unreachable members report so)."""
        stats: dict[str, dict] = {}
        for members in self._groups.values():
            for client in members:
                try:
                    reply = client.request({"op": "stats"})
                except StoreUnavailable:
                    stats[client.address] = {"reachable": False}
                    continue
                reply.pop("ok", None)
                stats[client.address] = {"reachable": True, **reply}
        return stats

    def stats(self) -> dict:
        """Client-side counters for ``GET /stats``."""
        with self._buffer_lock:
            buffered_now = len(self._buffered)
        return {
            "shards": len(self._groups),
            "remote_errors": self.remote_errors,
            "buffered_puts": self.buffered_puts,
            "flushed_puts": self.flushed_puts,
            "dropped_puts": self.dropped_puts,
            "buffered_now": buffered_now,
            "failovers": self.failovers,
        }

    def close(self) -> None:
        """Drop every member connection."""
        for members in self._groups.values():
            for client in members:
                client.close()


# ----------------------------------------------------------------------
# standalone entry point


def run_stored(
    directory: str | Path,
    host: str = "127.0.0.1",
    port: int = 8178,
    *,
    replica_of: str | None = None,
    ack_mode: str = "local",
    fsync: str = "none",
    max_connections: int = 256,
    idle_timeout_s: float | None = 60.0,
) -> int:
    """Blocking entry point of ``python -m repro stored``."""
    import signal

    daemon = StoreDaemon(
        directory,
        host,
        port,
        replica_of=replica_of,
        ack_mode=ack_mode,
        fsync=fsync,
        max_connections=max_connections,
        idle_timeout_s=idle_timeout_s,
    )
    try:
        daemon.bind()
    except OSError as exc:
        print(
            f"stored: cannot listen on {host}:{port}: {exc}", file=sys.stderr
        )
        return 2
    stopped = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, lambda *_: stopped.set())
        except ValueError:
            pass  # not the main thread (embedded use)
    daemon.start()
    role = daemon.role
    print(
        f"repro-stored ({role}) serving {daemon.store.directory} on "
        f"{daemon.host}:{daemon.port}",
        file=sys.stderr,
    )
    try:
        stopped.wait()
    except KeyboardInterrupt:
        pass
    print("repro-stored: shutting down", file=sys.stderr)
    daemon.stop()
    return 0
