"""Minimal HTTP/1.1 framing over asyncio streams.

The serving layer deliberately avoids web frameworks (the repository
bakes in no third-party server dependency), so this module hand-rolls
the small slice of HTTP the JSON API needs on top of
``asyncio.StreamReader`` / ``StreamWriter``:

* :func:`read_request` — parse one request (request line, headers,
  ``Content-Length``-delimited body) with hard size limits, returning
  ``None`` on a clean end-of-stream so connection loops terminate;
* :func:`render_response` — serialise one JSON (or raw-bytes) response
  with correct ``Content-Length`` and keep-alive headers;
* :class:`HttpError` — the one exception handlers raise to produce a
  non-200 JSON error body.

Connections are keep-alive by default (HTTP/1.1 semantics): the server
keeps reading requests until the peer closes or sends
``Connection: close``.  Anything beyond that — chunked encoding,
multipart, TLS — is out of scope; the service speaks plain JSON over
plain sockets.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

#: Upper bound on the request line + headers, in bytes.
MAX_HEAD_BYTES = 32 * 1024
#: Upper bound on a request body, in bytes (generous for flow-set docs).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Reason phrases for the statuses the service actually emits.
STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _reject_constant(name: str):
    """Refuse the non-JSON float literals Python's decoder tolerates."""
    raise ValueError(f"{name} is not valid JSON")


class HttpError(Exception):
    """A request failure that maps to one JSON error response.

    ``retry_after`` (seconds) adds a ``Retry-After`` header — the
    backpressure contract of 503 responses while the worker pool
    rebuilds: clients should wait that long before retrying.
    """

    def __init__(
        self, status: int, message: str, *, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after

    def body(self) -> dict:
        """The JSON error payload sent to the client."""
        payload = {"error": self.message, "status": self.status}
        if self.retry_after is not None:
            payload["retry_after"] = self.retry_after
        return payload

    def headers(self) -> dict[str, str]:
        """Extra response headers this error carries."""
        if self.retry_after is None:
            return {}
        # Retry-After is integer delta-seconds; round up so 0.2s never
        # becomes an immediate-retry "0".
        return {"Retry-After": str(max(1, math.ceil(self.retry_after)))}


@dataclass
class HttpRequest:
    """One parsed request: method, split path, headers and raw body."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the connection survives this exchange (HTTP/1.1 default)."""
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict:
        """The body decoded as a strict JSON object (400 on anything else).

        ``NaN``/``Infinity`` literals are rejected here even though
        Python's decoder accepts them: they cannot round-trip through
        the canonical JSON the job hash is built on, so letting them in
        would turn a client mistake into a server error downstream.
        """
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            data = json.loads(self.body, parse_constant=_reject_constant)
        except (json.JSONDecodeError, ValueError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(data, dict):
            raise HttpError(400, "request body must be a JSON object")
        return data


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_head: int = MAX_HEAD_BYTES,
    max_body: int = MAX_BODY_BYTES,
) -> HttpRequest | None:
    """Read and parse one request; ``None`` when the peer closed cleanly.

    Raises :class:`HttpError` on malformed framing (bad request line,
    unparsable ``Content-Length``) and on size-limit violations, so the
    connection handler can answer with a JSON error before closing.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, f"request head exceeds {max_head} bytes") from None
    if len(head) > max_head:
        raise HttpError(413, f"request head exceeds {max_head} bytes")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        # Without this rejection a chunked body would be misread as the
        # next request on the keep-alive connection.
        raise HttpError(
            501, "Transfer-Encoding is not supported; send Content-Length"
        )
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length: {length_text!r}") from None
    if length < 0:
        raise HttpError(400, f"bad Content-Length: {length_text!r}")
    if length > max_body:
        raise HttpError(413, f"request body exceeds {max_body} bytes")
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        # Peer closed mid-body; answer 400 (best effort) and hang up.
        raise HttpError(400, "truncated request body") from None

    return HttpRequest(
        method=method.upper(),
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    payload: dict | list | bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Serialise one response (JSON payloads are encoded here)."""
    if isinstance(payload, bytes):
        body = payload
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    phrase = STATUS_PHRASES.get(status, "Unknown")
    extras = "".join(
        f"{name}: {value}\r\n"
        for name, value in (extra_headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extras}"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body
