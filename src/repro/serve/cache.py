"""Bounded result caching for the serving layer.

Two pieces, composed by :class:`~repro.serve.service.AnalysisService`:

* :class:`JsonlQueryStore` — the persistent tier (``--run-dir``).  Same
  append-only ``{"job": <hash>, "result": ...}`` JSONL format as the
  campaign :class:`~repro.campaigns.store.ResultStore` (files written
  by either are interchangeable), but it keeps only a *byte-offset
  index* in memory and reads results back from disk on demand — a
  long-running server accumulating millions of distinct query results
  holds ~100 bytes per entry, not the results themselves.
* :class:`ServeCache` — a bounded in-memory LRU in front of an optional
  store.  Results are keyed by the campaign engine's sha256 content
  address (:func:`repro.campaigns.spec.job_hash`).

Lookup order on a request: LRU (fast path, counted as ``hits``), then
the backing store (``store_hits``; the entry is promoted into the LRU),
then a miss (the service computes the job and calls :meth:`put`).  The
counters are exposed verbatim at ``GET /stats`` and asserted by the
end-to-end tests.  Both classes are thread-safe: the service calls
``put`` from executor threads to keep disk writes off the event loop.
"""

from __future__ import annotations

import json
import threading
import warnings
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro.campaigns.spec import jsonable
from repro.campaigns.store import (
    CORRUPT_SUFFIX,
    FsyncPolicy,
    MemoryStore,
    StoreCorruptionWarning,
    StoreWriteWarning,
    iter_result_records,
    quarantine_record,
    result_line,
    tail_needs_newline,
)

_MISS = object()


class JsonlQueryStore:
    """Append-only JSONL store holding only an offset index in memory.

    Implements the subset of the :class:`MemoryStore` interface the
    serving cache needs (``get`` / ``put`` / ``in`` / ``len``).  A torn
    final line (killed server) is skipped on reload, exactly like the
    campaign store; its job simply recomputes.  A *corrupt* record
    (CRC mismatch, unparseable complete line) is quarantined into a
    ``.corrupt`` sidecar and dropped from the index, so only the
    damaged hashes recompute.
    """

    persistent = True

    def __init__(
        self,
        directory: str | Path,
        fsync: FsyncPolicy | str | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / "results.jsonl"
        self.fsync = FsyncPolicy.coerce(fsync)
        self.read_only = False
        self.write_errors = 0
        self.corrupt_records = 0
        self._lock = threading.Lock()
        #: job hash -> byte offset of its line in ``path``.
        self._index: dict[str, int] = {}
        #: job hash -> result, for entries accepted while read-only
        #: (disk append failed) — keeps the server answering even when
        #: the disk under it is full.
        self._overlay: dict[str, Any] = {}
        #: True when the file ends in a torn line (killed mid-write):
        #: the next append must start on a fresh line or it would merge
        #: with the torn bytes and be lost on the following reload.
        self._needs_newline = False
        self._scan()

    def _scan(self) -> None:
        """Build the offset index from the existing file, if any."""
        for offset, record in iter_result_records(self.path, self._quarantine):
            self._index[record["job"]] = offset
        self._needs_newline = tail_needs_newline(self.path)

    def _quarantine(self, offset: int, raw: bytes, reason: str) -> None:
        self.corrupt_records += 1
        if quarantine_record(self.path, offset, raw, reason):
            warnings.warn(
                f"{self.path}: corrupt record at offset {offset} ({reason}); "
                f"quarantined to {self.path.name}{CORRUPT_SUFFIX}",
                StoreCorruptionWarning,
                stacklevel=2,
            )

    @property
    def end_offset(self) -> int:
        """Current byte length of the store file (the replication log
        position: a replica caught up to ``end_offset`` has every
        committed record)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def _append_locked(self, job_id: str, line: str) -> None:
        """Append one pre-rendered line while holding ``_lock``.

        On ``OSError`` (``ENOSPC``, revoked permissions, dying disk)
        the store degrades to read-only instead of crashing the server:
        later results land in an in-memory overlay and the structured
        warning + ``/stats`` counters make the degradation observable.
        """
        try:
            with self.path.open("a", encoding="utf-8") as handle:
                offset = handle.tell()
                if self._needs_newline:
                    handle.write("\n")
                    offset += 1
                    self._needs_newline = False
                handle.write(line + "\n")
                handle.flush()
                self.fsync.sync(handle.fileno())
        except OSError as exc:
            self.read_only = True
            self.write_errors += 1
            warnings.warn(
                f"{self.path}: append failed ({exc}); store degraded to "
                "read-only — new results held in memory only",
                StoreWriteWarning,
                stacklevel=3,
            )
        else:
            self._index[job_id] = offset

    def get(self, job_id: str, default: Any = None) -> Any:
        """One stored result, read back from disk by offset."""
        with self._lock:
            offset = self._index.get(job_id)
            if offset is None:
                if job_id in self._overlay:
                    return self._overlay[job_id]
                return default
            with self.path.open("rb") as handle:
                handle.seek(offset)
                line = handle.readline()
        record = json.loads(line)
        return record.get("result")

    def put(self, job_id: str, result: Any) -> Any:
        """Append one result line; returns the normalised result."""
        normalised = jsonable(result)
        line = result_line(job_id, normalised)
        with self._lock:
            if self.read_only:
                self._overlay[job_id] = normalised
            else:
                self._append_locked(job_id, line)
                if self.read_only:  # the append just failed
                    self._overlay[job_id] = normalised
        return normalised

    def put_if_absent(self, job_id: str, result: Any) -> tuple[Any, bool]:
        """Append only when the hash is new; ``(result, stored)``.

        The dedupe the store daemon relies on: jobs are deterministic,
        so a second ``put`` of the same content address can only be a
        recomputation of the same bytes — skipping the append keeps the
        store at exactly one line per distinct hash even when several
        front-ends race on the same job.
        """
        with self._lock:
            if job_id not in self._index and job_id not in self._overlay:
                normalised = jsonable(result)
                if self.read_only:
                    self._overlay[job_id] = normalised
                    return normalised, True
                line = result_line(job_id, normalised)
                self._append_locked(job_id, line)
                if self.read_only:  # the append just failed
                    self._overlay[job_id] = normalised
                return normalised, True
        return self.get(job_id), False

    def durability_stats(self) -> dict:
        """Store-level durability counters for ``GET /stats``."""
        with self._lock:
            return {
                "fsync": self.fsync.mode,
                "read_only": self.read_only,
                "write_errors": self.write_errors,
                "corrupt_records": self.corrupt_records,
                "end_offset": self.end_offset,
            }

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._index or job_id in self._overlay

    def __len__(self) -> int:
        with self._lock:
            return len(self._index) + len(self._overlay)


class ServeCache:
    """Bounded, thread-safe LRU over an optional write-through store."""

    def __init__(
        self,
        maxsize: int = 1024,
        store: MemoryStore | JsonlQueryStore | None = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.store = store
        self._lock = threading.Lock()
        self._lru: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.store_hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, job_id: str) -> tuple[bool, Any]:
        """Look one content address up; returns ``(found, result)``."""
        with self._lock:
            value = self._lru.get(job_id, _MISS)
            if value is not _MISS:
                self._lru.move_to_end(job_id)
                self.hits += 1
                return True, value
        if self.store is not None:
            value = self.store.get(job_id, _MISS)
            if value is not _MISS:
                with self._lock:
                    self.store_hits += 1
                    self._admit(job_id, value)
                return True, value
        with self._lock:
            self.misses += 1
        return False, None

    def put(self, job_id: str, result: Any) -> Any:
        """Cache one computed result (written through to the store).

        Results are JSON-normalised either way, so a response served
        cold, from the LRU, or from a replayed store line is the same
        object.
        """
        if self.store is not None:
            result = self.store.put(job_id, result)
        else:
            result = jsonable(result)
        with self._lock:
            self._admit(job_id, result)
        return result

    def _admit(self, job_id: str, value: Any) -> None:
        self._lru[job_id] = value
        self._lru.move_to_end(job_id)
        while len(self._lru) > self.maxsize:
            self._lru.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._lru

    def stats(self) -> dict:
        """Counter snapshot for ``GET /stats``."""
        with self._lock:
            return {
                "size": len(self._lru),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "store_hits": self.store_hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "persistent": bool(
                    getattr(self.store, "persistent", False)
                ),
            }
