"""Request normalisation and job executors for the serving layer.

The service never computes anything itself: every ``POST /analyze`` and
``POST /sizing`` request is normalised into the parameters of a
content-addressed job (the exact machinery campaigns run on —
:func:`repro.campaigns.spec.job_hash` over canonical JSON), so

* two requests meaning the same computation hash identically no matter
  how their JSON was spelled (key order, tuples vs lists), which is
  what lets the service coalesce in-flight duplicates and answer
  repeats from the LRU/result-store cache;
* the executors registered here (``serve_analyze``, ``serve_sizing``)
  are ordinary registry job kinds, runnable by any scheduler worker
  process — the server's process pool resolves them by name exactly
  like campaign jobs.

Validation happens in the ``*_params`` builders at request time (they
raise ``ValueError`` with a client-addressable message, mapped to HTTP
400), so by the time a job reaches a worker its inputs are known-good.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.campaigns.registry import job_executor
from repro.core.analyses import (
    ALL_COMPARISON,
    ANALYSES_BY_NAME,
    analysis_by_name,
)
from repro.core.engine import analyze, compare
from repro.core.sizing import sizing_summary
from repro.flows.flowset import FlowSet
from repro.io import flowset_from_dict, result_to_dict

#: ``analysis`` selector values accepted by ``POST /analyze``.
ANALYZE_CHOICES = (*sorted(ANALYSES_BY_NAME), "all")


def _positive_int(data: Mapping[str, Any], key: str) -> int | None:
    value = data.get(key)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ValueError(f"{key!r} must be a positive integer, got {value!r}")
    return value


def _flowset_doc(data: Mapping[str, Any]) -> dict:
    """Validate and return the request's embedded flow-set document."""
    doc = data.get("flowset")
    if not isinstance(doc, dict):
        raise ValueError(
            "request needs a 'flowset' object in repro-flowset JSON format "
            "(see repro.io)"
        )
    try:
        flowset_from_dict(doc)  # full structural validation, result unused
    except (ValueError, KeyError, TypeError, AttributeError) as exc:
        # AttributeError covers structurally wrong shapes (e.g. a string
        # where the topology object belongs) — still a client error.
        raise ValueError(f"invalid flowset document: {exc}") from None
    return doc


def _materialise(params: Mapping[str, Any]) -> FlowSet:
    """Worker side: rebuild the flow set, applying any buffer override."""
    flowset = flowset_from_dict(params["flowset"])
    buf = params.get("buf")
    if buf is not None:
        flowset = flowset.on_platform(flowset.platform.with_buffers(buf))
    return flowset


def analyze_params(data: Mapping[str, Any]) -> dict:
    """Normalise one ``POST /analyze`` body into ``serve_analyze`` params.

    Accepted fields: ``flowset`` (required, a repro-flowset document),
    ``analysis`` (one of :data:`ANALYZE_CHOICES`, default ``"ibn"``) and
    ``buf`` (optional per-VC buffer-depth override).
    """
    analysis = data.get("analysis", "ibn")
    if analysis not in ANALYZE_CHOICES:
        raise ValueError(
            f"unknown analysis {analysis!r}; "
            f"choose from {', '.join(ANALYZE_CHOICES)}"
        )
    return {
        "flowset": _flowset_doc(data),
        "analysis": analysis,
        "buf": _positive_int(data, "buf"),
    }


def sizing_params(data: Mapping[str, Any]) -> dict:
    """Normalise one ``POST /sizing`` body into ``serve_sizing`` params.

    Accepted fields: ``flowset`` (required), ``buf`` (optional override
    applied before sizing) and ``max_depth`` (search ceiling, default
    1024).
    """
    return {
        "flowset": _flowset_doc(data),
        "buf": _positive_int(data, "buf"),
        "max_depth": _positive_int(data, "max_depth") or 1024,
    }


@job_executor("serve_analyze")
def run_analyze(params: Mapping[str, Any]) -> dict:
    """Execute one analyze job: bounds + verdict for one flow set.

    Returns the response body: ``results`` maps each analysis display
    label (``IBN2``, ``XLWX``...) to a ``repro-result/1`` document, and
    ``schedulable`` is the verdict of the tightest *safe* analysis run
    (IBN when ``analysis == "all"``).
    """
    flowset = _materialise(params)
    name = params["analysis"]
    if name == "all":
        results = compare(
            flowset, [analysis_by_name(n) for n in ALL_COMPARISON]
        )
        verdict = results[f"IBN{flowset.platform.buf}"]
    else:
        verdict = analyze(
            flowset, analysis_by_name(name), stop_at_deadline=False
        )
        results = {verdict.analysis_name: verdict}
    return {
        "analysis": verdict.analysis_name,
        "schedulable": verdict.schedulable,
        "results": {
            label: result_to_dict(result) for label, result in results.items()
        },
    }


@job_executor("serve_sizing")
def run_sizing(params: Mapping[str, Any]) -> dict:
    """Execute one sizing job: buffer-depth and payload headroom."""
    flowset = _materialise(params)
    return sizing_summary(flowset, max_depth=params["max_depth"])
