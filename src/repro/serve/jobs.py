"""Request normalisation and job executors for the serving layer.

The service never computes anything itself: every ``POST /analyze`` and
``POST /sizing`` request is normalised into the parameters of a
content-addressed job (the exact machinery campaigns run on —
:func:`repro.campaigns.spec.job_hash` over canonical JSON), so

* two requests meaning the same computation hash identically no matter
  how their JSON was spelled (key order, tuples vs lists), which is
  what lets the service coalesce in-flight duplicates and answer
  repeats from the LRU/result-store cache;
* the executors registered here (``serve_analyze``, ``serve_sizing``,
  ``serve_allocate``) are ordinary registry job kinds, runnable by any scheduler worker
  process — the server's process pool resolves them by name exactly
  like campaign jobs.

Validation happens in the ``*_params`` builders at request time (they
raise ``ValueError`` with a client-addressable message, mapped to HTTP
400), so by the time a job reaches a worker its inputs are known-good.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping, Sequence

from repro.campaigns.registry import block_executor, job_executor
from repro.campaigns.spec import canonical_json
from repro.core.analyses import (
    ALL_COMPARISON,
    ANALYSES_BY_NAME,
    analysis_by_name,
)
from repro.core.engine import analyze, compare
from repro.core.sizing import sizing_summary
from repro.flows.flowset import FlowSet
from repro.io import flowset_from_dict, platform_from_dict, result_to_dict
from repro.noc.platform import NoCPlatform

#: ``analysis`` selector values accepted by ``POST /analyze``.
ANALYZE_CHOICES = (*sorted(ANALYSES_BY_NAME), "all")

#: Worker-local platform/topology caches, keyed by the canonical JSON
#: of the document's platform section (respectively the mesh size).
#: Buffer-depth variants of one mesh share a single Mesh2D, and all
#: cached platforms share one routing instance — whose per-topology
#: route memo therefore carries across requests, the analogue of the
#: campaign workers' :func:`repro.campaigns.scheduler.worker_platform`.
#: Bounded FIFO so adversarial topology churn cannot grow worker
#: memory without limit.
_PLATFORMS: dict[str, NoCPlatform] = {}
_MESHES: dict[tuple, Any] = {}
_PLATFORM_CACHE_LIMIT = 64
_SHARED_ROUTING = None
#: ``workers=0`` servers run these executors on concurrent threads, so
#: cache fills and evictions must be serialised (worker processes are
#: single-threaded — the lock is uncontended there).
_CACHE_LOCK = threading.Lock()


def _cached_platform(platform_data: Mapping[str, Any]) -> NoCPlatform:
    global _SHARED_ROUTING
    key = canonical_json(platform_data)
    platform = _PLATFORMS.get(key)
    if platform is not None:
        return platform
    with _CACHE_LOCK:
        platform = _PLATFORMS.get(key)
        if platform is None:
            if _SHARED_ROUTING is None:
                from repro.noc.routing import XYRouting

                _SHARED_ROUTING = XYRouting()
            topology_data = platform_data.get("topology") or {}
            mesh_key = (topology_data.get("cols"), topology_data.get("rows"))
            platform = platform_from_dict(
                dict(platform_data),
                topology=_MESHES.get(mesh_key),
                routing=_SHARED_ROUTING,
            )
            _MESHES.setdefault(mesh_key, platform.topology)
            while len(_PLATFORMS) >= _PLATFORM_CACHE_LIMIT:
                _PLATFORMS.pop(next(iter(_PLATFORMS)))
            while len(_MESHES) > _PLATFORM_CACHE_LIMIT:
                _MESHES.pop(next(iter(_MESHES)))
            _PLATFORMS[key] = platform
    return platform


def _positive_int(data: Mapping[str, Any], key: str) -> int | None:
    value = data.get(key)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ValueError(f"{key!r} must be a positive integer, got {value!r}")
    return value


def _flowset_doc(data: Mapping[str, Any]) -> dict:
    """Validate and return the request's embedded flow-set document."""
    doc = data.get("flowset")
    if not isinstance(doc, dict):
        raise ValueError(
            "request needs a 'flowset' object in repro-flowset JSON format "
            "(see repro.io)"
        )
    try:
        flowset_from_dict(doc)  # full structural validation, result unused
    except (ValueError, KeyError, TypeError, AttributeError) as exc:
        # AttributeError covers structurally wrong shapes (e.g. a string
        # where the topology object belongs) — still a client error.
        raise ValueError(f"invalid flowset document: {exc}") from None
    return doc


def _materialise(params: Mapping[str, Any]) -> FlowSet:
    """Worker side: rebuild the flow set, applying any buffer override.

    The platform comes from the worker-local cache, so repeat
    topologies reuse one Mesh2D and its memoized route table instead of
    recomputing every route per request.
    """
    doc = params["flowset"]
    platform = _cached_platform(doc["platform"])
    buf = params.get("buf")
    if buf is not None:
        platform = _cached_platform({**doc["platform"], "buf": buf,
                                     "buf_map": None})
    return flowset_from_dict(doc, platform=platform)


def analyze_params(data: Mapping[str, Any]) -> dict:
    """Normalise one ``POST /analyze`` body into ``serve_analyze`` params.

    Accepted fields: ``flowset`` (required, a repro-flowset document),
    ``analysis`` (one of :data:`ANALYZE_CHOICES`, default ``"ibn"``) and
    ``buf`` (optional per-VC buffer-depth override).
    """
    analysis = data.get("analysis", "ibn")
    if analysis not in ANALYZE_CHOICES:
        raise ValueError(
            f"unknown analysis {analysis!r}; "
            f"choose from {', '.join(ANALYZE_CHOICES)}"
        )
    return {
        "flowset": _flowset_doc(data),
        "analysis": analysis,
        "buf": _positive_int(data, "buf"),
    }


def allocate_params(data: Mapping[str, Any]) -> dict:
    """Normalise one ``POST /allocate`` body into ``serve_allocate`` params.

    Accepted fields: ``flowset`` (required), ``analysis`` (any selector
    name, default ``"ibn"``), ``lo``/``hi`` (depth range, defaults 1/8),
    ``budget`` (total-depth cap), ``cost_model`` (``{"kind": "depth" |
    "shallowness", "target": ..., "weights": {...}}``) and
    ``max_evaluations``.  The cost model is stored in canonical form so
    two spellings of one spec hash — and therefore cache, coalesce and
    shard — identically.
    """
    from repro.core.allocate import cost_model_from_dict

    doc = _flowset_doc(data)
    analysis = data.get("analysis", "ibn")
    if analysis not in ANALYSES_BY_NAME:
        raise ValueError(
            f"unknown analysis {analysis!r}; "
            f"choose from {', '.join(sorted(ANALYSES_BY_NAME))}"
        )
    lo = _positive_int(data, "lo") or 1
    hi = _positive_int(data, "hi") or 8
    if lo > hi:
        raise ValueError(f"need lo <= hi, got depth range [{lo}, {hi}]")
    num_routers = _cached_platform(doc["platform"]).topology.num_routers
    model = cost_model_from_dict(
        data.get("cost_model"), hi=hi, num_routers=num_routers
    )
    return {
        "flowset": doc,
        "analysis": analysis,
        "lo": lo,
        "hi": hi,
        "budget": _positive_int(data, "budget"),
        "cost_model": model.to_dict(),
        "max_evaluations": _positive_int(data, "max_evaluations"),
    }


def sizing_params(data: Mapping[str, Any]) -> dict:
    """Normalise one ``POST /sizing`` body into ``serve_sizing`` params.

    Accepted fields: ``flowset`` (required), ``buf`` (optional override
    applied before sizing) and ``max_depth`` (search ceiling, default
    1024).
    """
    return {
        "flowset": _flowset_doc(data),
        "buf": _positive_int(data, "buf"),
        "max_depth": _positive_int(data, "max_depth") or 1024,
    }


@job_executor("serve_analyze")
def run_analyze(params: Mapping[str, Any]) -> dict:
    """Execute one analyze job: bounds + verdict for one flow set.

    Returns the response body: ``results`` maps each analysis display
    label (``IBN2``, ``XLWX``...) to a ``repro-result/1`` document, and
    ``schedulable`` is the verdict of the tightest *safe* analysis run
    (IBN when ``analysis == "all"``).
    """
    flowset = _materialise(params)
    name = params["analysis"]
    if name == "all":
        results = compare(
            flowset, [analysis_by_name(n) for n in ALL_COMPARISON]
        )
        verdict = results[f"IBN{flowset.platform.buf}"]
    else:
        verdict = analyze(
            flowset, analysis_by_name(name), stop_at_deadline=False
        )
        results = {verdict.analysis_name: verdict}
    return {
        "analysis": verdict.analysis_name,
        "schedulable": verdict.schedulable,
        "results": {
            label: result_to_dict(result) for label, result in results.items()
        },
    }


@block_executor("serve_analyze")
def run_analyze_many(params_list: Sequence[Mapping[str, Any]]) -> list[dict]:
    """Execute a block of analyze jobs as one batched kernel call.

    Single-analysis requests become scenarios of one
    :func:`~repro.core.batch.analyze_batch` call (mixed analyses,
    topologies and buffer depths welcome); ``analysis == "all"``
    requests keep the scalar :func:`~repro.core.engine.compare` chain,
    which already warm-starts internally.  Each returned body is
    byte-identical to what :func:`run_analyze` produces for that
    request, so cache entries from either path are interchangeable.
    """
    from repro.core.batch import Scenario, analyze_batch

    bodies: list[dict | None] = [None] * len(params_list)
    scenarios: list[Scenario] = []
    positions: list[int] = []
    for index, params in enumerate(params_list):
        if params["analysis"] == "all":
            bodies[index] = run_analyze(params)
            continue
        scenarios.append(
            Scenario(
                _materialise(params), analysis_by_name(params["analysis"])
            )
        )
        positions.append(index)
    if scenarios:
        for index, verdict in zip(
            positions, analyze_batch(scenarios, stop_at_deadline=False)
        ):
            bodies[index] = {
                "analysis": verdict.analysis_name,
                "schedulable": verdict.schedulable,
                "results": {verdict.analysis_name: result_to_dict(verdict)},
            }
    return bodies  # type: ignore[return-value]


@job_executor("serve_sizing")
def run_sizing(params: Mapping[str, Any]) -> dict:
    """Execute one sizing job: buffer-depth and payload headroom."""
    flowset = _materialise(params)
    return sizing_summary(flowset, max_depth=params["max_depth"])


@job_executor("serve_allocate")
def run_allocate(params: Mapping[str, Any]) -> dict:
    """Execute one allocation job: the minimum-cost schedulable buf_map.

    Delegates to :func:`repro.core.allocate.allocation_summary`, the
    same document the CLI's ``--json`` mode and the ``allocation``
    campaign kind emit — one spec, one answer, on every surface.
    """
    from repro.core.allocate import allocation_summary

    flowset = _materialise(params)
    return allocation_summary(
        flowset,
        analysis_name=params["analysis"],
        lo=params["lo"],
        hi=params["hi"],
        cost_model=params["cost_model"],
        budget=params["budget"],
        max_evaluations=params["max_evaluations"],
    )
