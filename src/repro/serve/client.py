"""Small blocking client for the analysis service (stdlib only).

:class:`ServeClient` wraps ``http.client`` with the service's JSON
conventions: every method sends one request, parses the JSON body and
raises :class:`ServeError` on non-2xx statuses.  Flow sets may be passed
as :class:`~repro.flows.flowset.FlowSet` objects (serialised via
:mod:`repro.io`) or as already-serialised documents; campaign specs
likewise as :class:`~repro.campaigns.CampaignSpec` or plain dicts.

>>> # doctest requires a running server; see examples/serve_quickstart.py
>>> # client = ServeClient("127.0.0.1", 8177)
>>> # client.analyze(flowset)["schedulable"]
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Mapping

from repro.campaigns.spec import CampaignSpec
from repro.flows.flowset import FlowSet
from repro.io import flowset_to_dict


class ServeError(Exception):
    """A non-2xx response: carries the HTTP status and server message.

    ``retry_after`` holds the server's ``Retry-After`` backpressure
    hint (seconds) when one was sent — 503 while the worker pool
    rebuilds — else ``None``.
    """

    def __init__(
        self, status: int, message: str,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


def _parse_retry_after(value: str | None) -> float | None:
    """Parse a delta-seconds ``Retry-After`` header (None when absent)."""
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


def _flowset_payload(flowset: FlowSet | Mapping[str, Any]) -> dict:
    """Coerce FlowSet objects / raw documents into the wire format."""
    if isinstance(flowset, FlowSet):
        return flowset_to_dict(flowset)
    return dict(flowset)


class ServeClient:
    """One keep-alive connection to a running ``repro serve`` instance.

    Resilience, matched to the server's failure semantics:

    * a dropped or refused connection is retried on a fresh socket with
      short jittered backoff (``connect_retries`` attempts) — safe
      because every endpoint is idempotent (content-addressed jobs,
      coalescing campaign submits), and exactly what rides out a
      cluster front-end being killed and restarted under load;
    * **429 (load shed)** is retried up to ``shed_retries`` times,
      honoring the server's ``Retry-After`` hint with jitter so a
      thundering herd of shed clients does not re-arrive in lockstep;
    * **503 (pool rebuilding)** stays an exception: the one caller with
      in-window retry semantics (:meth:`wait_campaign`) handles it, and
      tests assert the raw status;
    * ``connect_timeout`` bounds only the TCP connect — a cluster port
      with no listener fails fast while long computations keep the full
      read ``timeout``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8177,
        timeout: float = 60.0,
        *,
        connect_timeout: float = 5.0,
        connect_retries: int = 3,
        shed_retries: int = 8,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.connect_retries = connect_retries
        self.shed_retries = shed_retries
        self._conn: http.client.HTTPConnection | None = None
        #: Client-side resilience counters (mirrors of the behaviours
        #: the server reports in ``GET /stats``): transparent reconnect
        #: retries, ``wait_campaign`` backoff sleeps, honored
        #: ``Retry-After`` waits, and 429 shed-retry sleeps.
        self.counters = {
            "reconnects": 0, "backoff_sleeps": 0, "retry_after_waits": 0,
            "shed_retries": 0,
        }

    # ------------------------------------------------------------------
    # transport

    def request(
        self, method: str, path: str, payload: Mapping[str, Any] | None = None
    ) -> dict:
        """Send one request; return the decoded JSON body (raises on error)."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        shed_attempts = 0
        while True:
            response = self._exchange_with_reconnect(
                method, path, body, headers
            )
            status = response.status
            retry_after = _parse_retry_after(
                response.getheader("Retry-After")
            )
            data = json.loads(response.read().decode("utf-8"))
            if status == 429 and shed_attempts < self.shed_retries:
                # Load shed: wait what the server hinted, jittered to
                # ±50% so shed clients spread out, then try again.
                shed_attempts += 1
                self.counters["shed_retries"] += 1
                time.sleep((retry_after or 0.1) * (0.5 + random.random()))
                continue
            if status >= 400:
                raise ServeError(
                    status, data.get("error", "unknown error"),
                    retry_after=retry_after,
                )
            return data

    def _exchange_with_reconnect(self, method, path, body, headers):
        """One exchange, reconnecting through dropped/refused sockets.

        Attempt 1 reuses the keep-alive connection; each further
        attempt opens a fresh socket after a short jittered backoff —
        long enough (~1s total at the defaults) to span a supervised
        front-end's restart window.
        """
        attempts = 1 + max(0, self.connect_retries)
        for attempt in range(attempts):
            try:
                return self._exchange(method, path, body, headers)
            except (http.client.RemoteDisconnected, BrokenPipeError,
                    ConnectionResetError, ConnectionRefusedError,
                    ConnectionAbortedError) as exc:
                self.close()
                if attempt == attempts - 1:
                    raise
                self.counters["reconnects"] += 1
                if attempt:  # first reconnect is free; then back off
                    time.sleep(
                        0.05 * (2 ** (attempt - 1)) * (0.5 + random.random())
                    )

    def _exchange(self, method, path, body, headers):
        if self._conn is None:
            # Connect under the (short) connect timeout, then widen the
            # socket to the full read timeout for the exchange itself.
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.connect_timeout
            )
            conn.connect()
            conn.sock.settimeout(self.timeout)
            self._conn = conn
        self._conn.request(method, path, body=body, headers=headers)
        return self._conn.getresponse()

    def close(self) -> None:
        """Drop the underlying connection (reopened on next request)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        """Context-manager support."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the connection on context exit."""
        self.close()

    # ------------------------------------------------------------------
    # endpoints

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return self.request("GET", "/healthz")

    def stats(self) -> dict:
        """``GET /stats``: cache / coalescing / campaign counters."""
        return self.request("GET", "/stats")

    def analyze(
        self,
        flowset: FlowSet | Mapping[str, Any],
        *,
        analysis: str = "ibn",
        buf: int | None = None,
    ) -> dict:
        """``POST /analyze``: bounds + verdict for one flow set."""
        return self.request("POST", "/analyze", {
            "flowset": _flowset_payload(flowset),
            "analysis": analysis,
            "buf": buf,
        })

    def analyze_batch(
        self,
        flowsets,
        *,
        analysis: str = "ibn",
        buf: int | None = None,
    ) -> dict:
        """``POST /analyze/batch``: many flow sets in one round trip.

        ``flowsets`` entries may be :class:`FlowSet` objects, flow-set
        documents, or fully-formed ``/analyze`` request bodies (dicts
        with their own ``"flowset"`` key — these pass through verbatim,
        letting entries carry per-request ``analysis``/``buf``).
        """
        requests = []
        for entry in flowsets:
            if isinstance(entry, Mapping) and "flowset" in entry:
                body = dict(entry)
                body["flowset"] = _flowset_payload(body["flowset"])
                requests.append(body)
            else:
                requests.append({
                    "flowset": _flowset_payload(entry),
                    "analysis": analysis,
                    "buf": buf,
                })
        return self.request("POST", "/analyze/batch", {"requests": requests})

    def sizing(
        self,
        flowset: FlowSet | Mapping[str, Any],
        *,
        buf: int | None = None,
        max_depth: int = 1024,
    ) -> dict:
        """``POST /sizing``: buffer-depth and payload headroom."""
        return self.request("POST", "/sizing", {
            "flowset": _flowset_payload(flowset),
            "buf": buf,
            "max_depth": max_depth,
        })

    def allocate(
        self,
        flowset: FlowSet | Mapping[str, Any],
        *,
        analysis: str = "ibn",
        lo: int = 1,
        hi: int = 8,
        budget: int | None = None,
        cost_model: Mapping[str, Any] | None = None,
        max_evaluations: int | None = None,
    ) -> dict:
        """``POST /allocate``: minimum-cost schedulable buffer allocation."""
        return self.request("POST", "/allocate", {
            "flowset": _flowset_payload(flowset),
            "analysis": analysis,
            "lo": lo,
            "hi": hi,
            "budget": budget,
            "cost_model": cost_model,
            "max_evaluations": max_evaluations,
        })

    def submit_campaign(
        self, spec: CampaignSpec | Mapping[str, Any]
    ) -> dict:
        """``POST /campaign``: submit a spec; returns the status document."""
        doc = spec.to_dict() if isinstance(spec, CampaignSpec) else dict(spec)
        return self.request("POST", "/campaign", doc)

    def campaign(self, campaign_id: str) -> dict:
        """``GET /campaign/<id>``: one campaign's status (+ result)."""
        return self.request("GET", f"/campaign/{campaign_id}")

    def campaigns(self) -> list[dict]:
        """``GET /campaign``: all submitted campaigns, submission order."""
        return self.request("GET", "/campaign")["campaigns"]

    def wait_campaign(
        self,
        campaign_id: str,
        *,
        timeout: float = 120.0,
        poll_s: float = 0.05,
        max_poll_s: float = 1.0,
    ) -> dict:
        """Poll until the campaign reaches ``done``/``failed`` (or timeout).

        Polling starts at ``poll_s`` and backs off exponentially to
        ``max_poll_s`` — long campaigns no longer hammer the server at
        a fixed 50ms.  A 503 (worker pool rebuilding) is not terminal:
        the client honors the server's ``Retry-After`` hint and keeps
        polling within the same deadline.
        """
        deadline = time.monotonic() + timeout
        interval = poll_s
        while True:
            retry_hint = None
            try:
                status = self.campaign(campaign_id)
            except ServeError as exc:
                if exc.status != 503:
                    raise
                status = None
                retry_hint = exc.retry_after
            if status is not None:
                if status["state"] in ("done", "failed"):
                    return status
                wait = interval
                counter = "backoff_sleeps"
            else:
                # Backpressure: wait what the server asked (or one
                # interval when the hint is missing), without backing
                # the poll interval itself off.
                wait = retry_hint or interval
                counter = "retry_after_waits"
            now = time.monotonic()
            if now >= deadline:
                state = "unavailable" if status is None else status["state"]
                raise TimeoutError(
                    f"campaign {campaign_id[:12]} still {state} "
                    f"after {timeout}s"
                )
            self.counters[counter] += 1
            time.sleep(min(wait, max(0.0, deadline - now)))
            if status is not None:
                interval = min(interval * 2, max_poll_s)
