"""The sharded serving cluster: one supervisor, N front-ends, M shards.

``python -m repro cluster`` grows the single-process server into a
self-healing multi-process cluster::

    supervisor ──spawns──> store daemon per shard   (repro.serve.stored)
               ──spawns──> front-end per slot       (repro.serve.server)
               ──pings───> every child over a control pipe

* **One listener, N acceptors** — with ``SO_REUSEPORT`` (Linux) each
  front-end binds its own listening socket to the shared port and the
  kernel load-balances connections across them; the supervisor holds an
  *anchor* socket (bound, never listening) so the port stays reserved
  even while every front-end is down.  Where ``SO_REUSEPORT`` is
  missing, the fallback is a single listener bound by the supervisor
  and inherited by every front-end at fork — all of them accept from
  the one shared queue.
* **Supervision** — the health thread pings each child every
  ``health_interval_s`` over its pipe.  A dead child (SIGKILL, OOM,
  crash) or a wedged one (``max_missed_pings`` silent intervals) is
  restarted with capped exponential backoff; staying up for
  ``stable_reset_s`` resets the backoff.  Killing any one front-end
  loses at most its in-flight requests — the survivors keep accepting,
  so availability never drops.
* **One computation per hash, cluster-wide** — front-ends run with
  ``store_addrs`` pointing at the store daemons: results are
  consistent-hashed over the shards, read through each front-end's
  local LRU, and deduplicated on write by the daemon, so a job computed
  anywhere is a hit everywhere and the store holds exactly one line per
  distinct hash.
* **Cluster-wide /stats** — each ping carries the latest aggregate
  (per-front-end counters, per-shard hit/miss, restarts, generation)
  down to the children, so ``GET /stats`` on *any* front-end reports
  the whole cluster.

Fork start method only (Linux): children inherit the bound sockets and
modules, making restarts milliseconds instead of re-import storms.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import socket
import sys
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

from repro.campaigns.store import FSYNC_MODES
from repro.serve.server import serve
from repro.serve.service import AnalysisService, ServeConfig
from repro.serve.stored import StoreClient, StoreDaemon, StoreUnavailable

_CTX = multiprocessing.get_context("fork")


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of one cluster (CLI flags map 1:1 onto these)."""

    #: Front-end server processes sharing the listener.
    frontends: int = 2
    #: Bind address of the shared listener.
    host: str = "127.0.0.1"
    #: Shared TCP port; ``0`` binds an ephemeral port (tests, smoke).
    port: int = 0
    #: Root directory of the shared result tier; shard ``i`` persists
    #: under ``<store_dir>/shard-<i>`` (restart-safe, torn-write
    #: recovering, exactly one line per distinct job hash).
    store_dir: str = "cluster-state"
    #: Store-daemon processes the job hashes shard over.
    store_shards: int = 1
    #: Run each shard as a replicated *group*: a primary plus a backup
    #: (``shard-<i>-replica``) tailing its log.  A dead primary is
    #: promoted around (see ``_promote_sibling``) instead of waited
    #: for, so committed results survive a SIGKILL.
    store_group: bool = False
    #: Primary ack discipline: ``"replicated"`` delays each put ack
    #: until the backup confirmed the record (durability), ``"local"``
    #: acks after the local append (throughput).  Only meaningful with
    #: ``store_group``.
    store_ack_mode: str = "replicated"
    #: Fsync policy of the shard stores (``none``/``batch``/``always``).
    store_fsync: str = "none"
    #: Worker processes per front-end (``0`` = in-process threads).
    workers: int = 0
    #: LRU entries per front-end (the read-through tier in front of the
    #: shard daemons).
    cache_size: int = 256
    #: Admission bound per front-end: compute requests beyond this are
    #: shed with 429 + ``Retry-After`` instead of queueing unboundedly.
    max_inflight: int = 64
    #: ``Retry-After`` hint on shed responses (seconds).
    shed_retry_after_s: float = 0.25
    #: Per-request compute deadline passed through to the front-ends.
    request_timeout_s: float | None = None
    #: Seconds between supervisor health pings.
    health_interval_s: float = 0.25
    #: Silent health intervals before a child counts as wedged and is
    #: killed + restarted.
    max_missed_pings: int = 8
    #: First restart delay; doubles per consecutive failure.
    backoff_base_s: float = 0.1
    #: Upper bound on the restart delay.
    backoff_cap_s: float = 5.0
    #: A child alive this long gets its failure count reset.
    stable_reset_s: float = 10.0
    #: Listener strategy: ``"auto"`` picks ``"reuseport"`` where the
    #: platform has ``SO_REUSEPORT`` and ``"shared"`` (one inherited
    #: listener, every front-end accepting from it) elsewhere.
    listener: str = "auto"
    #: Graceful-drain budget per front-end on stop.
    drain_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.frontends < 1:
            raise ValueError(
                f"frontends must be >= 1, got {self.frontends}"
            )
        if self.store_shards < 1:
            raise ValueError(
                f"store_shards must be >= 1, got {self.store_shards}"
            )
        if self.health_interval_s <= 0:
            raise ValueError(
                f"health_interval_s must be > 0, got {self.health_interval_s}"
            )
        if self.max_missed_pings < 1:
            raise ValueError(
                f"max_missed_pings must be >= 1, got {self.max_missed_pings}"
            )
        if self.backoff_base_s <= 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ValueError(
                "need 0 < backoff_base_s <= backoff_cap_s, got "
                f"{self.backoff_base_s} / {self.backoff_cap_s}"
            )
        if self.store_ack_mode not in ("local", "replicated"):
            raise ValueError(
                "store_ack_mode must be 'local' or 'replicated', "
                f"got {self.store_ack_mode!r}"
            )
        if self.store_fsync not in FSYNC_MODES:
            raise ValueError(
                f"store_fsync must be one of {', '.join(FSYNC_MODES)}, "
                f"got {self.store_fsync!r}"
            )
        if self.listener not in ("auto", "reuseport", "shared"):
            raise ValueError(
                "listener must be 'auto', 'reuseport' or 'shared', "
                f"got {self.listener!r}"
            )
        # Delegate the rest (port range, workers, cache_size, ...) to
        # the per-front-end config validation.
        self.frontend_config(("127.0.0.1:1",))

    def frontend_config(self, store_addrs: tuple[str, ...]) -> ServeConfig:
        """The ``ServeConfig`` every front-end child runs with."""
        return ServeConfig(
            host=self.host,
            port=self.port,
            workers=self.workers,
            cache_size=self.cache_size,
            store_addrs=store_addrs,
            max_inflight=self.max_inflight,
            shed_retry_after_s=self.shed_retry_after_s,
            request_timeout_s=self.request_timeout_s,
            drain_timeout_s=self.drain_timeout_s,
        )

    def listener_mode(self) -> str:
        """Resolve ``"auto"`` against the platform."""
        if self.listener != "auto":
            return self.listener
        return "reuseport" if hasattr(socket, "SO_REUSEPORT") else "shared"


# ----------------------------------------------------------------------
# child entry points (run after fork; module-level for clarity)


def _service_snapshot(service: AnalysisService) -> dict:
    """The per-front-end counters a pong carries to the supervisor."""
    cache = service.cache.stats()
    return {
        "pid": os.getpid(),
        "requests": service.requests,
        "executed": service.executed,
        "coalesced": service.coalesced,
        "shed_429": service.shed_429,
        "admitted": service.admitted,
        "hits": cache["hits"],
        "store_hits": cache["store_hits"],
        "misses": cache["misses"],
        "uptime_s": round(time.monotonic() - service.started_at, 3),
    }


def _reuseport_listener(host: str, port: int) -> socket.socket:
    """A fresh ``SO_REUSEPORT`` listener on the cluster port."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    sock.listen(128)
    return sock


def _frontend_main(index: int, config: ServeConfig, sock, conn) -> None:
    """One front-end child: serve + answer the supervisor's pings.

    ``sock`` is the inherited shared listener (``"shared"`` mode) or
    ``None`` (``"reuseport"`` mode: bind our own listener to the fixed
    cluster port).  The control thread owns the pipe: pings update the
    cluster aggregate in the service and answer with this front-end's
    counters; a vanished supervisor (EOF or re-parented to init)
    triggers the same graceful drain as SIGTERM.
    """
    # The supervisor coordinates shutdown (stop op / SIGTERM); Ctrl-C
    # on a shared terminal must not tear children down un-drained.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if sock is None:
        sock = _reuseport_listener(config.host, config.port)
    service = AnalysisService(config)
    parent_pid = os.getppid()
    holder: dict[str, Any] = {}

    def control() -> None:
        wedged = False
        while True:
            try:
                if not conn.poll(0.2):
                    if os.getppid() != parent_pid:
                        break  # supervisor died: drain and exit
                    continue
                message = conn.recv()
            except (EOFError, OSError):
                break
            op = message.get("op")
            if op == "ping":
                if wedged:
                    continue  # chaos hook: simulate a wedged child
                service.cluster = message.get("cluster")
                try:
                    conn.send({
                        "op": "pong",
                        "index": index,
                        "stats": _service_snapshot(service),
                    })
                except (BrokenPipeError, OSError):
                    break
            elif op == "stop":
                break
            elif op == "chaos_wedge":
                wedged = True
        loop, stop = holder.get("loop"), holder.get("stop")
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass

    async def main() -> None:
        holder["loop"] = asyncio.get_running_loop()
        holder["stop"] = asyncio.Event()
        threading.Thread(
            target=control, name=f"frontend-{index}-control", daemon=True
        ).start()

        def on_started(host: str, port: int, _service) -> None:
            try:
                conn.send({"op": "started", "index": index, "port": port})
            except (BrokenPipeError, OSError):
                pass

        await serve(
            config,
            service=service,
            stop=holder["stop"],
            on_started=on_started,
            sock=sock,
        )

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass


def _store_main(
    index: int,
    directory: str,
    host: str,
    port: int,
    conn,
    replica_of: str | None = None,
    ack_mode: str = "local",
    fsync: str = "none",
) -> None:
    """One store-shard child: bind, report the port, serve until stopped.

    The first spawn binds ``port=0`` and reports the resolved port;
    restarts are told the learned port so every front-end's configured
    shard address stays valid across daemon bounces.  With
    ``replica_of`` the child starts as a backup tailing that primary;
    the supervisor promotes it over TCP when the primary dies.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    stopping = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stopping.set())
    daemon = StoreDaemon(
        directory,
        host,
        port,
        replica_of=replica_of,
        ack_mode=ack_mode,
        fsync=fsync,
    )
    try:
        daemon.bind()
    except OSError as exc:
        try:
            conn.send({"op": "bind_failed", "index": index, "error": str(exc)})
        except (BrokenPipeError, OSError):
            pass
        raise SystemExit(2)
    try:
        conn.send({
            "op": "bound", "index": index,
            "host": daemon.host, "port": daemon.port,
        })
    except (BrokenPipeError, OSError):
        raise SystemExit(2)
    daemon.start()
    parent_pid = os.getppid()
    while not stopping.is_set():
        try:
            if not conn.poll(0.2):
                if os.getppid() != parent_pid:
                    break
                continue
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message.get("op")
        if op == "ping":
            try:
                conn.send({
                    "op": "pong",
                    "index": index,
                    "stats": {
                        "pid": os.getpid(),
                        "entries": len(daemon.store),
                        "gets": daemon.gets,
                        "hits": daemon.hits,
                        "puts": daemon.puts,
                        "dedups": daemon.dedups,
                        "connections": daemon.connections,
                        "role": daemon.role,
                        "failover_generation": daemon.failover_generation,
                        "corrupt_records": daemon.store.corrupt_records,
                        "fsync": daemon.store.fsync.mode,
                        "ack_downgrades": daemon.ack_downgrades,
                        "replica_offset": daemon.replica_offset,
                        "end_offset": daemon.store.end_offset,
                    },
                })
            except (BrokenPipeError, OSError):
                break
        elif op == "stop":
            break
    daemon.stop()


# ----------------------------------------------------------------------
# supervisor


class _Slot:
    """Parent-side state of one supervised child (front-end or shard)."""

    __slots__ = (
        "kind", "index", "process", "conn", "child_conn", "last_pong",
        "failures", "started_at", "restarts", "restart_at", "stats",
        "address", "shard", "member", "role",
    )

    def __init__(self, kind: str, index: int) -> None:
        self.kind = kind  # "frontend" | "store"
        self.index = index
        self.process = None
        self.conn = None
        self.child_conn = None
        self.last_pong = 0.0
        self.failures = 0
        self.started_at = 0.0
        self.restarts = 0
        self.restart_at: float | None = None  # pending-restart deadline
        self.stats: dict = {}
        self.address: str | None = None  # store slots: learned host:port
        self.shard = index  # store slots: which shard this member serves
        self.member = 0  # store slots: position within the shard group
        self.role: str = "primary"  # store slots: current role

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ClusterSupervisor:
    """Spawn, health-check and restart the cluster's child processes.

    Embeddable (tests, ``tools/cluster_smoke.py``) or driven by
    :func:`run_cluster`.  ``start()`` returns once every store shard
    reported its port and every front-end is accepting; the health
    thread then owns the restart state machine:

    ``running`` --death/wedge--> ``backoff`` --deadline--> ``respawned``

    with the backoff delay doubling per consecutive failure (capped),
    and a child that stays up ``stable_reset_s`` earning a reset.
    """

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()
        self.mode = self.config.listener_mode()
        self.host = self.config.host
        self.port = self.config.port
        self._anchor: socket.socket | None = None  # reuseport reservation
        self._listener: socket.socket | None = None  # shared-mode listener
        self._frontends = [
            _Slot("frontend", i) for i in range(self.config.frontends)
        ]
        self._stores: list[_Slot] = []
        members = (
            ((0, "primary"), (1, "backup"))
            if self.config.store_group
            else ((0, "primary"),)
        )
        for shard in range(self.config.store_shards):
            for member, role in members:
                slot = _Slot("store", len(self._stores))
                slot.shard, slot.member, slot.role = shard, member, role
                self._stores.append(slot)
        self.store_failovers = 0
        self.failover_generation = 0
        self._store_addrs: tuple[str, ...] = ()
        self._frontend_config: ServeConfig | None = None
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._health_thread: threading.Thread | None = None
        self.generation = 1  # bumps on every restart, cluster-wide
        self._aggregate: dict = {}

    # -- lifecycle -----------------------------------------------------

    def start(self, timeout: float = 30.0) -> "ClusterSupervisor":
        """Bind the port, spawn shards then front-ends, start pinging."""
        deadline = time.monotonic() + timeout
        self._bind()
        # Primaries first: a backup needs its primary's address to tail.
        primaries = [s for s in self._stores if s.role == "primary"]
        backups = [s for s in self._stores if s.role == "backup"]
        for slot in primaries:
            self._spawn_store(slot)
        self._await_store_addrs(deadline, primaries)
        for slot in backups:
            self._spawn_store(slot)
        if backups:
            self._await_store_addrs(deadline, backups)
        self._store_addrs = tuple(
            ",".join(
                slot.address
                for slot in sorted(
                    (s for s in self._stores if s.shard == shard),
                    key=lambda s: s.member,
                )
            )
            for shard in range(self.config.store_shards)
        )
        self._frontend_config = self.config.frontend_config(self._store_addrs)
        for slot in self._frontends:
            self._spawn_frontend(slot)
        self._await_frontends(deadline)
        self._health_thread = threading.Thread(
            target=self._health_loop, name="cluster-health", daemon=True
        )
        self._health_thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful stop: drain front-ends, stop shards, reap everything."""
        self._stopping.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=timeout)
        for slot in (*self._frontends, *self._stores):
            if slot.alive:
                try:
                    slot.conn.send({"op": "stop"})
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + timeout
        for slot in (*self._frontends, *self._stores):
            if slot.process is None:
                continue
            slot.process.join(max(0.1, deadline - time.monotonic()))
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(timeout=2)
            self._close_slot_pipes(slot)
        for sock in (self._listener, self._anchor):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass

    def __enter__(self) -> "ClusterSupervisor":
        """Context-manager support: started cluster in, stopped out."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop the cluster on context exit."""
        self.stop()

    # -- binding -------------------------------------------------------

    def _bind(self) -> None:
        if self.mode == "reuseport":
            # Bound but never listening: reserves the port for the
            # front-ends' SO_REUSEPORT binds without ever receiving a
            # connection (the kernel balances only across *listening*
            # sockets), so the port survives even a total child wipeout.
            anchor = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            anchor.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            anchor.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            anchor.bind((self.host, self.port))
            self._anchor = anchor
            self.host, self.port = anchor.getsockname()[:2]
        else:
            # Fallback: one kernel accept queue, inherited by every
            # front-end at fork; all of them accept from it.
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(512)
            self._listener = listener
            self.host, self.port = listener.getsockname()[:2]

    @property
    def address(self) -> tuple[str, int]:
        """Where the cluster serves (host, port)."""
        return self.host, self.port

    @property
    def store_addrs(self) -> tuple[str, ...]:
        """The shard daemon addresses the front-ends are wired to."""
        return self._store_addrs

    # -- spawning ------------------------------------------------------

    def _spawn_frontend(self, slot: _Slot) -> None:
        self._close_slot_pipes(slot)
        parent_conn, child_conn = _CTX.Pipe()
        slot.conn, slot.child_conn = parent_conn, child_conn
        # Frozen config per spawn: the fixed port is already resolved.
        config = replace(self._frontend_config, port=self.port)
        sock = self._listener if self.mode == "shared" else None
        process = _CTX.Process(
            target=_frontend_main,
            args=(slot.index, config, sock, child_conn),
            name=f"repro-frontend-{slot.index}",
            daemon=False,
        )
        process.start()
        slot.process = process
        slot.started_at = time.monotonic()
        slot.last_pong = slot.started_at  # grace: pings start later
        slot.restart_at = None

    def _sibling(self, slot: _Slot) -> _Slot | None:
        """The other member of a store slot's shard group, if any."""
        for other in self._stores:
            if other is not slot and other.shard == slot.shard:
                return other
        return None

    def _spawn_store(self, slot: _Slot) -> None:
        self._close_slot_pipes(slot)
        parent_conn, child_conn = _CTX.Pipe()
        slot.conn, slot.child_conn = parent_conn, child_conn
        suffix = "" if slot.member == 0 else "-replica"
        directory = str(
            Path(self.config.store_dir) / f"shard-{slot.shard:02d}{suffix}"
        )
        # First spawn: ephemeral port.  Restarts: the learned port, so
        # the address baked into every front-end stays valid.
        port = 0
        if slot.address is not None:
            port = int(slot.address.rsplit(":", 1)[1])
        replica_of = None
        if slot.role == "backup":
            sibling = self._sibling(slot)
            replica_of = sibling.address if sibling is not None else None
        process = _CTX.Process(
            target=_store_main,
            args=(
                slot.index, directory, "127.0.0.1", port, child_conn,
                replica_of,
                self.config.store_ack_mode
                if self.config.store_group
                else "local",
                self.config.store_fsync,
            ),
            name=f"repro-stored-{slot.shard}{suffix}",
            daemon=False,
        )
        process.start()
        slot.process = process
        slot.started_at = time.monotonic()
        slot.last_pong = slot.started_at
        slot.restart_at = None

    def _close_slot_pipes(self, slot: _Slot) -> None:
        for conn in (slot.conn, slot.child_conn):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        slot.conn = slot.child_conn = None

    def _await_store_addrs(
        self, deadline: float, slots: list[_Slot] | None = None
    ) -> None:
        for slot in slots if slots is not None else self._stores:
            while slot.address is None:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not slot.alive:
                    raise RuntimeError(
                        f"store shard {slot.index} did not come up"
                    )
                if slot.conn.poll(min(0.2, remaining)):
                    message = slot.conn.recv()
                    if message.get("op") == "bound":
                        slot.address = (
                            f"{message['host']}:{message['port']}"
                        )
                    elif message.get("op") == "bind_failed":
                        raise RuntimeError(
                            f"store shard {slot.index} bind failed: "
                            f"{message.get('error')}"
                        )

    def _await_frontends(self, deadline: float) -> None:
        pending = set(range(len(self._frontends)))
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(
                    f"front-ends {sorted(pending)} did not come up"
                )
            for slot in self._frontends:
                if slot.index not in pending:
                    continue
                if not slot.alive:
                    raise RuntimeError(
                        f"front-end {slot.index} died during startup"
                    )
                if slot.conn.poll(0.05):
                    message = slot.conn.recv()
                    if message.get("op") == "started":
                        pending.discard(slot.index)

    # -- health loop ---------------------------------------------------

    def _health_loop(self) -> None:
        interval = self.config.health_interval_s
        while not self._stopping.wait(interval):
            now = time.monotonic()
            with self._lock:
                for slot in (*self._frontends, *self._stores):
                    self._drain_messages(slot, now)
                    self._check_slot(slot, now)
                self._aggregate = self._build_aggregate(now)
                aggregate = self._aggregate
                for slot in self._frontends:
                    if slot.alive and slot.restart_at is None:
                        try:
                            slot.conn.send(
                                {"op": "ping", "cluster": aggregate}
                            )
                        except (BrokenPipeError, OSError):
                            pass
                for slot in self._stores:
                    if slot.alive and slot.restart_at is None:
                        try:
                            slot.conn.send({"op": "ping"})
                        except (BrokenPipeError, OSError):
                            pass

    def _drain_messages(self, slot: _Slot, now: float) -> None:
        if slot.conn is None:
            return
        try:
            while slot.conn.poll(0):
                message = slot.conn.recv()
                op = message.get("op")
                if op == "pong":
                    slot.last_pong = now
                    slot.stats = message.get("stats", {})
                elif op == "bound":
                    slot.address = f"{message['host']}:{message['port']}"
                    slot.last_pong = now
        except (EOFError, OSError):
            pass  # child gone; _check_slot handles it

    def _check_slot(self, slot: _Slot, now: float) -> None:
        """The failover state machine of one child."""
        if slot.restart_at is not None:
            # backoff state: respawn once the deadline passes.
            if now >= slot.restart_at:
                slot.failures += 1
                slot.restarts += 1
                self.generation += 1
                if slot.kind == "frontend":
                    self._spawn_frontend(slot)
                else:
                    self._spawn_store(slot)
            return
        if not slot.alive:
            if (
                slot.kind == "store"
                and self.config.store_group
                and slot.role == "primary"
            ):
                self._promote_sibling(slot)
            self._enter_backoff(slot, now, reason="died")
            return
        silent_for = now - slot.last_pong
        if silent_for > self.config.max_missed_pings * \
                self.config.health_interval_s:
            # Wedged: health pings unanswered while the process lives.
            # SIGKILL (it is not responding to anything gentler) and
            # restart through the same backoff path.
            try:
                slot.process.kill()
            except (OSError, AttributeError):
                pass
            self._enter_backoff(slot, now, reason="wedged")
            return
        if slot.failures and now - slot.started_at > \
                self.config.stable_reset_s:
            slot.failures = 0  # earned its stability back

    def _promote_sibling(self, dead: _Slot) -> None:
        """Failover: flip the dead primary's backup into the primary.

        The promotion is a TCP ``promote`` to the live backup; on
        success the roles swap, so the dead slot respawns (after its
        backoff) as a *backup* tailing the new primary.  If the backup
        is also down, roles stay put and the dead slot respawns as a
        primary — a full-group outage degrades to recomputation, never
        to a stuck cluster.
        """
        sibling = self._sibling(dead)
        if sibling is None or not sibling.alive or sibling.address is None:
            return
        generation = self.failover_generation + 1
        try:
            client = StoreClient(
                sibling.address, timeout=2.0, connect_timeout=1.0
            )
            try:
                reply = client.request(
                    {"op": "promote", "generation": generation}
                )
            finally:
                client.close()
        except StoreUnavailable:
            return
        if not reply.get("ok"):
            return
        dead.role, sibling.role = "backup", "primary"
        self.failover_generation = generation
        self.store_failovers += 1
        print(
            f"cluster: store shard {dead.shard} primary died; promoted "
            f"{sibling.address} (generation {generation})",
            file=sys.stderr,
        )

    def _enter_backoff(self, slot: _Slot, now: float, *, reason: str) -> None:
        delay = min(
            self.config.backoff_cap_s,
            self.config.backoff_base_s * (2 ** slot.failures),
        )
        slot.restart_at = now + delay
        print(
            f"cluster: {slot.kind} {slot.index} {reason}; "
            f"restart in {delay:.2f}s (failure #{slot.failures + 1})",
            file=sys.stderr,
        )

    # -- aggregate -----------------------------------------------------

    def _build_aggregate(self, now: float) -> dict:
        totals = {
            "requests": 0, "executed": 0, "coalesced": 0,
            "shed_429": 0, "hits": 0, "store_hits": 0, "misses": 0,
        }
        per_frontend = {}
        for slot in self._frontends:
            if slot.stats:
                per_frontend[str(slot.index)] = {
                    **slot.stats, "alive": slot.alive,
                    "restarts": slot.restarts,
                }
                for key in totals:
                    totals[key] += slot.stats.get(key, 0)
        per_shard = {}
        for slot in self._stores:
            if slot.address is None:
                continue
            stats = dict(slot.stats) if slot.stats else {}
            stats["alive"] = slot.alive
            stats["restarts"] = slot.restarts
            stats["role"] = slot.role
            stats["shard"] = slot.shard
            if "gets" in stats:
                stats["shard_misses"] = stats["gets"] - stats.get("hits", 0)
            per_shard[slot.address] = stats
        return {
            "frontends": len(self._frontends),
            "alive": sum(1 for s in self._frontends if s.alive),
            "generation": self.generation,
            "restarts": {
                "frontend": sum(s.restarts for s in self._frontends),
                "store": sum(s.restarts for s in self._stores),
            },
            "totals": totals,
            "per_frontend": per_frontend,
            "per_shard": per_shard,
            "durability": {
                "store_group": self.config.store_group,
                "ack_mode": (
                    self.config.store_ack_mode
                    if self.config.store_group
                    else "local"
                ),
                "fsync": self.config.store_fsync,
                "store_failovers": self.store_failovers,
                "failover_generation": self.failover_generation,
                "corrupt_records": sum(
                    s.stats.get("corrupt_records", 0) for s in self._stores
                ),
                "replication_lag_bytes": sum(
                    max(
                        0,
                        (self._sibling(s) or s).stats.get("end_offset", 0)
                        - s.stats.get("replica_offset", 0),
                    )
                    for s in self._stores
                    if s.role == "backup" and s.stats
                ),
            },
        }

    def aggregate(self) -> dict:
        """The latest cluster-wide aggregate (what /stats reports)."""
        with self._lock:
            return dict(self._aggregate) if self._aggregate else \
                self._build_aggregate(time.monotonic())

    # -- chaos / test hooks --------------------------------------------

    def frontend_pids(self) -> list[int | None]:
        """Live front-end PIDs by slot (None while restarting)."""
        return [
            slot.process.pid if slot.alive else None
            for slot in self._frontends
        ]

    def kill_frontend(self, index: int = 0) -> int:
        """SIGKILL one front-end (chaos); returns the killed PID."""
        with self._lock:
            slot = self._frontends[index]
            if not slot.alive:
                raise RuntimeError(f"front-end {index} is not running")
            pid = slot.process.pid
            slot.process.kill()
        return pid

    def kill_store(self, index: int = 0, *, role: str = "primary") -> int:
        """SIGKILL one store member (chaos); returns the killed PID.

        Without ``store_group``, ``index`` is the shard slot.  With it,
        ``index`` is the *shard* and ``role`` picks the member holding
        that role right now (default: the current primary).
        """
        with self._lock:
            if self.config.store_group:
                slot = next(
                    (
                        s for s in self._stores
                        if s.shard == index and s.role == role
                    ),
                    None,
                )
                if slot is None:
                    raise RuntimeError(
                        f"store shard {index} has no {role} member"
                    )
            else:
                slot = self._stores[index]
            if not slot.alive:
                raise RuntimeError(f"store shard {index} is not running")
            pid = slot.process.pid
            slot.process.kill()
        return pid

    def store_roles(self) -> dict[int, dict[str, str]]:
        """Current role of every store member, by shard (chaos hook)."""
        with self._lock:
            roles: dict[int, dict[str, str]] = {}
            for slot in self._stores:
                roles.setdefault(slot.shard, {})[
                    slot.address or f"member-{slot.member}"
                ] = slot.role
            return roles

    def wedge_frontend(self, index: int = 0) -> None:
        """Make one front-end stop answering pings (chaos hook)."""
        with self._lock:
            slot = self._frontends[index]
            if not slot.alive:
                raise RuntimeError(f"front-end {index} is not running")
            slot.conn.send({"op": "chaos_wedge"})

    def wait_all_alive(self, timeout: float = 30.0) -> bool:
        """Block until every child is up and ponging (True on success)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                ok = all(
                    slot.alive and slot.restart_at is None
                    for slot in (*self._frontends, *self._stores)
                )
            if ok:
                return True
            time.sleep(0.05)
        return False


# ----------------------------------------------------------------------
# CLI entry point


def run_cluster(config: ClusterConfig | None = None) -> int:
    """Blocking entry point of ``python -m repro cluster``."""
    config = config or ClusterConfig()
    supervisor = ClusterSupervisor(config)
    try:
        supervisor.start()
    except (OSError, RuntimeError) as exc:
        print(f"cluster: failed to start: {exc}", file=sys.stderr)
        supervisor.stop(timeout=5)
        return 2
    host, port = supervisor.address
    print(
        f"repro-cluster serving on http://{host}:{port} "
        f"({config.frontends} front-ends [{supervisor.mode}], "
        f"{config.store_shards} store shards under {config.store_dir})",
        file=sys.stderr,
    )
    stopped = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stopped.set())
    try:
        stopped.wait()
    except KeyboardInterrupt:
        pass
    print("repro-cluster: shutting down", file=sys.stderr)
    supervisor.stop()
    return 0
