"""Analysis-as-a-service: an async batch server over the campaign engine.

``python -m repro serve`` turns the library into a long-running JSON
service for interactive design-space exploration — the buffer-depth
vs. schedulability questions of the paper, answered per request:

* ``POST /analyze`` — flow set + analysis kind -> bounds and verdict;
* ``POST /sizing``  — flow set -> deepest schedulable buffer and
  payload scaling margin;
* ``POST /campaign`` / ``GET /campaign/<id>`` — submit a declarative
  :class:`~repro.campaigns.CampaignSpec` and poll its progress
  (:class:`~repro.campaigns.ProgressEvent` numbers) and result;
* ``GET /healthz`` / ``GET /stats`` — liveness and the cache /
  coalescing counters.

Requests are normalised into the campaign engine's content-addressed
jobs, so identical queries — however their JSON is spelled — coalesce
while in flight and repeat answers come from a bounded LRU backed by
the JSONL result store.  The stack is stdlib-only (``asyncio`` sockets,
hand-rolled HTTP/1.1 framing in :mod:`repro.serve.http`); see
``docs/api.md`` and the "Serving architecture" section of DESIGN.md.

``python -m repro cluster`` scales the same service out: a supervisor
(:mod:`repro.serve.cluster`) spawns N front-end processes on one shared
port, restarts dead or wedged ones with capped backoff, and wires them
to store-daemon shards (:mod:`repro.serve.stored`) so each
content-addressed result is computed once cluster-wide; overload sheds
with 429 + ``Retry-After`` instead of collapsing — see the "Sharded
serving" section of DESIGN.md.
"""

from repro.serve.cache import ServeCache
from repro.serve.client import ServeClient, ServeError
from repro.serve.cluster import (
    ClusterConfig,
    ClusterSupervisor,
    run_cluster,
)
from repro.serve.http import HttpError, HttpRequest
from repro.serve.pool import ResilientPool
from repro.serve.server import ServerHandle, run_server, serve, start_in_thread
from repro.serve.service import (
    AnalysisService,
    CampaignStatus,
    ServeConfig,
    campaign_id,
)
from repro.serve.stored import (
    HashRing,
    RemoteStore,
    StoreClient,
    StoreDaemon,
    StoreUnavailable,
    run_stored,
)

__all__ = [
    "AnalysisService",
    "CampaignStatus",
    "ClusterConfig",
    "ClusterSupervisor",
    "HashRing",
    "HttpError",
    "HttpRequest",
    "RemoteStore",
    "ResilientPool",
    "ServeCache",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerHandle",
    "StoreClient",
    "StoreDaemon",
    "StoreUnavailable",
    "campaign_id",
    "run_cluster",
    "run_server",
    "run_stored",
    "serve",
    "start_in_thread",
]
