"""repro — reproduction of "Buffer-aware bounds to multi-point progressive
blocking in priority-preemptive NoCs" (Indrusiak, Burns, Nikolić; DATE 2018).

The library computes worst-case packet response times in wormhole
networks-on-chip with priority-preemptive virtual-channel arbitration, and
reproduces the paper's evaluation:

* the **IBN** analysis (the paper's contribution) plus the SB, XLW16 and
  XLWX baselines (:mod:`repro.core`);
* the NoC platform model — meshes, XY routing, buffers, link/routing
  latencies (:mod:`repro.noc`);
* the real-time traffic model (:mod:`repro.flows`);
* a cycle-accurate wormhole simulator used to validate the bounds
  (:mod:`repro.sim`);
* workload generators and the experiment harness regenerating every table
  and figure (:mod:`repro.workloads`, :mod:`repro.experiments`).

Quickstart::

    from repro import (
        Mesh2D, NoCPlatform, Flow, FlowSet,
        SBAnalysis, XLWXAnalysis, IBNAnalysis, compare, comparison_table,
    )

    platform = NoCPlatform(Mesh2D(4, 4), buf=2)
    flows = [
        Flow("video", priority=1, period=4000, length=256, src=0, dst=15),
        Flow("audio", priority=2, period=8000, length=64, src=4, dst=11),
    ]
    results = compare(FlowSet(platform, flows),
                      [SBAnalysis(), XLWXAnalysis(), IBNAnalysis()])
    print(comparison_table(results))
"""

from repro.noc import (
    Link,
    LinkKind,
    Mesh2D,
    NoCPlatform,
    Topology,
    XYRouting,
    chain,
    contention_domain,
)
from repro.flows import (
    Flow,
    FlowSet,
    assign_priorities_audsley,
    deadline_monotonic,
    rate_monotonic,
)
from repro.core import (
    Analysis,
    AnalysisResult,
    BufferSizingResult,
    FlowResult,
    IBNAnalysis,
    InterferenceGraph,
    Kim98Analysis,
    SBAnalysis,
    XLW16Analysis,
    XLWXAnalysis,
    analyze,
    compare,
    comparison_table,
    is_schedulable,
    length_scaling_margin,
    max_schedulable_buffer_depth,
    result_table,
    slack_table,
)

__version__ = "1.0.0"

__all__ = [
    "Link",
    "LinkKind",
    "Mesh2D",
    "NoCPlatform",
    "Topology",
    "XYRouting",
    "chain",
    "contention_domain",
    "Flow",
    "FlowSet",
    "rate_monotonic",
    "deadline_monotonic",
    "assign_priorities_audsley",
    "Analysis",
    "AnalysisResult",
    "FlowResult",
    "InterferenceGraph",
    "Kim98Analysis",
    "SBAnalysis",
    "XLW16Analysis",
    "XLWXAnalysis",
    "IBNAnalysis",
    "analyze",
    "compare",
    "is_schedulable",
    "comparison_table",
    "result_table",
    "BufferSizingResult",
    "max_schedulable_buffer_depth",
    "length_scaling_margin",
    "slack_table",
    "__version__",
]
