"""The paper's didactic example (Section V: Fig. 3, Tables I and II).

Three flows on a 1×6 chain of routers with nodes a..f (here nodes 0..5):

* τ1: e→f (routers 5→6), the short, fast, highest-priority flow;
* τ2: a→f (routers 1→6), the long medium-priority flow;
* τ3: b→e (routers 2→5), the lowest-priority flow under analysis.

τ1 interferes with τ2 on the last two links of τ2's route — strictly
downstream of ``cd_23`` (the three router-to-router links τ2 shares with
τ3) — and shares no link with τ3, which makes it exactly the downstream
indirect interferer that triggers multi-point progressive blocking on τ3.

The placement is reverse-engineered from Table I's ``(L, |route|)`` pairs
and Table II's analysis values, which this library reproduces exactly
(see ``tests/core/test_didactic_oracle.py``):

==========  ====  =====  ============  ===========
flow        R_SB  R_XLWX R_IBN(b=10)   R_IBN(b=2)
==========  ====  =====  ============  ===========
τ1          62    62     62            62
τ2          328   328    328           328
τ3          336   460    396           348
==========  ====  =====  ============  ===========

Table I parameters, with ``routl = 0`` and ``linkl = 1`` (the only values
consistent with the published C/L/route-length triples).
"""

from __future__ import annotations

from repro.flows.flow import Flow
from repro.flows.flowset import FlowSet
from repro.noc.platform import NoCPlatform
from repro.noc.topology import chain

#: Node indices for the chain's nodes a..f.
NODE_A, NODE_B, NODE_C, NODE_D, NODE_E, NODE_F = range(6)


def didactic_platform(buf: int = 2) -> NoCPlatform:
    """The 1×6 chain platform of Fig. 3 with a chosen per-VC buffer depth."""
    return NoCPlatform(chain(6), buf=buf, linkl=1, routl=0)


def didactic_flows() -> list[Flow]:
    """The three flows of Table I (periods/deadlines/jitters in cycles)."""
    return [
        Flow("t1", priority=1, period=200, deadline=200, jitter=0,
             length=60, src=NODE_E, dst=NODE_F),
        Flow("t2", priority=2, period=4000, deadline=4000, jitter=0,
             length=198, src=NODE_A, dst=NODE_F),
        Flow("t3", priority=3, period=6000, deadline=6000, jitter=0,
             length=128, src=NODE_B, dst=NODE_E),
    ]


def didactic_flowset(buf: int = 2) -> FlowSet:
    """Table I flows bound to the Fig. 3 platform with buffer depth ``buf``.

    >>> fs = didactic_flowset(buf=2)
    >>> fs.c("t1"), fs.c("t2"), fs.c("t3")
    (62, 204, 132)
    """
    return FlowSet(didactic_platform(buf), didactic_flows())
