"""Task-to-core mappings for application benchmarks.

The Figure 5 experiment generates 100 *random mappings* of the AV
application onto each topology.  A mapping assigns every task to a node;
several tasks may share a node (mandatory when the application has more
tasks than the platform has nodes), in which case messages between
co-located tasks bypass the network entirely.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.flows.flow import Flow


def random_mapping(
    tasks: Sequence[str],
    num_nodes: int,
    rng: np.random.Generator,
) -> dict[str, int]:
    """Map each task to a uniformly random node (tasks may share nodes).

    >>> import numpy as np
    >>> mapping = random_mapping(("a", "b"), 4, np.random.default_rng(0))
    >>> set(mapping) == {"a", "b"}
    True
    """
    if num_nodes < 1:
        raise ValueError(f"need at least one node, got {num_nodes}")
    return {task: int(rng.integers(num_nodes)) for task in tasks}


def map_flows(
    flows: Iterable[Flow],
    src_of: dict[str, int],
    dst_of: dict[str, int],
) -> list[Flow]:
    """Re-home flows onto new source/destination nodes.

    ``src_of``/``dst_of`` are keyed by flow name.  Priorities and timing
    parameters are preserved; only the placement changes.  Application
    benchmarks normally construct flows directly from a task mapping (see
    :func:`repro.workloads.av_benchmark.av_flows`); this helper supports
    remapping studies over already-built flow lists.
    """
    return [
        flow.with_mapping(src_of[flow.name], dst_of[flow.name]) for flow in flows
    ]
