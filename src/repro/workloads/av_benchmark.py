"""Autonomous-vehicle (AV) application benchmark (paper Section VI, Fig. 5).

The paper's Figure 5 maps the AV benchmark of Indrusiak [5] (JSA 2014)
onto 26 NoC topologies.  That benchmark's task/message table is not
reproduced in the paper and is not available offline, so this module
provides a documented substitute (see DESIGN.md §4): a deterministic
autonomous-driving application with 38 tasks and 43 periodic messages
spanning the sensor→fusion→planning→actuation pipeline, with periods and
payload sizes representative of the domain (camera frames at 30 fps, lidar
sweeps at 10 Hz, 100 Hz control loops, ...).

The experiment shape is identical to the paper's: the fixed task graph is
randomly mapped onto each topology (several tasks may share a node;
messages between co-located tasks never enter the NoC), message priorities
are rate-monotonic, and each analysis decides full-set schedulability.

``length_scale`` scales all payload sizes; it is the calibration knob that
positions the schedulability knee across the swept topologies (documented
in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flows.flow import Flow
from repro.flows.flowset import FlowSet
from repro.flows.priority import rate_monotonic
from repro.noc.platform import NoCPlatform
from repro.util.rng import spawn_rng

#: Default clock used to convert the message periods (microseconds) into
#: cycles.  Calibrated (together with the Figure 5 harness's default
#: ``length_scale=2``) so that the AV benchmark stresses the analyses the
#: way the paper's Figure 5 does: schedulability well below 100% on small
#: topologies, rising with mesh size (see EXPERIMENTS.md).
DEFAULT_CLOCK_HZ = 1e6


@dataclass(frozen=True)
class Message:
    """One periodic inter-task message of the AV application."""

    name: str
    src_task: str
    dst_task: str
    period_us: int
    length: int


AV_TASKS: tuple[str, ...] = (
    # sensor drivers
    "lidar_front_drv", "lidar_rear_drv",
    "cam_front_left_drv", "cam_front_right_drv",
    "cam_rear_left_drv", "cam_rear_right_drv",
    "radar_front_drv", "radar_rear_drv",
    "gps_drv", "imu_drv", "wheel_odom_drv",
    # perception
    "pointcloud_front_proc", "pointcloud_rear_proc",
    "vision_front_left", "vision_front_right",
    "vision_rear_left", "vision_rear_right",
    "radar_tracker", "lane_detector", "traffic_light_detector",
    # state estimation
    "localization", "map_matcher",
    # fusion and prediction
    "sensor_fusion", "obstacle_detector", "object_tracker",
    "traj_predictor",
    # planning
    "behavior_planner", "path_planner", "trajectory_follower",
    # actuation
    "steering_ctrl", "throttle_ctrl", "brake_ctrl",
    "emergency_brake_monitor",
    # services
    "v2v_gateway", "hmi_display", "data_logger",
    "diagnostics", "passenger_infotainment",
)

AV_MESSAGES: tuple[Message, ...] = (
    # raw sensor streams
    Message("m_lidar_f", "lidar_front_drv", "pointcloud_front_proc", 100_000, 4096),
    Message("m_lidar_r", "lidar_rear_drv", "pointcloud_rear_proc", 100_000, 4096),
    Message("m_cam_fl", "cam_front_left_drv", "vision_front_left", 33_000, 3072),
    Message("m_cam_fr", "cam_front_right_drv", "vision_front_right", 33_000, 3072),
    Message("m_cam_rl", "cam_rear_left_drv", "vision_rear_left", 33_000, 2048),
    Message("m_cam_rr", "cam_rear_right_drv", "vision_rear_right", 33_000, 2048),
    Message("m_cam_lane", "cam_front_left_drv", "lane_detector", 33_000, 1024),
    Message("m_cam_tl", "cam_front_right_drv", "traffic_light_detector", 100_000, 1024),
    Message("m_radar_f", "radar_front_drv", "radar_tracker", 50_000, 512),
    Message("m_radar_r", "radar_rear_drv", "radar_tracker", 50_000, 512),
    Message("m_gps", "gps_drv", "localization", 100_000, 64),
    Message("m_imu", "imu_drv", "localization", 10_000, 32),
    Message("m_odom", "wheel_odom_drv", "localization", 10_000, 32),
    # perception products
    Message("m_pc_f", "pointcloud_front_proc", "sensor_fusion", 100_000, 2048),
    Message("m_pc_r", "pointcloud_rear_proc", "sensor_fusion", 100_000, 2048),
    Message("m_vis_fl", "vision_front_left", "obstacle_detector", 33_000, 1024),
    Message("m_vis_fr", "vision_front_right", "obstacle_detector", 33_000, 1024),
    Message("m_vis_rl", "vision_rear_left", "obstacle_detector", 66_000, 768),
    Message("m_vis_rr", "vision_rear_right", "obstacle_detector", 66_000, 768),
    Message("m_radar_trk", "radar_tracker", "sensor_fusion", 50_000, 256),
    Message("m_lane", "lane_detector", "behavior_planner", 33_000, 256),
    Message("m_tl", "traffic_light_detector", "behavior_planner", 100_000, 128),
    # state estimation
    Message("m_loc_pose", "localization", "sensor_fusion", 20_000, 96),
    Message("m_loc_map", "localization", "map_matcher", 100_000, 512),
    Message("m_map", "map_matcher", "path_planner", 200_000, 1024),
    # fusion / tracking / prediction
    Message("m_fused", "sensor_fusion", "obstacle_detector", 50_000, 1024),
    Message("m_fused_eb", "sensor_fusion", "emergency_brake_monitor", 25_000, 256),
    Message("m_obstacles", "obstacle_detector", "object_tracker", 50_000, 512),
    Message("m_tracks", "object_tracker", "traj_predictor", 50_000, 384),
    Message("m_pred", "traj_predictor", "behavior_planner", 100_000, 512),
    # planning and control
    Message("m_behavior", "behavior_planner", "path_planner", 100_000, 256),
    Message("m_path", "path_planner", "trajectory_follower", 50_000, 512),
    Message("m_steer", "trajectory_follower", "steering_ctrl", 10_000, 32),
    Message("m_throttle", "trajectory_follower", "throttle_ctrl", 10_000, 32),
    Message("m_brake", "trajectory_follower", "brake_ctrl", 10_000, 32),
    Message("m_ebrake", "emergency_brake_monitor", "brake_ctrl", 5_000, 16),
    # services
    Message("m_v2v_out", "behavior_planner", "v2v_gateway", 100_000, 256),
    Message("m_v2v_in", "v2v_gateway", "behavior_planner", 100_000, 256),
    Message("m_hmi", "path_planner", "hmi_display", 100_000, 768),
    Message("m_log_fusion", "sensor_fusion", "data_logger", 100_000, 2048),
    Message("m_log_ctrl", "trajectory_follower", "data_logger", 100_000, 256),
    Message("m_diag", "diagnostics", "hmi_display", 200_000, 128),
    Message("m_info", "passenger_infotainment", "hmi_display", 33_000, 2048),
)


def av_flows(
    task_to_node: dict[str, int],
    *,
    clock_hz: float = DEFAULT_CLOCK_HZ,
    length_scale: float = 1.0,
) -> list[Flow]:
    """Bind the AV messages to nodes and assign rate-monotonic priorities.

    ``task_to_node`` maps every task of :data:`AV_TASKS` to a node index;
    messages between co-located tasks become local flows (zero latency,
    no interference).
    """
    missing = [t for t in AV_TASKS if t not in task_to_node]
    if missing:
        raise ValueError(f"mapping misses tasks: {missing[:3]}...")
    if length_scale <= 0:
        raise ValueError(f"length_scale must be positive, got {length_scale}")
    cycles_per_us = clock_hz / 1e6
    flows = []
    for message in AV_MESSAGES:
        period = int(message.period_us * cycles_per_us)
        flows.append(
            Flow(
                name=message.name,
                priority=1,  # placeholder; replaced by RM below
                period=period,
                deadline=period,
                jitter=0,
                length=max(1, round(message.length * length_scale)),
                src=task_to_node[message.src_task],
                dst=task_to_node[message.dst_task],
            )
        )
    return rate_monotonic(flows)


def av_flowset(
    platform: NoCPlatform,
    *,
    seed: int,
    mapping_index: int = 0,
    clock_hz: float = DEFAULT_CLOCK_HZ,
    length_scale: float = 1.0,
) -> FlowSet:
    """AV benchmark randomly mapped onto ``platform`` (one Fig. 5 sample).

    >>> from repro.noc import Mesh2D, NoCPlatform
    >>> fs = av_flowset(NoCPlatform(Mesh2D(4, 4), buf=2), seed=7)
    >>> len(fs) == len(AV_MESSAGES)
    True
    """
    from repro.workloads.mapping import random_mapping

    rng = spawn_rng(seed, "av", platform.topology.num_nodes, mapping_index)
    mapping = random_mapping(AV_TASKS, platform.topology.num_nodes, rng)
    flows = av_flows(mapping, clock_hz=clock_hz, length_scale=length_scale)
    return FlowSet(platform, flows)
