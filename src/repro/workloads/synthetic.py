"""Synthetic flow-set generator (paper Section VI, Figure 4).

The paper generates flow sets of increasing load by varying the number of
flows, with:

* periods uniformly distributed between 0.5 ms and 0.5 s;
* maximum packet lengths uniformly distributed between 128 and 4096 flits;
* deadlines equal to periods, zero release jitter;
* randomly selected sources and destinations;
* rate-monotonic priority assignment.

The paper reports latencies in cycles but never states the clock frequency
that converts the wall-clock periods; :class:`SyntheticConfig.clock_hz` is
therefore an explicit knob (see EXPERIMENTS.md for the calibration note).
With the 10 MHz default, the schedulability knee of every analysis falls
inside the paper's swept flow counts on both the 4×4 and 8×8 platforms,
while the shortest possible period (0.5 ms = 5000 cycles) still exceeds
the largest possible zero-load latency — no flow is infeasible in
isolation, so unschedulability is always a *contention* outcome.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flows.flow import Flow
from repro.flows.flowset import FlowSet
from repro.flows.priority import rate_monotonic
from repro.noc.platform import NoCPlatform
from repro.util.rng import spawn_rng


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the Section VI generator (defaults = the paper's)."""

    num_flows: int
    period_min_s: float = 0.5e-3
    period_max_s: float = 0.5
    length_min: int = 128
    length_max: int = 4096
    clock_hz: float = 10e6
    #: Draw periods log-uniformly instead of uniformly.  The paper says
    #: "uniformly distributed"; the log-uniform option exists for
    #: sensitivity studies (it concentrates more probability on short,
    #: hard-to-schedule periods).
    log_uniform_periods: bool = False
    allow_self_traffic: bool = False

    def __post_init__(self):
        if self.num_flows < 1:
            raise ValueError(f"need at least one flow, got {self.num_flows}")
        if not (0 < self.period_min_s <= self.period_max_s):
            raise ValueError(
                f"bad period range [{self.period_min_s}, {self.period_max_s}]"
            )
        if not (1 <= self.length_min <= self.length_max):
            raise ValueError(
                f"bad length range [{self.length_min}, {self.length_max}]"
            )
        if self.clock_hz <= 0:
            raise ValueError(f"clock must be positive, got {self.clock_hz}")
        if int(self.period_min_s * self.clock_hz) < 1:
            raise ValueError("period_min_s is below one clock cycle")


def synthetic_flows(
    config: SyntheticConfig,
    num_nodes: int,
    rng: np.random.Generator,
) -> list[Flow]:
    """Draw one flow set per the paper's Section VI recipe.

    Returns flows with rate-monotonic priorities already assigned.
    """
    if num_nodes < 2 and not config.allow_self_traffic:
        raise ValueError("need at least two nodes for src != dst traffic")
    period_lo = config.period_min_s * config.clock_hz
    period_hi = config.period_max_s * config.clock_hz
    flows: list[Flow] = []
    for index in range(config.num_flows):
        if config.log_uniform_periods:
            period = int(
                np.exp(rng.uniform(np.log(period_lo), np.log(period_hi)))
            )
        else:
            period = int(rng.uniform(period_lo, period_hi))
        period = max(period, 1)
        length = int(rng.integers(config.length_min, config.length_max + 1))
        src = int(rng.integers(num_nodes))
        if config.allow_self_traffic:
            dst = int(rng.integers(num_nodes))
        else:
            dst = int(rng.integers(num_nodes - 1))
            if dst >= src:
                dst += 1
        flows.append(
            Flow(
                name=f"f{index}",
                priority=index + 1,  # placeholder; replaced by RM below
                period=period,
                deadline=period,
                jitter=0,
                length=length,
                src=src,
                dst=dst,
            )
        )
    return rate_monotonic(flows)


def synthetic_flowset(
    platform: NoCPlatform,
    config: SyntheticConfig,
    *,
    seed: int,
    set_index: int = 0,
) -> FlowSet:
    """A reproducible synthetic flow set on ``platform``.

    ``seed``/``set_index`` feed the deterministic seed-derivation scheme,
    so set *k* of a campaign is identical no matter how many sets are
    generated around it.

    >>> from repro.noc import Mesh2D, NoCPlatform
    >>> platform = NoCPlatform(Mesh2D(4, 4), buf=2)
    >>> fs = synthetic_flowset(platform, SyntheticConfig(num_flows=10), seed=1)
    >>> len(fs)
    10
    """
    rng = spawn_rng(seed, "synthetic", config.num_flows, set_index)
    flows = synthetic_flows(config, platform.topology.num_nodes, rng)
    return FlowSet(platform, flows)
