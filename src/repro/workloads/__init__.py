"""Workload generators for the paper's experiments.

* :mod:`repro.workloads.didactic` — the three-flow scenario of Fig. 3 /
  Table I (Section V);
* :mod:`repro.workloads.synthetic` — random flow sets with the Section VI
  parameters (Figure 4);
* :mod:`repro.workloads.av_benchmark` — the autonomous-vehicle application
  substitute and its task graph (Figure 5);
* :mod:`repro.workloads.mapping` — random task-to-core mappings.
"""

from repro.workloads.didactic import didactic_flowset, didactic_platform
from repro.workloads.synthetic import SyntheticConfig, synthetic_flowset
from repro.workloads.av_benchmark import (
    AV_TASKS,
    AV_MESSAGES,
    av_flows,
    av_flowset,
)
from repro.workloads.mapping import random_mapping, map_flows

__all__ = [
    "didactic_flowset",
    "didactic_platform",
    "SyntheticConfig",
    "synthetic_flowset",
    "AV_TASKS",
    "AV_MESSAGES",
    "av_flows",
    "av_flowset",
    "random_mapping",
    "map_flows",
]
