"""Route algebra: link ordering and contention domains (paper Section II).

The paper defines, for a route ``route_i``:

* ``order(λ, route_i)`` — the 1-based position of link λ on the route;
* ``first(route_i)`` / ``last(route_i)`` — its first and last links;
* the contention domain of two flows, ``cd_ij = route_i ∩ route_j`` — the
  ordered set of links shared by both routes.

With dimension-order routing a contention domain is always a single
contiguous run of links appearing in the same relative order on both
routes, which is what makes "upstream"/"downstream" relations well defined.
:func:`contention_domain` checks this contiguity and refuses silently
ill-formed inputs rather than producing meaningless bounds.
"""

from __future__ import annotations

from typing import Sequence

Route = tuple[int, ...]


def order_of(link_id: int, route: Sequence[int]) -> int:
    """1-based position of ``link_id`` on ``route`` (paper's ``order``).

    >>> order_of(7, (3, 7, 9))
    2
    """
    try:
        return route.index(link_id) + 1  # type: ignore[attr-defined]
    except (ValueError, AttributeError):
        for position, lid in enumerate(route):
            if lid == link_id:
                return position + 1
        raise ValueError(f"link {link_id} not on route {route!r}") from None


def first_link(route: Sequence[int]) -> int:
    """First link of a non-empty route (paper's ``first``)."""
    if not route:
        raise ValueError("empty route has no first link")
    return route[0]


def last_link(route: Sequence[int]) -> int:
    """Last link of a non-empty route (paper's ``last``)."""
    if not route:
        raise ValueError("empty route has no last link")
    return route[-1]


def route_indices(route: Sequence[int]) -> dict[int, int]:
    """Map each link id on ``route`` to its 1-based order.

    Routes never repeat a link (they are simple paths), so the mapping is
    well defined; a repeated link indicates a broken routing function and
    raises ``ValueError``.
    """
    indices: dict[int, int] = {}
    for position, link_id in enumerate(route):
        if link_id in indices:
            raise ValueError(f"route {route!r} visits link {link_id} twice")
        indices[link_id] = position + 1
    return indices


def contention_domain(
    route_i: Sequence[int], route_j: Sequence[int], *, check_contiguous: bool = True
) -> Route:
    """Ordered set of links shared by two routes (paper's ``cd_ij``).

    The result is ordered by position on ``route_i``; with dimension-order
    routing the shared links appear in the same relative order on both
    routes.  When ``check_contiguous`` is set (the default) the function
    verifies that the shared links form one contiguous segment on *both*
    routes, the standing assumption of the paper ("we assume that a
    contention domain will never be a disjoint set of links").

    >>> contention_domain((1, 2, 3, 4), (9, 2, 3, 8))
    (2, 3)
    >>> contention_domain((1, 2), (3, 4))
    ()
    """
    shared = set(route_i) & set(route_j)
    if not shared:
        return ()
    positions_i = [p for p, lid in enumerate(route_i) if lid in shared]
    if check_contiguous:
        if positions_i[-1] - positions_i[0] + 1 != len(positions_i):
            raise ValueError(
                "contention domain is not contiguous on the first route: "
                f"{route_i!r} ∩ {route_j!r}"
            )
        positions_j = sorted(p for p, lid in enumerate(route_j) if lid in shared)
        if positions_j[-1] - positions_j[0] + 1 != len(positions_j):
            raise ValueError(
                "contention domain is not contiguous on the second route: "
                f"{route_i!r} ∩ {route_j!r}"
            )
        ordered_i = [route_i[p] for p in positions_i]
        ordered_j = [route_j[p] for p in positions_j]
        if ordered_i != ordered_j:
            raise ValueError(
                "shared links appear in different orders on the two routes "
                f"({ordered_i!r} vs {ordered_j!r}); dimension-order routing "
                "should make this impossible"
            )
    return tuple(route_i[p] for p in positions_i)
