"""Deterministic routing functions.

The paper assumes deterministic dimension-order routing ("all NoCs with
dimension-order routing (e.g. XY)", Section II), which guarantees that the
contention domain of any two flows is a contiguous run of links.  The
:class:`XYRouting` class implements XY routing over :class:`~repro.noc.topology.Mesh2D`;
:class:`RoutingFunction` is the small interface the rest of the library
depends on, so alternative deterministic routings can be plugged in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from weakref import WeakKeyDictionary

from repro.noc.topology import Mesh2D, Topology


class RoutingFunction(ABC):
    """Maps a (source node, destination node) pair to an ordered route.

    A route is the totally ordered tuple of link ids used to transfer
    packets from the source node to the destination node, *including* the
    injection link (node to router) and the ejection link (router to node),
    matching the paper's definition of ``route(π_a, π_b)``.

    The route of a node to itself is the empty tuple: such traffic never
    enters the network.

    Routes of the deterministic routings implemented here depend only on
    the topology wiring and the endpoints — never on the flow set or on
    router parameters — so :meth:`route` memoizes per ``(src, dst)`` pair
    in a table keyed by topology.  One routing-function instance shared by
    several platforms (the ``with_buffers`` variants of the sweep
    campaigns) therefore computes each route exactly once.  Topologies are
    immutable after construction, so entries never need invalidating; the
    table holds its topologies weakly so discarded meshes free their
    routes.
    """

    def __init__(self) -> None:
        self._route_tables: WeakKeyDictionary[
            Topology, dict[tuple[int, int], tuple[int, ...]]
        ] = WeakKeyDictionary()

    def __getstate__(self):
        # The memo table holds weak topology references and is not
        # picklable (nor worth shipping); platforms and flow sets must
        # stay picklable for multiprocessing fan-out, so drop it and let
        # the unpickled instance re-memoize.
        state = self.__dict__.copy()
        state.pop("_route_tables", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._route_tables = WeakKeyDictionary()

    def route_table(
        self, topology: Topology
    ) -> dict[tuple[int, int], tuple[int, ...]]:
        """The memo table for one topology (shared across platforms).

        Exposed so :class:`~repro.noc.platform.NoCPlatform` can hold a
        direct reference and skip the per-call weak lookup.
        """
        table = self._route_tables.get(topology)
        if table is None:
            table = self._route_tables[topology] = {}
        return table

    def route(self, topology: Topology, src: int, dst: int) -> tuple[int, ...]:
        """Ordered link ids from node ``src`` to node ``dst`` (memoized)."""
        table = self.route_table(topology)
        key = (src, dst)
        found = table.get(key)
        if found is None:
            found = self.compute_route(topology, src, dst)
            table[key] = found
        return found

    @abstractmethod
    def compute_route(
        self, topology: Topology, src: int, dst: int
    ) -> tuple[int, ...]:
        """Compute the route without consulting the memo table."""

    @abstractmethod
    def next_output(
        self, topology: Topology, router: int, dst: int
    ) -> tuple[str, int]:
        """Routing decision at ``router`` for a packet heading to node ``dst``.

        Returns ``("eject", node)`` when the packet has reached the
        destination's router, else ``("router", next_router)``.  This is the
        per-hop decision used by the cycle-accurate simulator, kept
        consistent with :meth:`route` by construction.
        """


class XYRouting(RoutingFunction):
    """Dimension-order XY routing on a 2D mesh.

    Packets first travel along the X dimension to the destination column,
    then along Y to the destination row.  XY routing is minimal and
    deadlock-free on meshes, and any two routes intersect in at most one
    contiguous segment — the property the paper's contention-domain
    reasoning relies on.
    """

    def compute_route(
        self, topology: Topology, src: int, dst: int
    ) -> tuple[int, ...]:
        mesh = self._require_mesh(topology)
        if not (0 <= src < mesh.num_nodes and 0 <= dst < mesh.num_nodes):
            raise ValueError(f"nodes ({src}, {dst}) outside {mesh!r}")
        if src == dst:
            return ()
        links = [mesh.injection_link(src)]
        x, y = mesh.coords(src)
        dst_x, dst_y = mesh.coords(dst)
        while x != dst_x:
            step = 1 if dst_x > x else -1
            links.append(mesh.router_link(mesh.index(x, y), mesh.index(x + step, y)))
            x += step
        while y != dst_y:
            step = 1 if dst_y > y else -1
            links.append(mesh.router_link(mesh.index(x, y), mesh.index(x, y + step)))
            y += step
        links.append(mesh.ejection_link(dst))
        return tuple(links)

    def next_output(
        self, topology: Topology, router: int, dst: int
    ) -> tuple[str, int]:
        mesh = self._require_mesh(topology)
        x, y = mesh.coords(router)
        dst_x, dst_y = mesh.coords(dst)
        if x != dst_x:
            step = 1 if dst_x > x else -1
            return "router", mesh.index(x + step, y)
        if y != dst_y:
            step = 1 if dst_y > y else -1
            return "router", mesh.index(x, y + step)
        return "eject", dst

    @staticmethod
    def _require_mesh(topology: Topology) -> Mesh2D:
        if not isinstance(topology, Mesh2D):
            raise TypeError(
                f"XY routing requires a Mesh2D topology, got {type(topology).__name__}"
            )
        return topology


class YXRouting(RoutingFunction):
    """Dimension-order YX routing: Y dimension first, then X.

    The mirror of :class:`XYRouting`; equally minimal and deadlock-free,
    with the same contiguous-contention-domain property, but producing
    different link sharing — useful for routing-sensitivity studies
    (two flow sets identical but for the routing function can differ in
    schedulability).
    """

    def compute_route(
        self, topology: Topology, src: int, dst: int
    ) -> tuple[int, ...]:
        mesh = XYRouting._require_mesh(topology)
        if not (0 <= src < mesh.num_nodes and 0 <= dst < mesh.num_nodes):
            raise ValueError(f"nodes ({src}, {dst}) outside {mesh!r}")
        if src == dst:
            return ()
        links = [mesh.injection_link(src)]
        x, y = mesh.coords(src)
        dst_x, dst_y = mesh.coords(dst)
        while y != dst_y:
            step = 1 if dst_y > y else -1
            links.append(mesh.router_link(mesh.index(x, y), mesh.index(x, y + step)))
            y += step
        while x != dst_x:
            step = 1 if dst_x > x else -1
            links.append(mesh.router_link(mesh.index(x, y), mesh.index(x + step, y)))
            x += step
        links.append(mesh.ejection_link(dst))
        return tuple(links)

    def next_output(
        self, topology: Topology, router: int, dst: int
    ) -> tuple[str, int]:
        mesh = XYRouting._require_mesh(topology)
        x, y = mesh.coords(router)
        dst_x, dst_y = mesh.coords(dst)
        if y != dst_y:
            step = 1 if dst_y > y else -1
            return "router", mesh.index(x, y + step)
        if x != dst_x:
            step = 1 if dst_x > x else -1
            return "router", mesh.index(x + step, y)
        return "eject", dst
