"""Network-on-chip platform model (paper Section II).

This package models the hardware substrate of the paper: a wormhole NoC with
priority-preemptive virtual channels, credit-based flow control and
dimension-order (XY) routing on a 2D mesh.

* :mod:`repro.noc.topology` — nodes Π, routers Ξ and unidirectional links Λ;
* :mod:`repro.noc.routing` — the ``route(π_s, π_d)`` function (XY);
* :mod:`repro.noc.links` — route algebra: ``order``, ``first``, ``last`` and
  contention domains ``cd_ij = route_i ∩ route_j``;
* :mod:`repro.noc.platform` — :class:`NoCPlatform`, bundling a topology with
  the router parameters ``vc``, ``buf``, ``linkl`` and ``routl``, and the
  zero-load latency of Equation 1.
"""

from repro.noc.topology import Link, LinkKind, Mesh2D, Topology, chain
from repro.noc.routing import XYRouting, YXRouting, RoutingFunction
from repro.noc.links import (
    contention_domain,
    first_link,
    last_link,
    order_of,
    route_indices,
)
from repro.noc.platform import NoCPlatform

__all__ = [
    "Link",
    "LinkKind",
    "Mesh2D",
    "Topology",
    "chain",
    "XYRouting",
    "YXRouting",
    "RoutingFunction",
    "contention_domain",
    "first_link",
    "last_link",
    "order_of",
    "route_indices",
    "NoCPlatform",
]
