"""The NoC platform: topology + router parameters (paper Section II).

A :class:`NoCPlatform` bundles a topology and a routing function with the
router parameters the analyses depend on:

* ``vc_count``  — number of virtual channels per input port, i.e. the
  number of distinct priority levels the router can arbitrate
  (``vc(Ξ)``).  ``None`` means "as many as the flow set needs", the
  standing assumption of the paper's analyses;
* ``buf``       — FIFO depth, in flits, of the buffer implementing a single
  VC (``buf(Ξ)``) — the quantity the paper's contribution revolves around;
* ``linkl``     — cycles for a router to transmit one flit over a link
  (``linkl(Ξ)``);
* ``routl``     — cycles for a router to route a header flit
  (``routl(Ξ)``).

The platform also implements Equation 1, the maximum zero-load latency.

Heterogeneous buffering: the paper's model defines ``buf(ξ_i)`` *per
router* before specialising to the homogeneous case its evaluation uses.
``buf_map`` optionally overrides the depth of individual routers; the
buffer-aware analysis and the simulator then use the per-link depth
(:meth:`NoCPlatform.buf_of_link`), and Equation 6 generalises to a sum of
per-link depths over the contention domain — identical to the paper's
``buf·linkl·|cd|`` whenever all routers agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.routing import RoutingFunction, XYRouting
from repro.noc.topology import Topology


@dataclass(frozen=True)
class NoCPlatform:
    """A homogeneous priority-preemptive wormhole NoC.

    >>> from repro.noc import Mesh2D
    >>> platform = NoCPlatform(Mesh2D(4, 4), buf=2)
    >>> len(platform.route(0, 5))   # injection + 1 X hop + 1 Y hop + ejection
    4
    """

    topology: Topology
    buf: int = 2
    linkl: int = 1
    routl: int = 0
    vc_count: int | None = None
    routing: RoutingFunction = field(default_factory=XYRouting)
    #: optional per-router buffer-depth overrides (router index -> flits);
    #: routers absent from the map use ``buf``.
    buf_map: dict[int, int] | None = None

    def __post_init__(self):
        if self.buf < 1:
            raise ValueError(f"buffers must hold at least one flit, got {self.buf}")
        if self.linkl < 1:
            raise ValueError(f"link latency must be >= 1 cycle, got {self.linkl}")
        if self.routl < 0:
            raise ValueError(f"routing latency must be >= 0 cycles, got {self.routl}")
        if self.vc_count is not None and self.vc_count < 1:
            raise ValueError(f"vc_count must be >= 1 when given, got {self.vc_count}")
        if self.buf_map is not None:
            for router, depth in self.buf_map.items():
                if not 0 <= router < self.topology.num_routers:
                    raise ValueError(f"buf_map names unknown router {router}")
                if depth < 1:
                    raise ValueError(
                        f"buf_map: router {router} depth must be >= 1, got {depth}"
                    )
        # Route cache: the routing function's per-topology memo table —
        # shared by every platform bound to the same (routing, topology)
        # pair, so buffer-variant copies reuse already-computed routes.
        # Frozen dataclass, so stash the reference via object.__setattr__.
        object.__setattr__(
            self, "_route_cache", self.routing.route_table(self.topology)
        )

    # -- buffer depths -------------------------------------------------------

    @property
    def is_homogeneous(self) -> bool:
        """True when every router uses the same per-VC depth ``buf``."""
        return not self.buf_map or all(
            depth == self.buf for depth in self.buf_map.values()
        )

    def buf_of_router(self, router: int) -> int:
        """Per-VC buffer depth of one router (``buf(ξ_i)``)."""
        if self.buf_map is not None:
            return self.buf_map.get(router, self.buf)
        return self.buf

    def buf_of_link(self, link_id: int) -> int:
        """Depth of the VC buffer associated with a link.

        Injection and router-to-router links terminate in an input buffer
        of the *downstream* router; ejection links are fed from the
        upstream router's buffering, so they take its depth (making the
        homogeneous case sum to the paper's ``buf·|cd|`` exactly).
        """
        from repro.noc.topology import LinkKind

        link = self.topology.link(link_id)
        if link.kind is LinkKind.EJECTION:
            return self.buf_of_router(link.src)
        return self.buf_of_router(link.dst)

    # -- routes ------------------------------------------------------------

    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """Ordered link ids from node ``src`` to node ``dst`` (cached)."""
        cache: dict[tuple[int, int], tuple[int, ...]] = self._route_cache  # type: ignore[attr-defined]
        key = (src, dst)
        found = cache.get(key)
        if found is None:
            found = self.routing.compute_route(self.topology, src, dst)
            cache[key] = found
        return found

    # -- Equation 1 ---------------------------------------------------------

    def zero_load_latency(self, route_length: int, length_flits: int) -> int:
        """Maximum zero-load network latency ``C_i`` (Equation 1).

        ``C_i = routl·(|route_i|−1) + linkl·|route_i| + linkl·(L_i−1)``:
        the header is routed at each of the ``|route_i|−1`` routers on the
        path and crosses each of the ``|route_i|`` links, then the remaining
        ``L_i−1`` payload flits arrive in pipeline, one per link latency.

        A zero-length route (source == destination) never enters the network
        and has zero latency.

        >>> from repro.noc import Mesh2D
        >>> NoCPlatform(Mesh2D(6, 1), buf=2).zero_load_latency(3, 60)
        62
        """
        if length_flits < 1:
            raise ValueError(f"packets have at least one flit, got {length_flits}")
        if route_length < 0:
            raise ValueError(f"route length must be >= 0, got {route_length}")
        if route_length == 0:
            return 0
        return (
            self.routl * (route_length - 1)
            + self.linkl * route_length
            + self.linkl * (length_flits - 1)
        )

    def zero_load_latency_of(self, src: int, dst: int, length_flits: int) -> int:
        """Equation 1 applied to the platform's own route ``src -> dst``."""
        return self.zero_load_latency(len(self.route(src, dst)), length_flits)

    # -- convenience --------------------------------------------------------

    def with_buffers(
        self, buf: int, buf_map: dict[int, int] | None = None
    ) -> "NoCPlatform":
        """A copy of this platform with different per-VC buffer depths.

        The paper's headline experiments (IBN2 vs IBN100) analyse the same
        traffic on platforms differing only in ``buf``; this helper keeps
        those comparisons terse and shares nothing mutable.  Pass
        ``buf_map`` to build a heterogeneous variant.
        """
        return NoCPlatform(
            topology=self.topology,
            buf=buf,
            linkl=self.linkl,
            routl=self.routl,
            vc_count=self.vc_count,
            routing=self.routing,
            buf_map=dict(buf_map) if buf_map else None,
        )

    def __repr__(self) -> str:
        return (
            f"NoCPlatform({self.topology!r}, buf={self.buf}, "
            f"linkl={self.linkl}, routl={self.routl})"
        )
