"""Topologies: nodes, routers and unidirectional links.

The paper models the network as a set of nodes ``Π``, routers ``Ξ`` and
unidirectional links ``Λ`` (Section II).  Each node is attached to exactly
one router through a dedicated pair of links (one per direction), and
routers are connected by pairs of unidirectional links.

Links are identified by dense integer ids so that routes are plain tuples of
``int`` and contention-domain computations are cheap set intersections.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LinkKind(enum.Enum):
    """Role of a unidirectional link.

    ``INJECTION`` links carry traffic from a node into its router (``λ_a1``
    in the paper's notation), ``EJECTION`` links from a router to its node
    (``λ_1a``), and ``ROUTER`` links connect two routers (``λ_12``).
    """

    INJECTION = "injection"
    EJECTION = "ejection"
    ROUTER = "router"


@dataclass(frozen=True)
class Link:
    """A unidirectional link.

    ``src`` and ``dst`` are router indices for ``ROUTER`` links.  For
    ``INJECTION`` links ``src`` is the node index and ``dst`` the router
    index (always equal in this model, since node *i* attaches to router
    *i*); vice versa for ``EJECTION`` links.
    """

    id: int
    kind: LinkKind
    src: int
    dst: int

    def __str__(self) -> str:
        if self.kind is LinkKind.INJECTION:
            return f"λ(n{self.src}→r{self.dst})"
        if self.kind is LinkKind.EJECTION:
            return f"λ(r{self.src}→n{self.dst})"
        return f"λ(r{self.src}→r{self.dst})"


class Topology:
    """Base class for NoC topologies.

    A topology owns the link table and provides index lookups; concrete
    subclasses (:class:`Mesh2D`) define the wiring.  Node *i* is always
    attached to router *i*.
    """

    def __init__(self, num_routers: int):
        if num_routers < 1:
            raise ValueError(f"need at least one router, got {num_routers}")
        self._num_routers = num_routers
        self._links: list[Link] = []
        self._router_link_ids: dict[tuple[int, int], int] = {}
        self._injection_ids: list[int] = []
        self._ejection_ids: list[int] = []
        self._build_node_links()

    # -- construction -----------------------------------------------------

    def _build_node_links(self) -> None:
        for node in range(self._num_routers):
            self._injection_ids.append(
                self._add_link(LinkKind.INJECTION, node, node)
            )
            self._ejection_ids.append(
                self._add_link(LinkKind.EJECTION, node, node)
            )

    def _add_link(self, kind: LinkKind, src: int, dst: int) -> int:
        link = Link(len(self._links), kind, src, dst)
        self._links.append(link)
        if kind is LinkKind.ROUTER:
            self._router_link_ids[(src, dst)] = link.id
        return link.id

    def _connect_routers(self, a: int, b: int) -> None:
        """Add the pair of unidirectional links between routers a and b."""
        self._add_link(LinkKind.ROUTER, a, b)
        self._add_link(LinkKind.ROUTER, b, a)

    # -- queries -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of processing nodes (equals the number of routers)."""
        return self._num_routers

    @property
    def num_routers(self) -> int:
        """Number of routers in the topology."""
        return self._num_routers

    @property
    def num_links(self) -> int:
        """Number of unidirectional links (injection/ejection included)."""
        return len(self._links)

    @property
    def links(self) -> tuple[Link, ...]:
        """All links, indexable by their ``link_id``."""
        return tuple(self._links)

    def link(self, link_id: int) -> Link:
        """Look a link up by id."""
        return self._links[link_id]

    def injection_link(self, node: int) -> int:
        """Id of the link from node ``node`` into its router."""
        return self._injection_ids[node]

    def ejection_link(self, node: int) -> int:
        """Id of the link from router ``node`` to its node."""
        return self._ejection_ids[node]

    def router_link(self, src_router: int, dst_router: int) -> int:
        """Id of the unidirectional link ``src_router -> dst_router``.

        Raises :class:`KeyError` if the routers are not adjacent.
        """
        return self._router_link_ids[(src_router, dst_router)]

    def router_neighbors(self, router: int) -> tuple[int, ...]:
        """Routers directly reachable from ``router``."""
        return tuple(
            dst for (src, dst) in self._router_link_ids if src == router
        )

    def to_networkx(self):
        """Export the router graph as a :mod:`networkx` DiGraph (for tests
        and ad-hoc analysis; the core library never depends on it)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(range(self._num_routers))
        graph.add_edges_from(self._router_link_ids)
        return graph


class Mesh2D(Topology):
    """A ``cols × rows`` 2D mesh, the paper's platform (Fig. 1).

    Router at mesh coordinate ``(x, y)`` has index ``y * cols + x``;
    coordinate ``(0, 0)`` is the bottom-left corner.  Each router connects
    to its 4-neighbourhood with pairs of unidirectional links.

    >>> mesh = Mesh2D(4, 4)
    >>> mesh.num_nodes
    16
    >>> mesh.coords(5)
    (1, 1)
    """

    def __init__(self, cols: int, rows: int):
        if cols < 1 or rows < 1:
            raise ValueError(f"mesh dimensions must be >= 1, got {cols}x{rows}")
        self.cols = cols
        self.rows = rows
        super().__init__(cols * rows)
        for y in range(rows):
            for x in range(cols):
                router = self.index(x, y)
                if x + 1 < cols:
                    self._connect_routers(router, self.index(x + 1, y))
                if y + 1 < rows:
                    self._connect_routers(router, self.index(x, y + 1))

    def index(self, x: int, y: int) -> int:
        """Router index of mesh coordinate ``(x, y)``."""
        if not (0 <= x < self.cols and 0 <= y < self.rows):
            raise ValueError(
                f"coordinate ({x}, {y}) outside {self.cols}x{self.rows} mesh"
            )
        return y * self.cols + x

    def coords(self, router: int) -> tuple[int, int]:
        """Mesh coordinate ``(x, y)`` of a router index."""
        if not (0 <= router < self.num_routers):
            raise ValueError(f"router {router} outside mesh")
        return router % self.cols, router // self.cols

    def __repr__(self) -> str:
        return f"Mesh2D({self.cols}x{self.rows})"


def chain(length: int) -> Mesh2D:
    """A 1×``length`` chain of routers — the topology of the paper's Fig. 3.

    >>> chain(6).num_nodes
    6
    """
    return Mesh2D(length, 1)
