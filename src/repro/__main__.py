"""Top-level command line: analyse flow-set files and run campaigns.

Usage::

    python -m repro analyze traffic.json                  # IBN by default
    python -m repro analyze traffic.json --analysis all --buf 16
    python -m repro sizing traffic.json                   # buffer headroom
    python -m repro experiments fig4a --scale default     # campaign runner
    python -m repro experiments validate --workers 4      # sim vs bounds

``analyze`` reads the JSON format of :mod:`repro.io`; ``experiments``
forwards to :mod:`repro.experiments.runner` (its ``validate`` campaign
sweeps simulated worst cases against the SB/IBN/XLWX bounds across
buffer depths; honour ``REPRO_SCALE=ci|default|paper`` or ``--scale``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.analyses.ibn import IBNAnalysis
from repro.core.analyses.kim98 import Kim98Analysis
from repro.core.analyses.sb import SBAnalysis
from repro.core.analyses.xlw16 import XLW16Analysis
from repro.core.analyses.xlwx import XLWXAnalysis
from repro.core.engine import analyze, compare
from repro.core.report import comparison_table, result_table
from repro.core.sizing import (
    length_scaling_margin,
    max_schedulable_buffer_depth,
    slack_table,
)
from repro.io import load_flowset, result_to_dict

_ANALYSES = {
    "kim98": Kim98Analysis,
    "sb": SBAnalysis,
    "xlw16": XLW16Analysis,
    "xlwx": XLWXAnalysis,
    "ibn": IBNAnalysis,
}


def _load(path: str, buf: int | None):
    flowset = load_flowset(path)
    if buf is not None:
        flowset = flowset.on_platform(flowset.platform.with_buffers(buf))
    return flowset


def cmd_analyze(args) -> int:
    """``analyze``: bound a flow-set file; exit 1 on a deadline miss."""
    flowset = _load(args.flowset, args.buf)
    if args.analysis == "all":
        results = compare(
            flowset,
            [SBAnalysis(), XLW16Analysis(), XLWXAnalysis(), IBNAnalysis()],
        )
        print(comparison_table(results))
        print("\n(SB and XLW16 are optimistic under MPB - reference only)")
        worst = results[f"IBN{flowset.platform.buf}"]
    else:
        analysis = _ANALYSES[args.analysis]()
        worst = analyze(flowset, analysis, stop_at_deadline=False)
        print(result_table(worst))
    if args.json:
        print(json.dumps(result_to_dict(worst), indent=2, sort_keys=True))
    return 0 if worst.schedulable else 1


def cmd_sizing(args) -> int:
    """``sizing``: slack, buffer-depth and payload headroom of a file."""
    flowset = _load(args.flowset, args.buf)
    print(slack_table(flowset))
    print()
    depth = max_schedulable_buffer_depth(flowset, hi=args.max_depth)
    if depth.max_depth is None:
        print("buffer sizing: unschedulable even with 1-flit buffers")
    elif depth.unbounded_within_range:
        print(f"buffer sizing: schedulable at every depth up to {args.max_depth}")
    else:
        print(f"buffer sizing: deepest schedulable per-VC buffer = "
              f"{depth.max_depth} flits")
    margin = length_scaling_margin(flowset)
    print(f"payload margin: packets can scale by x{margin:.2f} before the "
          "IBN verdict flips")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Worst-case NoC latency analysis (DATE'18 IBN reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="bound a flow-set file")
    p_analyze.add_argument("flowset", help="JSON flow-set file (see repro.io)")
    p_analyze.add_argument(
        "--analysis", choices=[*_ANALYSES, "all"], default="ibn"
    )
    p_analyze.add_argument(
        "--buf", type=int, default=None,
        help="override the platform's per-VC buffer depth",
    )
    p_analyze.add_argument(
        "--json", action="store_true", help="also dump the result as JSON"
    )
    p_analyze.set_defaults(func=cmd_analyze)

    p_sizing = sub.add_parser(
        "sizing", help="buffer-depth and payload headroom of a flow-set file"
    )
    p_sizing.add_argument("flowset")
    p_sizing.add_argument("--buf", type=int, default=None)
    p_sizing.add_argument("--max-depth", type=int, default=1024)
    p_sizing.set_defaults(func=cmd_sizing)

    p_exp = sub.add_parser("experiments", help="paper campaign runner")
    p_exp.add_argument("rest", nargs=argparse.REMAINDER)
    p_exp.set_defaults(func=None)

    args = parser.parse_args(argv)
    if args.command == "experiments":
        from repro.experiments.runner import main as runner_main

        return runner_main(args.rest)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
