"""Top-level command line: analyse flow-set files and run campaigns.

Usage::

    python -m repro analyze traffic.json                  # IBN by default
    python -m repro analyze traffic.json --analysis all --buf 16
    python -m repro sizing traffic.json                   # buffer headroom
    python -m repro allocate traffic.json --hi 8          # buffer allocation
    python -m repro experiments fig4a --scale default     # campaign runner
    python -m repro experiments validate --workers 4      # sim vs bounds
    python -m repro campaign spec.json --run-dir runs/x   # declarative run
    python -m repro serve --port 8177 --workers 4         # HTTP service
    python -m repro cluster --frontends 4 --port 8177     # sharded cluster
    python -m repro stored cluster-state/shard-00         # one store shard
    python -m repro backend --probe                       # backend status
    python -m repro --backend cext analyze traffic.json   # compiled kernels

``analyze`` reads the JSON format of :mod:`repro.io`; ``experiments``
forwards to :mod:`repro.experiments.runner` (its ``validate`` campaign
sweeps simulated worst cases against the SB/IBN/XLWX bounds across
buffer depths; honour ``REPRO_SCALE=ci|default|paper`` or ``--scale``).
``campaign`` runs a declarative :class:`repro.campaigns.CampaignSpec`
JSON document on the campaign engine: ``--run-dir`` makes the run
resumable (re-running skips every job already in the content-addressed
result store), ``--csv-dir``/``--json-dir`` select exporters, and
``--dry-run`` prints the expanded job list without running anything.
``serve`` exposes all of the above as JSON endpoints
(:mod:`repro.serve`): ``POST /analyze``, ``POST /sizing``,
``POST /campaign`` + ``GET /campaign/<id>``, ``GET /healthz``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.analyses import (
    ALL_COMPARISON,
    ANALYSES_BY_NAME,
    analysis_by_name,
)
from repro.core.engine import analyze, compare
from repro.core.report import comparison_table, result_table
from repro.core.sizing import (
    length_scaling_margin,
    max_schedulable_buffer_depth,
    sizing_summary,
    slack_table,
)
from repro.io import load_flowset, result_to_dict

#: CLI selector -> analysis class (shared with the serving layer).
_ANALYSES = ANALYSES_BY_NAME


def _load(path: str, buf: int | None):
    flowset = load_flowset(path)
    if buf is not None:
        flowset = flowset.on_platform(flowset.platform.with_buffers(buf))
    return flowset


def cmd_analyze(args) -> int:
    """``analyze``: bound a flow-set file; exit 1 on a deadline miss."""
    flowset = _load(args.flowset, args.buf)
    if args.analysis == "all":
        results = compare(
            flowset, [analysis_by_name(name) for name in ALL_COMPARISON]
        )
        print(comparison_table(results))
        print("\n(SB and XLW16 are optimistic under MPB - reference only)")
        worst = results[f"IBN{flowset.platform.buf}"]
    else:
        analysis = analysis_by_name(args.analysis)
        worst = analyze(flowset, analysis, stop_at_deadline=False)
        print(result_table(worst))
    if args.json:
        print(json.dumps(result_to_dict(worst), indent=2, sort_keys=True))
    return 0 if worst.schedulable else 1


def cmd_sizing(args) -> int:
    """``sizing``: slack, buffer-depth and payload headroom of a file."""
    flowset = _load(args.flowset, args.buf)
    if args.json:
        print(json.dumps(
            sizing_summary(flowset, max_depth=args.max_depth),
            indent=2, sort_keys=True,
        ))
        return 0
    print(slack_table(flowset))
    print()
    depth = max_schedulable_buffer_depth(flowset, hi=args.max_depth)
    if depth.max_depth is None:
        print("buffer sizing: unschedulable even with 1-flit buffers")
    elif depth.unbounded_within_range:
        print(f"buffer sizing: schedulable at every depth up to {args.max_depth}")
    else:
        print(f"buffer sizing: deepest schedulable per-VC buffer = "
              f"{depth.max_depth} flits")
    margin = length_scaling_margin(flowset)
    print(f"payload margin: packets can scale by x{margin:.2f} before the "
          "IBN verdict flips")
    return 0


def cmd_allocate(args) -> int:
    """``allocate``: minimum-cost schedulable buffer allocation of a file.

    Exit code 1 when no allocation in the depth range (and budget) keeps
    the set schedulable.  ``--json`` prints the same document ``POST
    /allocate`` and the ``allocation`` campaign kind produce.
    """
    from repro.core.allocate import allocation_summary

    flowset = _load(args.flowset, None)
    cost_model = json.loads(args.cost_model) if args.cost_model else None
    try:
        summary = allocation_summary(
            flowset,
            analysis_name=args.analysis,
            lo=args.lo,
            hi=args.hi,
            cost_model=cost_model,
            budget=args.budget,
            max_evaluations=args.max_evaluations,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0 if summary["allocation"]["feasible"] else 1
    allocation = summary["allocation"]
    search = summary["search"]
    model = summary["spec"]["cost_model"]
    print(
        f"allocation under {args.analysis} "
        f"(depths {args.lo}..{args.hi}, cost model {model['kind']}):"
    )
    if not allocation["feasible"]:
        print("  infeasible: no depth assignment keeps the set schedulable")
        return 1
    for router, depth in allocation["buf_map"].items():
        marker = "*" if int(router) in search["relevant_routers"] else " "
        print(f"  router {router:>3} {marker} depth {depth}")
    print(
        f"cost {allocation['cost']}  total depth {allocation['total_depth']}"
        f"  ({'certified optimum' if allocation['certified'] else 'best found'}"
        f", {search['evaluations']} evaluations in "
        f"{search['frontiers']} batched frontiers; * = contended router)"
    )
    return 0


def cmd_campaign(args) -> int:
    """``campaign``: run a declarative spec file on the campaign engine."""
    from repro.campaigns.engine import expand_jobs, run_campaign
    from repro.campaigns.export import CsvExporter, JsonExporter, TextExporter
    from repro.campaigns.progress import stderr_progress
    from repro.campaigns.scheduler import FaultPolicy
    from repro.campaigns.spec import load_spec

    spec = load_spec(args.spec)
    if args.dry_run:
        jobs = expand_jobs(spec)
        print(f"campaign {spec.name!r} (kind={spec.kind}): {len(jobs)} jobs")
        for job in jobs:
            print(f"  {job.job_id[:12]}  {job.label or job.kind}")
        return 0
    run = run_campaign(
        spec,
        store=args.run_dir,
        workers=args.workers,
        progress=stderr_progress,
        faults=FaultPolicy(
            retries=args.retries, job_timeout_s=args.job_timeout
        ),
    )
    TextExporter().export(run)
    if args.csv_dir is not None:
        CsvExporter(args.csv_dir).export(run)
    if args.json_dir is not None:
        JsonExporter(args.json_dir).export(run)
    stats = run.stats
    line = (
        f"[{stats.jobs_total} jobs: {stats.jobs_run} run, "
        f"{stats.jobs_skipped} resumed from store"
    )
    if stats.jobs_quarantined:
        line += f", {stats.jobs_quarantined} quarantined"
    if stats.retries:
        line += f", {stats.retries} retries"
    line += f", {stats.elapsed_s:.1f}s]"
    print(line, file=sys.stderr)
    # A partial campaign produced an artefact with holes: succeed-ish
    # output, non-zero exit so scripts notice.
    return 1 if run.partial else 0


def cmd_backend(args) -> int:
    """``backend``: compiled-backend availability, build status, probes."""
    from repro.core import backend as backend_mod

    rows = backend_mod.backend_infos()
    for info in rows:
        marker = "*" if info["active"] else " "
        kernels = ", ".join(info["kernels"]) or "none (built-in paths)"
        state = "available" if info["available"] else "unavailable"
        print(f"{marker} {info['name']:<8} {state:<12} kernels: {kernels}")
        print(f"           {info['detail']}")
    if args.probe:
        print()
        for line in _backend_probe(backend_mod):
            print(line)
    return 0


def _backend_probe(backend_mod) -> list[str]:
    """One-shot micro-probe: a tiny batch and a tiny simulation per
    available backend, CPU-timed (relative numbers only — the workloads
    are sized to finish fast, not to saturate the kernels)."""
    import time

    from repro.core.analyses.ibn import IBNAnalysis
    from repro.core.batch import Scenario, analyze_batch
    from repro.noc.platform import NoCPlatform
    from repro.noc.topology import Mesh2D
    from repro.flows.flowset import FlowSet
    from repro.sim.simulator import WormholeSimulator
    from repro.sim.traffic import PeriodicReleases
    from repro.util.rng import spawn_rng
    from repro.workloads.synthetic import SyntheticConfig, synthetic_flows

    platform = NoCPlatform(Mesh2D(4, 4), buf=2)
    flowsets = []
    for index in range(8):
        rng = spawn_rng(20180319, "backend-probe", index)
        flows = synthetic_flows(
            SyntheticConfig(num_flows=48),
            platform.topology.num_nodes,
            rng,
        )
        flowsets.append(FlowSet(platform, flows))
    sim_flowset = flowsets[0]
    horizon = max(f.period for f in sim_flowset.flows) // 8
    lines = [f"{'backend':<8} {'batch(8x48)':>12} {'sim(4x4)':>12}"]
    for name in backend_mod.available_backend_names():
        with backend_mod.use_backend(name):
            analyze_batch([Scenario(f, IBNAnalysis()) for f in flowsets])
            t0 = time.process_time()
            analyze_batch([Scenario(f, IBNAnalysis()) for f in flowsets])
            batch_s = time.process_time() - t0
            WormholeSimulator(sim_flowset, PeriodicReleases()).run(horizon)
            t0 = time.process_time()
            WormholeSimulator(sim_flowset, PeriodicReleases()).run(horizon)
            sim_s = time.process_time() - t0
        lines.append(f"{name:<8} {batch_s * 1e3:>10.1f}ms {sim_s * 1e3:>10.1f}ms")
    return lines


def cmd_serve(args) -> int:
    """``serve``: run the HTTP analysis service until interrupted."""
    from repro.serve.server import run_server
    from repro.serve.service import ServeConfig

    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            cache_size=args.cache_size,
            run_dir=args.run_dir,
            batch_window_s=args.batch_window,
            request_timeout_s=args.request_timeout,
            rebuild_cooldown_s=args.rebuild_cooldown,
            drain_timeout_s=args.drain_timeout,
            store_addrs=tuple(args.store),
            max_inflight=args.max_inflight,
            backend=args.backend,
        )
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    return run_server(config)


def cmd_cluster(args) -> int:
    """``cluster``: run the supervised multi-process serving cluster."""
    from repro.serve.cluster import ClusterConfig, run_cluster

    try:
        config = ClusterConfig(
            frontends=args.frontends,
            host=args.host,
            port=args.port,
            store_dir=args.store_dir,
            store_shards=args.store_shards,
            store_group=args.store_group,
            store_ack_mode=args.store_ack_mode,
            store_fsync=args.store_fsync,
            workers=args.workers,
            cache_size=args.cache_size,
            max_inflight=args.max_inflight,
            request_timeout_s=args.request_timeout,
            health_interval_s=args.health_interval,
            backoff_cap_s=args.backoff_cap,
            listener=args.listener,
            drain_timeout_s=args.drain_timeout,
        )
    except ValueError as exc:
        print(f"cluster: {exc}", file=sys.stderr)
        return 2
    return run_cluster(config)


def cmd_stored(args) -> int:
    """``stored``: run one standalone store-daemon shard."""
    from repro.serve.stored import run_stored

    return run_stored(
        args.directory,
        host=args.host,
        port=args.port,
        replica_of=args.replica_of,
        ack_mode=args.ack_mode,
        fsync=args.fsync,
        max_connections=args.max_connections,
        idle_timeout_s=args.idle_timeout if args.idle_timeout > 0 else None,
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Worst-case NoC latency analysis (DATE'18 IBN reproduction)",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="compute backend for every command (numpy or cext); "
             "overrides REPRO_BACKEND, falls back to numpy when the "
             "compiled extension is unavailable",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="bound a flow-set file")
    p_analyze.add_argument("flowset", help="JSON flow-set file (see repro.io)")
    p_analyze.add_argument(
        "--analysis", choices=[*_ANALYSES, "all"], default="ibn"
    )
    p_analyze.add_argument(
        "--buf", type=int, default=None,
        help="override the platform's per-VC buffer depth",
    )
    p_analyze.add_argument(
        "--json", action="store_true", help="also dump the result as JSON"
    )
    p_analyze.set_defaults(func=cmd_analyze)

    p_sizing = sub.add_parser(
        "sizing", help="buffer-depth and payload headroom of a flow-set file"
    )
    p_sizing.add_argument("flowset")
    p_sizing.add_argument("--buf", type=int, default=None)
    p_sizing.add_argument("--max-depth", type=int, default=1024)
    p_sizing.add_argument(
        "--json", action="store_true",
        help="print the machine-readable sizing summary instead of tables",
    )
    p_sizing.set_defaults(func=cmd_sizing)

    p_allocate = sub.add_parser(
        "allocate",
        help="minimum-cost schedulable buffer allocation of a flow-set file",
    )
    p_allocate.add_argument("flowset")
    p_allocate.add_argument(
        "--analysis", choices=sorted(_ANALYSES), default="ibn"
    )
    p_allocate.add_argument(
        "--lo", type=int, default=1, help="shallowest depth considered"
    )
    p_allocate.add_argument(
        "--hi", type=int, default=8, help="deepest depth considered"
    )
    p_allocate.add_argument(
        "--budget", type=int, default=None,
        help="cap on the total buffer depth across all routers",
    )
    p_allocate.add_argument(
        "--cost-model", default=None, metavar="JSON",
        help='cost model document, e.g. \'{"kind": "shallowness", '
             '"target": 8}\' (default) or \'{"kind": "depth"}\'',
    )
    p_allocate.add_argument(
        "--max-evaluations", type=int, default=None,
        help="evaluation cap; a capped run returns its best incumbent "
             "uncertified",
    )
    p_allocate.add_argument(
        "--json", action="store_true",
        help="print the machine-readable allocation document (identical "
             "to POST /allocate)",
    )
    p_allocate.set_defaults(func=cmd_allocate)

    p_exp = sub.add_parser("experiments", help="paper campaign runner")
    p_exp.add_argument("rest", nargs=argparse.REMAINDER)
    p_exp.set_defaults(func=None)

    p_campaign = sub.add_parser(
        "campaign", help="run a declarative campaign spec (JSON file)"
    )
    p_campaign.add_argument("spec", help="campaign spec JSON (see repro.campaigns)")
    p_campaign.add_argument(
        "--workers", type=int, default=1, help="worker processes"
    )
    p_campaign.add_argument(
        "--run-dir", default=None,
        help="result-store directory; reuse it to resume a killed run",
    )
    p_campaign.add_argument(
        "--csv-dir", default=None, help="write <name>.csv here"
    )
    p_campaign.add_argument(
        "--json-dir", default=None, help="write <name>.json here"
    )
    p_campaign.add_argument(
        "--dry-run", action="store_true",
        help="print the expanded job list instead of running",
    )
    p_campaign.add_argument(
        "--retries", type=int, default=2,
        help="re-executions per failing job before it is quarantined "
             "(default 2: each job runs at most 3 times)",
    )
    p_campaign.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per job block; hung blocks are killed, "
             "retried, and eventually quarantined (default: unlimited)",
    )
    p_campaign.set_defaults(func=cmd_campaign)

    p_serve = sub.add_parser(
        "serve", help="run the HTTP analysis service (see repro.serve)"
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (0.0.0.0 accepts remote clients)",
    )
    p_serve.add_argument(
        "--port", type=int, default=8177,
        help="TCP port (0 picks an ephemeral port)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=0,
        help="job worker processes; 0 runs jobs in-process on threads",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=256,
        help="entries kept in the in-memory LRU result cache",
    )
    p_serve.add_argument(
        "--run-dir", default=None,
        help="persist query results and campaign stores here "
             "(a restarted server answers warm)",
    )
    p_serve.add_argument(
        "--batch-window", type=float, default=0.0, metavar="SECONDS",
        help="how long the analyze micro-batcher waits before flushing "
             "queued cache misses as one batched kernel call "
             "(0 = next event-loop tick)",
    )
    p_serve.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="per-request compute deadline: requests still running after "
             "this long get 504 (default: unlimited)",
    )
    p_serve.add_argument(
        "--rebuild-cooldown", type=float, default=0.5, metavar="SECONDS",
        help="backpressure window after a worker-pool rebuild during "
             "which cache-miss requests get 503 + Retry-After",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="on SIGTERM, how long to let in-flight requests finish "
             "before forcing connections closed",
    )
    p_serve.add_argument(
        "--store", action="append", default=[], metavar="HOST:PORT",
        help="store-daemon shard address (repeatable); switches the "
             "query tier to the shared cluster store",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=0,
        help="admission bound on concurrent compute requests; beyond it "
             "requests are shed with 429 + Retry-After (0 = unbounded)",
    )
    p_serve.add_argument(
        "--backend", default=None, metavar="NAME",
        help="compute backend for the service and its workers "
             "(numpy or cext; default: REPRO_BACKEND or numpy)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_backend = sub.add_parser(
        "backend",
        help="list compute backends, availability and build status",
    )
    p_backend.add_argument(
        "--probe", action="store_true",
        help="also time a tiny batch analysis and simulation per "
             "available backend",
    )
    p_backend.set_defaults(func=cmd_backend)

    p_cluster = sub.add_parser(
        "cluster",
        help="run the supervised multi-process serving cluster "
             "(see repro.serve.cluster)",
    )
    p_cluster.add_argument(
        "--frontends", type=int, default=2,
        help="front-end server processes sharing the listener",
    )
    p_cluster.add_argument(
        "--host", default="127.0.0.1", help="bind address",
    )
    p_cluster.add_argument(
        "--port", type=int, default=8177,
        help="shared TCP port (0 picks an ephemeral port)",
    )
    p_cluster.add_argument(
        "--store-dir", default="cluster-state",
        help="root directory of the shared result tier "
             "(shard i persists under <dir>/shard-<i>)",
    )
    p_cluster.add_argument(
        "--store-shards", type=int, default=1,
        help="store-daemon processes the job hashes shard over",
    )
    p_cluster.add_argument(
        "--store-group", action="store_true",
        help="run each shard as a replicated primary+backup group with "
             "supervisor-driven failover",
    )
    p_cluster.add_argument(
        "--store-ack-mode", choices=["local", "replicated"],
        default="replicated",
        help="with --store-group: ack puts after the backup confirmed "
             "(replicated) or after the local append (local)",
    )
    p_cluster.add_argument(
        "--store-fsync", choices=["none", "batch", "always"],
        default="none",
        help="fsync policy of the shard stores",
    )
    p_cluster.add_argument(
        "--workers", type=int, default=0,
        help="job worker processes per front-end "
             "(0 runs jobs in-process on threads)",
    )
    p_cluster.add_argument(
        "--cache-size", type=int, default=256,
        help="LRU entries per front-end, in front of the shard store",
    )
    p_cluster.add_argument(
        "--max-inflight", type=int, default=64,
        help="per-front-end admission bound; excess compute requests "
             "are shed with 429 + Retry-After",
    )
    p_cluster.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="per-request compute deadline (504 past it)",
    )
    p_cluster.add_argument(
        "--health-interval", type=float, default=0.25, metavar="SECONDS",
        help="seconds between supervisor health pings",
    )
    p_cluster.add_argument(
        "--backoff-cap", type=float, default=5.0, metavar="SECONDS",
        help="upper bound on the capped-exponential restart delay",
    )
    p_cluster.add_argument(
        "--listener", choices=["auto", "reuseport", "shared"],
        default="auto",
        help="listener strategy: SO_REUSEPORT per front-end, one "
             "inherited shared listener, or auto-detect",
    )
    p_cluster.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="graceful-drain budget per front-end on stop",
    )
    p_cluster.set_defaults(func=cmd_cluster)

    p_stored = sub.add_parser(
        "stored",
        help="run one standalone store-daemon shard "
             "(see repro.serve.stored)",
    )
    p_stored.add_argument(
        "directory", help="JSONL result-store directory this shard owns",
    )
    p_stored.add_argument(
        "--host", default="127.0.0.1", help="bind address",
    )
    p_stored.add_argument(
        "--port", type=int, default=8178,
        help="TCP port of the length-prefixed store protocol",
    )
    p_stored.add_argument(
        "--replica-of", default=None, metavar="HOST:PORT",
        help="run as a backup tailing this primary's log (reads only "
             "until promoted)",
    )
    p_stored.add_argument(
        "--ack-mode", choices=["local", "replicated"], default="local",
        help="when a replica is attached, delay put acks until it "
             "confirmed the record (replicated) or ack locally (local)",
    )
    p_stored.add_argument(
        "--fsync", choices=["none", "batch", "always"], default="none",
        help="fsync policy on the store file",
    )
    p_stored.add_argument(
        "--max-connections", type=int, default=256,
        help="connection cap; excess clients get a polite error frame",
    )
    p_stored.add_argument(
        "--idle-timeout", type=float, default=60.0, metavar="SECONDS",
        help="drop connections idle this long (0 disables)",
    )
    p_stored.set_defaults(func=cmd_stored)

    args = parser.parse_args(argv)
    if args.backend is not None:
        from repro.core import backend as backend_mod

        try:
            backend_mod.set_backend(args.backend)
        except ValueError as exc:
            print(f"--backend: {exc}", file=sys.stderr)
            return 2
    if args.command == "experiments":
        from repro.experiments.runner import main as runner_main

        return runner_main(args.rest)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
