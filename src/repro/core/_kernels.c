/* Compiled hot-path kernels behind the backend seam (repro.core.backend).
 *
 * Two kernels, both consuming the exact flat arrays their Python
 * counterparts already build, so results are byte-identical by
 * construction and the equivalence suites can pin every backend to the
 * scalar oracle:
 *
 *   repro_solve_rows — one priority level's ceiling-recurrence fixed
 *     points for all (scenario, flow) rows of a batch at once; the C
 *     twin of repro.core.batch._solve_rows.  Each row is independent,
 *     so the ~10 numpy kernel launches per shared iteration collapse
 *     into one tight per-row loop.
 *
 *   repro_sim_run — the wormhole simulator's event loop (arrivals,
 *     credits, wakes, releases, per-link priority arbitration,
 *     next-event time jumps) over the flat NetworkState arrays; the C
 *     twin of repro.sim.simulator.WormholeSimulator's drain loop.
 *
 * Integer semantics must match numpy's int64 exactly: compile with
 * -fwrapv so signed overflow wraps two's-complement (numpy behaviour),
 * and use the same floor/ceil division formulation as the Python code.
 *
 * The file doubles as a ctypes library (plain exported symbols, built
 * on demand by repro.core._cbuild with any C compiler) and as an
 * importable-but-empty CPython extension when built via setup.py,
 * which defines REPRO_BUILD_PYMODULE.  Bump REPRO_KERNELS_ABI whenever
 * an exported signature or its semantics change; the loader refuses
 * artifacts with a different ABI stamp.
 */

#include <stdint.h>
#include <stddef.h>

#define REPRO_KERNELS_ABI 1

#if defined(_WIN32)
#define REPRO_EXPORT __declspec(dllexport)
#else
#define REPRO_EXPORT __attribute__((visibility("default")))
#endif

REPRO_EXPORT int64_t repro_abi_version(void) { return REPRO_KERNELS_ABI; }

/* ceil(a / b) for b > 0, matching numpy's -((-a) // b) (floor division)
 * for every non-wrapping input; avoids the (a + b - 1) overflow. */
static inline int64_t ceil_div_i64(int64_t a, int64_t b) {
    int64_t x = -a;
    int64_t q = x / b;
    if ((x % b) != 0 && x < 0) q -= 1;
    return -q;
}

/* ------------------------------------------------------------------ */
/* Kernel 1: the batched ceiling recurrence (core/batch.py level loop) */
/* ------------------------------------------------------------------ */

/* Row r's interference pairs are the contiguous run counts[0..r) long
 * prefix-summed into wj/period/cost.  Semantics mirror _solve_rows
 * exactly: unsafe beats convergence beats warm restart beats give-up;
 * converged rows keep the fixed point, overrun rows keep the first
 * iterate beyond their give-up, failed warm attempts replay cold. */
REPRO_EXPORT void repro_solve_rows(
    int64_t nrows,
    const int64_t *start, const uint8_t *warm_active,
    const int64_t *base, const int64_t *give, const int64_t *cold,
    const int64_t *wj, const int64_t *period, const int64_t *cost,
    const int64_t *counts,
    int64_t safe_response, int64_t max_iterations,
    int64_t *out_r, uint8_t *out_conv,
    int64_t *out_iters, uint8_t *out_unsafe)
{
    int64_t off = 0;
    for (int64_t row = 0; row < nrows; row++) {
        const int64_t cnt = counts[row];
        const int64_t *wjp = wj + off;
        const int64_t *tp = period + off;
        const int64_t *cp = cost + off;
        off += cnt;
        int64_t r = start[row];
        int warm = warm_active[row] != 0;
        const int64_t b = base[row];
        const int64_t g = give[row];
        const int64_t c0 = cold[row];
        int64_t iters = 0;
        int64_t res = 0;
        uint8_t conv = 0, unsafe = 0;
        for (;;) {
            iters++;
            int64_t r_new = b;
            for (int64_t p = 0; p < cnt; p++) {
                r_new += ceil_div_i64(r + wjp[p], tp[p]) * cp[p];
            }
            const int cv = (r_new == r);
            int uns = (r_new > safe_response) || (r_new < b);
            if (iters >= max_iterations && !cv) uns = 1;
            if (uns) { unsafe = 1; break; }
            if (cv) { res = r; conv = 1; break; }
            if (warm && (r_new < r || r_new > g)) { r = c0; warm = 0; continue; }
            if (r_new > g) { res = r_new; break; }   /* give-up, cold row */
            r = r_new;
        }
        out_r[row] = res;
        out_conv[row] = conv;
        out_iters[row] = iters;
        out_unsafe[row] = unsafe;
    }
}

/* ------------------------------------------------------------------ */
/* Kernel 1b: the whole level loop of _run_batch in one call           */
/* ------------------------------------------------------------------ */

/* Everything after the batch composition and before materialisation:
 * per level, per live row — window jitters, downstream terms (XLWX
 * sums / IBN Equation-8 recounts with the buffer-bound cap), the
 * fixed point, the totals cache, taint propagation, early-exit and
 * unsafe-diversion retirement.  Rows read only strictly-lower levels
 * (pair_j/down targets have higher priority), so the sequential sweep
 * is observationally identical to numpy's level-parallel one.
 *
 * Modes must match repro.core.batch: SB=0, XLWX=1, IBN=2. */

/* lparams[] layout (int64): */
enum {
    L_MAX_F = 0, L_EARLY_EXIT, L_SAFE, L_MAX_ITER, L_COUNT
};

REPRO_EXPORT void repro_run_levels(
    const int64_t *lparams,
    const int64_t *level_slot_bounds,   /* max_f+1 (or more) */
    const int64_t *slot_perm,           /* level-major slot ids */
    const int64_t *slot_scn,            /* per slot: scenario index */
    const int64_t *slot_counts,         /* per level-major position */
    const int64_t *level_pair_bounds,   /* max_f+1 (or more) */
    const int64_t *pair_j_slot,         /* level-major */
    const int64_t *pair_mode,
    const uint8_t *pair_fallback,
    const int64_t *pair_bi,
    const uint8_t *pair_use_bound,
    const int64_t *down_offsets,        /* npairs+1 */
    const int64_t *down_pair,
    const int64_t *down_k_slot,
    const int64_t *C, const int64_t *T, const int64_t *J, const int64_t *D,
    const int64_t *BLK, const int64_t *WARM, const int64_t *GIVE,
    int64_t *R, uint8_t *CONV, uint8_t *TAINT, int64_t *BAD,
    int64_t *totals, int64_t *hitcost,
    uint8_t *stopped, uint8_t *diverted,
    int64_t *last_level, int64_t *iterations,
    int64_t *scr_wj, int64_t *scr_T, int64_t *scr_cost)  /* max row width */
{
    const int64_t max_f = lparams[L_MAX_F];
    const int early_exit = lparams[L_EARLY_EXIT] != 0;
    const int64_t safe_response = lparams[L_SAFE];
    const int64_t max_iterations = lparams[L_MAX_ITER];

    for (int64_t level = 0; level < max_f; level++) {
        const int64_t s1 = level_slot_bounds[level + 1];
        int64_t p = level_pair_bounds[level];
        for (int64_t s = level_slot_bounds[level]; s < s1; s++) {
            const int64_t slot = slot_perm[s];
            const int64_t scn = slot_scn[slot];
            const int64_t cnt = slot_counts[s];
            const int64_t q0 = p;
            p += cnt;
            if (stopped[scn] || diverted[scn]) continue;

            /* Phase A: per-pair window jitter + per-hit cost. */
            for (int64_t t = 0; t < cnt; t++) {
                const int64_t q = q0 + t;
                const int64_t j = pair_j_slot[q];
                const int64_t r_j = R[j];
                const int64_t wj = J[j] + r_j - C[j];
                const int64_t mode = pair_mode[q];
                int64_t cost;
                if (mode == 0) {                         /* SB */
                    cost = C[j];
                } else {
                    const int64_t d0 = down_offsets[q];
                    const int64_t d1 = down_offsets[q + 1];
                    int64_t down;
                    if (mode == 1 || pair_fallback[q]) { /* XLWX / rule */
                        down = 0;
                        for (int64_t d = d0; d < d1; d++)
                            down += totals[down_pair[d]];
                    } else {                             /* IBN Eq. 8 */
                        const int use_bound = pair_use_bound[q];
                        const int64_t bi = pair_bi[q];
                        down = 0;
                        for (int64_t d = d0; d < d1; d++) {
                            const int64_t k = down_k_slot[d];
                            const int64_t hits =
                                ceil_div_i64(r_j + J[k], T[k]);
                            int64_t per_hit = hitcost[down_pair[d]];
                            if (use_bound && bi < per_hit) per_hit = bi;
                            down += hits * per_hit;
                        }
                    }
                    cost = C[j] + down;
                }
                hitcost[q] = cost;
                scr_wj[t] = wj;
                scr_T[t] = T[j];
                scr_cost[t] = cost;
            }

            /* Phase B: the fixed point (repro_solve_rows semantics,
             * with the non-preemptive blocking folded in). */
            const int64_t blocking = BLK[slot];
            const int64_t cold = C[slot];
            const int64_t base = cold + blocking;
            const int64_t give = GIVE[slot];
            const int64_t warm_v = WARM[slot];
            int warm = (cold < warm_v) && (warm_v <= give);
            int64_t r = warm ? warm_v : cold;
            int64_t iters = 0;
            int64_t res = 0;
            uint8_t conv = 0, unsafe = 0;
            for (;;) {
                iters++;
                int64_t r_new = base;
                for (int64_t t = 0; t < cnt; t++) {
                    r_new += ceil_div_i64(r + scr_wj[t], scr_T[t])
                             * (scr_cost[t] + blocking);
                }
                const int cv = (r_new == r);
                int uns = (r_new > safe_response) || (r_new < base);
                if (iters >= max_iterations && !cv) uns = 1;
                if (uns) { unsafe = 1; break; }
                if (cv) { res = r; conv = 1; break; }
                if (warm && (r_new < r || r_new > give)) {
                    r = cold;
                    warm = 0;
                    continue;
                }
                if (r_new > give) { res = r_new; break; }
                r = r_new;
            }
            iterations[scn] += iters;
            if (unsafe) { diverted[scn] = 1; continue; }

            /* Phase C: publish + totals + taint + early exit. */
            R[slot] = res;
            CONV[slot] = conv;
            int64_t bad_sum = 0;
            for (int64_t t = 0; t < cnt; t++) {
                const int64_t q = q0 + t;
                totals[q] = ceil_div_i64(res + scr_wj[t], scr_T[t])
                            * scr_cost[t];
                bad_sum += BAD[pair_j_slot[q]];
            }
            const int tainted = bad_sum > 0;
            TAINT[slot] = (uint8_t)tainted;
            BAD[slot] = (!conv) | tainted;
            if (early_exit && !(conv && res <= D[slot])) {
                stopped[scn] = 1;
                last_level[scn] = level;
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Kernel 2: the wormhole simulator drain loop (sim/simulator.py)      */
/* ------------------------------------------------------------------ */

/* Status codes: the wrapper falls back to the Python loop on CAPACITY
 * (a ring bound was exceeded — cannot happen under credit flow
 * control, kept as a memory-safety valve) and raises the simulator's
 * stall assertion on STALL. */
#define SIM_OK        0
#define SIM_STALL     1
#define SIM_CAPACITY  2

#define NOCAND  INT64_MIN
#define BIGKEY  (((int64_t)1) << 60)

/* params[] layout (int64): */
enum {
    P_NF = 0, P_NL, P_NPK, P_LINKL, P_ROUTL, P_CREDIT_DELAY,
    P_DRAIN_LIMIT, P_ARRIVE_CAP, P_CREDIT_CAP, P_WAKE_CAP, P_CAND_CAP,
    P_COUNT
};

/* out[] layout (int64): */
enum { O_END_TIME = 0, O_DRAINED, O_FLITS_IN_NETWORK, O_COUNT };

REPRO_EXPORT int64_t repro_sim_run(
    const int64_t *params,
    /* static tables */
    const int32_t *next_of,      /* nl*nf: forward link per slot, -1 off-route */
    const int32_t *first_link,   /* nf: injection link per flow, -1 local */
    const int64_t *priority,     /* nf */
    const uint8_t *is_local,     /* nf */
    const int32_t *capacity,     /* nl: VC buffer depth per link */
    const uint8_t *ejection,     /* nl */
    const uint8_t *buffered,     /* nl */
    /* releases, pre-sorted by (time, flow, seq); packet id = index */
    const int64_t *rel_time, const int32_t *rel_flow, const int32_t *rel_len,
    /* mutable state (python-allocated, initialised by the wrapper) */
    int64_t *credits,            /* nl*nf, copy of the credit template */
    const int64_t *ring_off,     /* nl*nf: slot -> ring base, -1 off-route */
    int64_t *ring_ready, int32_t *ring_fidx, int32_t *ring_pkt,
    int32_t *buf_head, int32_t *buf_len,            /* nl*nf */
    int64_t *arr_time, int32_t *arr_out, int32_t *arr_flow,
    int32_t *arr_fidx, int32_t *arr_pkt,            /* arrive ring */
    int64_t *cr_time, int64_t *cr_slot,             /* credit ring */
    int64_t *wk_time,                               /* wake ring */
    const int64_t *srcq_off,     /* nf+1: per-flow source-queue regions */
    int32_t *srcq,               /* npk: queued packet ids */
    int64_t *src_head, int64_t *src_push,           /* nf, absolute indices */
    int32_t *injected,           /* nf */
    int32_t *occ_list, int32_t *occ_pos,            /* nl*nf, pos init -1 */
    int32_t *act_list, int32_t *act_pos,            /* nf, pos init -1 */
    int64_t *slot_seq,           /* nl*nf, init -1 (credit_delay==0 only) */
    int64_t *busy_until,         /* nl, init 0 */
    /* per-cycle scratch */
    int32_t *head,               /* nl, candidate-list heads, init -1 */
    int64_t *cand_val, int32_t *cand_next,          /* cand_cap */
    int32_t *req_list, int64_t *req_key,            /* nl */
    /* outputs */
    int64_t *worst,              /* nf, init 0: max delivery latency */
    int64_t *delivered_pkts,     /* nf, init 0 */
    int64_t *delivered_flits,    /* nf, init 0 */
    int64_t *flits_per_link,     /* nl, init 0 */
    int64_t *out)                /* O_COUNT scalars */
{
    const int64_t nf = params[P_NF];
    const int64_t npk = params[P_NPK];
    const int64_t linkl = params[P_LINKL];
    const int64_t routl = params[P_ROUTL];
    const int64_t credit_delay = params[P_CREDIT_DELAY];
    const int64_t drain_limit = params[P_DRAIN_LIMIT];
    const int64_t arrive_cap = params[P_ARRIVE_CAP];
    const int64_t credit_cap = params[P_CREDIT_CAP];
    const int64_t wake_cap = params[P_WAKE_CAP];
    const int64_t cand_cap = params[P_CAND_CAP];
    const int track_order = (credit_delay == 0);

    int64_t arr_head = 0, arr_len = 0;
    int64_t cr_head = 0, cr_len = 0;
    int64_t wk_head = 0, wk_len = 0;
    int64_t occ_count = 0, act_count = 0;
    int64_t rel_ptr = 0;
    int64_t flits_in_network = 0;
    int64_t seq_counter = 0;
    int64_t now = 0;
    int drained = 1;

    for (;;) {
        if (now > drain_limit) { drained = 0; break; }
        if (rel_ptr >= npk && arr_len == 0 && cr_len == 0 && wk_len == 0
            && flits_in_network == 0 && act_count == 0)
            break;

        /* Phase 1: due events (same-timestamp events commute). */
        while (arr_len && arr_time[arr_head] <= now) {
            const int32_t link = arr_out[arr_head];
            const int32_t flow = arr_flow[arr_head];
            const int32_t fidx = arr_fidx[arr_head];
            const int32_t pkt = arr_pkt[arr_head];
            arr_head = (arr_head + 1) % arrive_cap;
            arr_len--;
            if (ejection[link]) {
                flits_in_network--;
                delivered_flits[flow]++;
                if (fidx == rel_len[pkt] - 1) {
                    const int64_t lat = now - rel_time[pkt];
                    delivered_pkts[flow]++;
                    if (lat > worst[flow]) worst[flow] = lat;
                }
            } else {
                const int64_t slot = (int64_t)link * nf + flow;
                int64_t ready = now;
                if (fidx == 0 && routl) {
                    ready = now + routl;
                    if (wk_len == 0
                        || wk_time[(wk_head + wk_len - 1) % wake_cap] != ready) {
                        if (wk_len >= wake_cap) return SIM_CAPACITY;
                        wk_time[(wk_head + wk_len) % wake_cap] = ready;
                        wk_len++;
                    }
                }
                const int32_t cap = capacity[link];
                if (buf_len[slot] >= cap) return SIM_CAPACITY;
                const int64_t pos =
                    ring_off[slot] + (buf_head[slot] + buf_len[slot]) % cap;
                ring_ready[pos] = ready;
                ring_fidx[pos] = fidx;
                ring_pkt[pos] = pkt;
                buf_len[slot]++;
                if (buf_len[slot] == 1) {
                    occ_pos[slot] = (int32_t)occ_count;
                    occ_list[occ_count++] = (int32_t)slot;
                    if (track_order && slot_seq[slot] < 0)
                        slot_seq[slot] = seq_counter++;
                }
            }
        }
        while (cr_len && cr_time[cr_head] <= now) {
            credits[cr_slot[cr_head]]++;
            cr_head = (cr_head + 1) % credit_cap;
            cr_len--;
        }
        while (wk_len && wk_time[wk_head] <= now) {
            wk_head = (wk_head + 1) % wake_cap;
            wk_len--;
        }

        /* Phase 2: releases due now. */
        while (rel_ptr < npk && rel_time[rel_ptr] <= now) {
            const int32_t pkt = (int32_t)rel_ptr++;
            const int32_t flow = rel_flow[pkt];
            if (is_local[flow]) {
                const int64_t lat = now - rel_time[pkt];
                delivered_pkts[flow]++;
                if (lat > worst[flow]) worst[flow] = lat;
                delivered_flits[flow] += rel_len[pkt];
            } else {
                srcq[src_push[flow]++] = pkt;
                if (act_pos[flow] < 0) {
                    act_pos[flow] = (int32_t)act_count;
                    act_list[act_count++] = flow;
                }
            }
        }

        /* Phase 3: per-link candidate lists (slot >= 0 buffers,
         * -1 - flow sources), built as linked lists over scratch. */
        int64_t cand_count = 0;
        int64_t req_count = 0;
        for (int64_t i = 0; i < occ_count; i++) {
            const int32_t slot = occ_list[i];
            if (ring_ready[ring_off[slot] + buf_head[slot]] > now) continue;
            const int32_t link = next_of[slot];
            if (cand_count >= cand_cap) return SIM_CAPACITY;
            cand_val[cand_count] = slot;
            cand_next[cand_count] = head[link];
            if (head[link] < 0) req_list[req_count++] = link;
            head[link] = (int32_t)cand_count++;
        }
        for (int64_t i = 0; i < act_count; i++) {
            const int32_t flow = act_list[i];
            const int32_t link = first_link[flow];
            if (cand_count >= cand_cap) return SIM_CAPACITY;
            cand_val[cand_count] = (int64_t)(-1) - flow;
            cand_next[cand_count] = head[link];
            if (head[link] < 0) req_list[req_count++] = link;
            head[link] = (int32_t)cand_count++;
        }

        /* Phase 4: arbitration + sends.  With instant credit returns
         * the visit order is observable: sort links by the reference's
         * discovery key (FIFO-creation order, then sources).  Keys are
         * unique (disjoint slot sets, one first_link per flow), so the
         * insertion sort yields exactly the reference order. */
        if (track_order && req_count > 1) {
            for (int64_t i = 0; i < req_count; i++) {
                const int32_t link = req_list[i];
                int64_t best = BIGKEY << 1;
                for (int32_t c = head[link]; c >= 0; c = cand_next[c]) {
                    const int64_t v = cand_val[c];
                    const int64_t key = (v >= 0)
                        ? (slot_seq[v] >= 0 ? slot_seq[v] : BIGKEY)
                        : (BIGKEY + ((int64_t)(-1) - v));
                    if (key < best) best = key;
                }
                req_key[i] = best;
            }
            for (int64_t i = 1; i < req_count; i++) {
                const int32_t link = req_list[i];
                const int64_t key = req_key[i];
                int64_t j = i - 1;
                while (j >= 0 && req_key[j] > key) {
                    req_list[j + 1] = req_list[j];
                    req_key[j + 1] = req_key[j];
                    j--;
                }
                req_list[j + 1] = link;
                req_key[j + 1] = key;
            }
        }
        int sent_any = 0;
        for (int64_t i = 0; i < req_count; i++) {
            const int32_t link = req_list[i];
            if (busy_until[link] > now) continue;
            const int needs_credit = buffered[link];
            const int64_t base = (int64_t)link * nf;
            int64_t best = NOCAND;
            int64_t best_prio = ((int64_t)1) << 60;
            int32_t best_flow = -1;
            for (int32_t c = head[link]; c >= 0; c = cand_next[c]) {
                const int64_t v = cand_val[c];
                const int32_t flow = (v >= 0)
                    ? (int32_t)(v % nf) : (int32_t)((int64_t)(-1) - v);
                const int64_t p = priority[flow];
                if (p < best_prio) {
                    if (needs_credit && credits[base + flow] <= 0)
                        continue;   /* blocked upstream: yield priority */
                    best = v;
                    best_prio = p;
                    best_flow = flow;
                }
            }
            if (best == NOCAND) continue;
            int32_t fidx, pkt;
            if (best < 0) {
                /* inject from the source queue */
                pkt = srcq[src_head[best_flow]];
                fidx = injected[best_flow];
                if ((int64_t)fidx + 1 == rel_len[pkt]) {
                    src_head[best_flow]++;
                    injected[best_flow] = 0;
                    if (src_head[best_flow] == src_push[best_flow]) {
                        const int32_t at = act_pos[best_flow];
                        const int32_t last = act_list[--act_count];
                        act_list[at] = last;
                        act_pos[last] = at;
                        act_pos[best_flow] = -1;
                    }
                } else {
                    injected[best_flow] = fidx + 1;
                }
                flits_in_network++;
            } else {
                const int64_t slot = best;
                const int32_t cap = capacity[slot / nf];
                const int64_t pos = ring_off[slot] + buf_head[slot];
                fidx = ring_fidx[pos];
                pkt = ring_pkt[pos];
                buf_head[slot] = (buf_head[slot] + 1) % cap;
                if (--buf_len[slot] == 0) {
                    const int32_t at = occ_pos[slot];
                    const int32_t last = occ_list[--occ_count];
                    occ_list[at] = last;
                    occ_pos[last] = at;
                    occ_pos[slot] = -1;
                }
                if (credit_delay == 0) {
                    credits[slot]++;
                } else {
                    if (cr_len >= credit_cap) return SIM_CAPACITY;
                    const int64_t cpos = (cr_head + cr_len) % credit_cap;
                    cr_time[cpos] = now + credit_delay;
                    cr_slot[cpos] = slot;
                    cr_len++;
                }
            }
            if (needs_credit) credits[base + best_flow]--;
            if (arr_len >= arrive_cap) return SIM_CAPACITY;
            const int64_t apos = (arr_head + arr_len) % arrive_cap;
            arr_time[apos] = now + linkl;
            arr_out[apos] = link;
            arr_flow[apos] = best_flow;
            arr_fidx[apos] = fidx;
            arr_pkt[apos] = pkt;
            arr_len++;
            busy_until[link] = now + linkl;
            flits_per_link[link]++;
            sent_any = 1;
        }
        for (int64_t i = 0; i < req_count; i++) head[req_list[i]] = -1;

        /* Phase 5: advance time to the next event/release; after a
         * send with instant credits (or at the drain cut-off) walk one
         * cycle like the reference. */
        int64_t nt = INT64_MAX;
        if (arr_len) nt = arr_time[arr_head];
        if (cr_len && cr_time[cr_head] < nt) nt = cr_time[cr_head];
        if (wk_len && wk_time[wk_head] < nt) nt = wk_time[wk_head];
        if (rel_ptr < npk && rel_time[rel_ptr] < nt) nt = rel_time[rel_ptr];
        if (nt == INT64_MAX) {
            if (flits_in_network || act_count) {
                out[O_END_TIME] = now;
                return SIM_STALL;
            }
            break;
        }
        if (sent_any && (track_order || nt > drain_limit)) now += 1;
        else now = nt;
    }

    out[O_END_TIME] = now;
    out[O_DRAINED] = drained;
    out[O_FLITS_IN_NETWORK] = flits_in_network;
    return SIM_OK;
}

/* Optional CPython module shell: setup.py builds this file as the
 * extension repro.core._kernels so `pip install -e .` ships a prebuilt
 * artifact; the module body is empty — the symbols above are reached
 * via ctypes, never via import. */
#ifdef REPRO_BUILD_PYMODULE
#define PY_SSIZE_T_CLEAN
#include <Python.h>

static struct PyModuleDef repro_kernels_module = {
    PyModuleDef_HEAD_INIT, "_kernels",
    "Compiled repro kernels (loaded via ctypes; see repro.core.backend).",
    -1, NULL,
};

PyMODINIT_FUNC PyInit__kernels(void) {
    return PyModule_Create(&repro_kernels_module);
}
#endif
