"""On-demand compilation and loading of the C kernel library.

The ``cext`` backend (:mod:`repro.core.backend`) reaches
``_kernels.c`` through plain exported symbols via :mod:`ctypes`, so
any C compiler can produce a usable artifact — no Python headers, no
build isolation, no setuptools required at runtime.  Artifacts are
found, in order:

1. a ``setup.py build_ext``-produced ``_kernels*.so``/``.pyd`` next to
   the source (what a wheel or an in-place build ships);
2. a content-addressed artifact in the user cache directory,
   ``_kernels-abi<N>-<hash>.so`` — the hash covers the C source, so a
   stale cache entry is simply never matched;
3. failing both, the source is compiled on demand with ``$CC``/
   ``gcc``/``cc`` into the cache directory (or next to the source when
   that is writable and the cache is not).

Every loaded artifact must report the expected ABI stamp through
``repro_abi_version()``; anything else (an old build, a truncated
file) is rejected and the next candidate is tried.  All failures raise
:class:`KernelBuildError` with enough detail for ``repro backend`` to
display; the backend layer turns that into the single fallback
warning.

``-fwrapv`` is mandatory: the kernels rely on two's-complement
wraparound for int64 arithmetic to stay bit-identical with numpy on
overflowing inputs.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

#: Must match REPRO_KERNELS_ABI in _kernels.c.
KERNELS_ABI = 1

SOURCE = Path(__file__).resolve().with_name("_kernels.c")

_CFLAGS = ("-O2", "-shared", "-fPIC", "-fwrapv", "-fvisibility=default")


class KernelBuildError(RuntimeError):
    """The kernel library could not be located, built, or validated."""


def _source_hash() -> str:
    return hashlib.sha256(SOURCE.read_bytes()).hexdigest()[:16]


def cache_dir() -> Path:
    """Directory for on-demand builds (override: ``REPRO_KERNEL_CACHE``)."""
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    root = Path(xdg) if xdg else Path.home() / ".cache"
    return root / "repro-kernels"


def compiler() -> str | None:
    """The C compiler to use, or None when the box has none."""
    explicit = os.environ.get("CC")
    if explicit:
        return explicit if shutil.which(explicit) else None
    for cand in ("gcc", "cc", "clang"):
        path = shutil.which(cand)
        if path:
            return path
    return None


def _candidates() -> list[Path]:
    """Existing artifacts worth trying, in preference order."""
    found: list[Path] = []
    pkg_dir = SOURCE.parent
    for pattern in ("_kernels*.so", "_kernels*.pyd", "_kernels*.dylib"):
        found.extend(sorted(pkg_dir.glob(pattern)))
    cached = cache_dir() / f"_kernels-abi{KERNELS_ABI}-{_source_hash()}.so"
    if cached.exists():
        found.append(cached)
    return found


def _validate(path: Path) -> ctypes.CDLL:
    """Load an artifact and check its ABI stamp and symbols."""
    lib = ctypes.CDLL(str(path))
    try:
        probe = lib.repro_abi_version
    except AttributeError as exc:
        raise KernelBuildError(f"{path.name}: no repro_abi_version") from exc
    probe.restype = ctypes.c_int64
    probe.argtypes = ()
    found = int(probe())
    if found != KERNELS_ABI:
        raise KernelBuildError(
            f"{path.name}: ABI {found}, expected {KERNELS_ABI}"
        )
    for symbol in ("repro_solve_rows", "repro_run_levels", "repro_sim_run"):
        if not hasattr(lib, symbol):
            raise KernelBuildError(f"{path.name}: missing {symbol}")
    return lib


def build(target: Path | None = None) -> Path:
    """Compile ``_kernels.c``, returning the artifact path."""
    cc = compiler()
    if cc is None:
        raise KernelBuildError("no C compiler found (set CC, or install gcc)")
    if target is None:
        target = cache_dir() / f"_kernels-abi{KERNELS_ABI}-{_source_hash()}.so"
    target.parent.mkdir(parents=True, exist_ok=True)
    # Build into a temp name then rename: concurrent builders (pool
    # workers racing on a cold cache) each win or lose atomically.
    fd, tmp = tempfile.mkstemp(
        suffix=".so", prefix=target.stem + ".", dir=str(target.parent)
    )
    os.close(fd)
    cmd = [cc, *_CFLAGS, str(SOURCE), "-o", tmp]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        os.unlink(tmp)
        raise KernelBuildError(f"{cc} failed to run: {exc}") from exc
    if proc.returncode != 0:
        os.unlink(tmp)
        tail = (proc.stderr or proc.stdout or "").strip().splitlines()[-8:]
        raise KernelBuildError(
            f"{cc} exited {proc.returncode}: " + " | ".join(tail)
        )
    os.replace(tmp, target)
    return target


def load() -> tuple[ctypes.CDLL, Path]:
    """Locate (or build) and validate the kernel library.

    Returns ``(library, artifact_path)``; raises
    :class:`KernelBuildError` when nothing usable can be produced.
    """
    if not SOURCE.exists():
        raise KernelBuildError(f"kernel source missing: {SOURCE}")
    errors: list[str] = []
    for path in _candidates():
        try:
            return _validate(path), path
        except (OSError, KernelBuildError) as exc:
            errors.append(str(exc))
    try:
        built = build()
    except KernelBuildError as exc:
        errors.append(str(exc))
        raise KernelBuildError("; ".join(errors)) from exc
    try:
        return _validate(built), built
    except (OSError, KernelBuildError) as exc:
        errors.append(str(exc))
        raise KernelBuildError("; ".join(errors)) from exc
