"""Minimum-cost buffer allocation: the paper's bounds as a design tool.

The paper's central observation — IBN schedulability degrades
monotonically as per-VC buffers deepen (Equation 6 sums per-link depths
over each contention domain) — turns the inverse design question *"which
per-router buffer allocation keeps the flow set schedulable at the least
cost?"* into a pruned lattice search instead of exhaustive enumeration.
This module is that optimizer, plus the machinery that makes it
trustworthy:

* :func:`optimize_allocation` — exact search over heterogeneous
  ``buf_map`` assignments (the platform model of Giroudot & Mifdaoui's
  graph-based approach).  Candidates are ordered by cost and explored
  best-first; **verdict monotonicity** in every router's depth prunes
  dominated candidates (a candidate pointwise deeper than a known
  unschedulable one cannot be schedulable), and whole candidate
  frontiers are evaluated in one :func:`~repro.core.batch.analyze_batch`
  call so the batch engine — and the C backend behind it — does the
  heavy lifting.  A greedy descent from the cost-optimal corner
  (single-router decrements toward the schedulable all-shallow anchor)
  plus a local search (single-router moves, ±1 swap moves) supplies an
  incumbent that bounds the exact phase.
* :func:`exhaustive_allocation` — the deliberately dumb brute-force
  oracle: enumerate every depth vector, no pruning, no cost ordering.
  ``tests/core/test_allocate_oracle.py`` pins the optimizer to it.
* :func:`allocation_summary` — the JSON-able document shared verbatim
  by ``python -m repro allocate --json``, ``POST /allocate`` and the
  ``allocation`` campaign kind, so all three surfaces answer the same
  spec with the same bytes.

Cost models express the two directions a designer can care about:
``depth`` (silicon area: every flit of buffering costs) and
``shallowness`` (throughput: every flit *removed* below a target depth
costs — the paper's tension, where worst-case analysis pushes buffers
shallow while average-case performance wants them deep).  Both are
separable per router, which the search exploits.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.analyses import analysis_by_name
from repro.core.analyses.base import Analysis
from repro.core.analyses.ibn import IBNAnalysis
from repro.core.engine import is_schedulable
from repro.core.interference import InterferenceGraph
from repro.core.sizing import contention_pressure
from repro.flows.flowset import FlowSet

#: Cost-model kinds understood by :func:`cost_model_from_dict`.
COST_KINDS = ("depth", "shallowness")

#: Default batched-frontier width: how many distinct candidates one
#: :func:`~repro.core.batch.analyze_batch` round evaluates.  Internal
#: on purpose — every surface uses the same width, so the recorded
#: ``evaluations``/``frontiers`` counters are identical everywhere.
_FRONTIER_WIDTH = 16

#: Local-search rounds before the exact phase takes over.  The local
#: search only tightens the incumbent bound; optimality never depends
#: on it, so a small cap is safe.
_LOCAL_ROUNDS = 8


@dataclass(frozen=True)
class CostModel:
    """A separable per-router buffer cost ``cost(map) = Σ_r cost_r(d_r)``.

    ``kind="depth"``: ``cost_r(d) = w_r · d`` — buffering is silicon,
    every flit costs.  ``kind="shallowness"``: ``cost_r(d) = w_r ·
    max(0, target − d)`` — every flit *below* the throughput target
    costs, so the optimizer keeps buffers as deep as schedulability
    allows (the paper's design tension).  ``weights`` maps router →
    non-negative weight (default 1 everywhere).
    """

    kind: str
    target: int | None = None
    weights: Mapping[int, int | float] | None = None

    def __post_init__(self) -> None:
        if self.kind not in COST_KINDS:
            raise ValueError(
                f"unknown cost-model kind {self.kind!r}; "
                f"choose from {', '.join(COST_KINDS)}"
            )
        if self.kind == "shallowness":
            if not isinstance(self.target, int) or isinstance(
                self.target, bool
            ) or self.target < 1:
                raise ValueError(
                    "shallowness cost model needs an integer target >= 1, "
                    f"got {self.target!r}"
                )
        elif self.target is not None:
            raise ValueError(
                f"cost model kind {self.kind!r} takes no target"
            )
        if self.weights is not None:
            for router, weight in self.weights.items():
                if not isinstance(router, int) or isinstance(router, bool):
                    raise ValueError(
                        f"cost-model weight key {router!r} is not a router "
                        "index"
                    )
                if (
                    isinstance(weight, bool)
                    or not isinstance(weight, (int, float))
                    or weight < 0
                ):
                    raise ValueError(
                        f"cost-model weight for router {router} must be a "
                        f"non-negative number, got {weight!r}"
                    )

    def weight_of(self, router: int) -> int | float:
        """The router's weight (1 unless ``weights`` overrides it)."""
        if self.weights is None:
            return 1
        return self.weights.get(router, 1)

    def router_cost(self, router: int, depth: int) -> int | float:
        """Cost contribution of one router holding ``depth`` flits."""
        if self.kind == "depth":
            return self.weight_of(router) * depth
        return self.weight_of(router) * max(0, self.target - depth)

    def allocation_cost(self, buf_map: Mapping[int, int]) -> int | float:
        """Total cost of a full per-router allocation."""
        return sum(
            self.router_cost(router, depth)
            for router, depth in buf_map.items()
        )

    def to_dict(self) -> dict:
        """Canonical JSON form (string router keys, stable shape)."""
        doc: dict[str, Any] = {"kind": self.kind}
        if self.kind == "shallowness":
            doc["target"] = self.target
        if self.weights:
            doc["weights"] = {
                str(router): weight
                for router, weight in sorted(self.weights.items())
            }
        return doc


def cost_model_from_dict(
    data: Mapping[str, Any] | CostModel | None,
    *,
    hi: int,
    num_routers: int | None = None,
) -> CostModel:
    """Validate an untrusted cost-model document into a :class:`CostModel`.

    ``None`` means the default model: ``shallowness`` with the search
    ceiling ``hi`` as its target — "keep every buffer as deep as the
    worst-case test allows".  Raises ``ValueError`` with a
    client-addressable message on malformed input (the serving layer
    maps that to HTTP 400).
    """
    if isinstance(data, CostModel):
        return data
    if data is None:
        return CostModel(kind="shallowness", target=hi)
    if not isinstance(data, Mapping):
        raise ValueError(f"cost model must be an object, got {data!r}")
    unknown = set(data) - {"kind", "target", "weights"}
    if unknown:
        raise ValueError(
            f"unknown cost-model field(s): {', '.join(sorted(unknown))}"
        )
    kind = data.get("kind", "shallowness")
    target = data.get("target")
    if kind == "shallowness" and target is None:
        target = hi
    weights_doc = data.get("weights")
    weights: dict[int, int | float] | None = None
    if weights_doc is not None:
        if not isinstance(weights_doc, Mapping):
            raise ValueError(
                f"cost-model weights must be an object, got {weights_doc!r}"
            )
        weights = {}
        for key, weight in weights_doc.items():
            try:
                router = int(key)
            except (TypeError, ValueError):
                raise ValueError(
                    f"cost-model weight key {key!r} is not a router index"
                ) from None
            if num_routers is not None and not 0 <= router < num_routers:
                raise ValueError(
                    f"cost-model weight names router {router}, but the "
                    f"platform has routers 0..{num_routers - 1}"
                )
            weights[router] = weight
    return CostModel(kind=kind, target=target, weights=weights)


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of an allocation search.

    ``feasible`` is False when even the all-shallow anchor misses a
    deadline (or the budget cannot cover ``lo`` flits per router);
    ``certified`` is True when the exact phase finished, so ``cost`` is
    *provably* the minimum (the brute-force oracle agrees).  A capped
    run (``max_evaluations``) that had to stop early returns its best
    incumbent with ``certified=False``.
    """

    feasible: bool
    certified: bool
    buf_map: dict[int, int] | None
    cost: int | float | None
    total_depth: int | None
    evaluations: int
    frontiers: int
    relevant: tuple[int, ...]


class _SearchBudgetExhausted(Exception):
    """Internal: the ``max_evaluations`` cap was hit mid-search."""


class _Frontier:
    """Batched, memoized, monotonicity-pruned schedulability evaluator.

    Keeps one buffer-agnostic interference graph for every candidate,
    a verdict cache keyed by the relevant-router depth tuple, and the
    two dominance lists the paper's monotonicity licenses: a candidate
    pointwise **deeper** than a known-unschedulable tuple is
    unschedulable; one pointwise **shallower** than a known-schedulable
    tuple is schedulable.  Unknown candidates are evaluated in batches
    through :func:`~repro.core.batch.analyze_batch` (scalar fallback
    beneath the tiny-round threshold), so one search round is one array
    program however wide the frontier.
    """

    def __init__(
        self,
        flowset: FlowSet,
        analysis: Analysis,
        relevant: tuple[int, ...],
        max_evaluations: int | None,
        graph: InterferenceGraph,
    ) -> None:
        self.flowset = flowset
        self.analysis = analysis
        self.relevant = relevant
        self.max_evaluations = max_evaluations
        self.graph = graph
        self.evaluations = 0
        self.frontiers = 0
        self._cache: dict[tuple[int, ...], bool] = {}
        self._unsat: list[tuple[int, ...]] = []
        self._sat: list[tuple[int, ...]] = []

    def verdict(self, depths: tuple[int, ...]) -> bool | None:
        """Cached/derived verdict for one candidate, None if unknown."""
        cached = self._cache.get(depths)
        if cached is not None:
            return cached
        for core in self._unsat:
            if all(d >= c for d, c in zip(depths, core)):
                self._cache[depths] = False
                return False
        for core in self._sat:
            if all(d <= c for d, c in zip(depths, core)):
                self._cache[depths] = True
                return True
        return None

    def _variant(self, depths: tuple[int, ...]) -> FlowSet:
        platform = self.flowset.platform
        buf_map = dict(zip(self.relevant, depths))
        return self.flowset.on_platform(
            platform.with_buffers(platform.buf, buf_map=buf_map or None)
        )

    def evaluate(self, candidates: list[tuple[int, ...]]) -> None:
        """Resolve every still-unknown candidate in one batched round."""
        todo: list[tuple[int, ...]] = []
        for depths in candidates:
            if self.verdict(depths) is None and depths not in todo:
                todo.append(depths)
        if not todo:
            return
        if (
            self.max_evaluations is not None
            and self.evaluations + len(todo) > self.max_evaluations
        ):
            raise _SearchBudgetExhausted()
        from repro.core.batch import (
            Scenario,
            analyze_batch,
            batchable,
            min_batch_flows,
        )

        variants = [self._variant(depths) for depths in todo]
        stacked = sum(len(variant) for variant in variants)
        if batchable(self.analysis) and stacked >= min_batch_flows():
            scenarios = [
                Scenario(variant, self.analysis, graph=self.graph)
                for variant in variants
            ]
            verdicts = [
                result.complete and result.schedulable
                for result in analyze_batch(scenarios, early_exit=True)
            ]
        else:
            verdicts = [
                is_schedulable(variant, self.analysis, graph=self.graph)
                for variant in variants
            ]
        self.evaluations += len(todo)
        self.frontiers += 1
        for depths, verdict in zip(todo, verdicts):
            self._cache[depths] = verdict
            (self._sat if verdict else self._unsat).append(depths)


def _depth_options(
    router: int, model: CostModel, lo: int, hi: int
) -> list[tuple[int | float, int]]:
    """One router's ``(cost, depth)`` choices, cheapest (then shallowest)
    first — the rank order the best-first search increments along."""
    return sorted(
        (model.router_cost(router, depth), depth)
        for depth in range(lo, hi + 1)
    )


def _irrelevant_options(
    routers: list[int],
    model: CostModel,
    lo: int,
    hi: int,
    budget: int | None,
) -> list[tuple[int | float, int, dict[int, int]]]:
    """Depth choices for the routers the verdict cannot see.

    Uncontended routers (no contention-domain link touches their
    buffers) never change the verdict, so they reduce to one aggregated
    pseudo-coordinate: each option is ``(cost, total_depth,
    assignment)``.  Without a budget only the per-router cost optimum
    matters; with one, a small DP yields the cheapest assignment for
    every achievable total, Pareto-pruned so deeper-but-not-cheaper
    totals never enter the search.
    """
    if not routers:
        return [(0, 0, {})]
    if budget is None:
        assignment = {
            router: min(
                range(lo, hi + 1),
                key=lambda depth: (model.router_cost(router, depth), depth),
            )
            for router in routers
        }
        cost = sum(
            model.router_cost(router, depth)
            for router, depth in assignment.items()
        )
        return [(cost, sum(assignment.values()), assignment)]
    # DP stage per router: total depth -> (cost, previous total, depth).
    stages: list[dict[int, tuple[int | float, int, int]]] = [{0: (0, 0, 0)}]
    for router in routers:
        stage: dict[int, tuple[int | float, int, int]] = {}
        for total, (cost, _prev, _depth) in stages[-1].items():
            for depth in range(lo, hi + 1):
                key = total + depth
                entry = (cost + model.router_cost(router, depth), total, depth)
                best = stage.get(key)
                if best is None or entry < best:
                    stage[key] = entry
        stages.append(stage)
    options: list[tuple[int | float, int, dict[int, int]]] = []
    best_cost: int | float | None = None
    for total in sorted(stages[-1]):
        cost = stages[-1][total][0]
        if best_cost is not None and cost >= best_cost:
            continue
        best_cost = cost
        assignment: dict[int, int] = {}
        cursor = total
        for index in range(len(routers) - 1, -1, -1):
            _cost, prev, depth = stages[index + 1][cursor]
            assignment[routers[index]] = depth
            cursor = prev
        options.append((cost, total, assignment))
    return sorted(options, key=lambda option: (option[0], option[1]))


class _Search:
    """Shared state of one :func:`optimize_allocation` run."""

    def __init__(
        self,
        flowset: FlowSet,
        analysis: Analysis,
        model: CostModel,
        lo: int,
        hi: int,
        budget: int | None,
        max_evaluations: int | None,
    ) -> None:
        self.model = model
        self.lo = lo
        self.hi = hi
        self.budget = budget
        graph = InterferenceGraph(flowset)
        pressure = contention_pressure(flowset, graph=graph)
        self.relevant = tuple(
            router for router in sorted(pressure) if pressure[router] > 0
        )
        self.pressure = pressure
        self.frontier = _Frontier(
            flowset, analysis, self.relevant, max_evaluations, graph
        )
        self.options = [
            _depth_options(router, model, lo, hi) for router in self.relevant
        ]
        irrelevant = [
            router
            for router in range(flowset.platform.topology.num_routers)
            if router not in pressure or pressure[router] == 0
        ]
        self.irrelevant_options = _irrelevant_options(
            irrelevant, model, lo, hi, budget
        )

    def rel_cost(self, depths: tuple[int, ...]) -> int | float:
        """Cost of the searched (contended) routers alone."""
        return sum(
            self.model.router_cost(router, depth)
            for router, depth in zip(self.relevant, depths)
        )

    def budget_ok(self, depths: tuple[int, ...], irr_rank: int) -> bool:
        """Does the full vector fit the total-depth budget?"""
        if self.budget is None:
            return True
        total = sum(depths) + self.irrelevant_options[irr_rank][1]
        return total <= self.budget

    def best_irr_rank(self, depths: tuple[int, ...]) -> int | None:
        """Cheapest pseudo-coordinate option fitting the budget."""
        for rank in range(len(self.irrelevant_options)):
            if self.budget_ok(depths, rank):
                return rank
        return None

    def result(
        self, depths: tuple[int, ...], irr_rank: int, certified: bool
    ) -> AllocationResult:
        """Materialise a full allocation from a search node."""
        irr_cost, _total, assignment = self.irrelevant_options[irr_rank]
        buf_map = dict(zip(self.relevant, depths))
        buf_map.update(assignment)
        buf_map = dict(sorted(buf_map.items()))
        return AllocationResult(
            feasible=True,
            certified=certified,
            buf_map=buf_map,
            cost=self.rel_cost(depths) + irr_cost,
            total_depth=sum(buf_map.values()),
            evaluations=self.frontier.evaluations,
            frontiers=self.frontier.frontiers,
            relevant=self.relevant,
        )

    def infeasible(self) -> AllocationResult:
        """The honest "nothing works" outcome."""
        return AllocationResult(
            feasible=False,
            certified=True,
            buf_map=None,
            cost=None,
            total_depth=None,
            evaluations=self.frontier.evaluations,
            frontiers=self.frontier.frontiers,
            relevant=self.relevant,
        )


def _greedy_incumbent(
    search: _Search,
) -> tuple[tuple[int, ...], int] | None:
    """Greedy descent + local search: a schedulable incumbent, fast.

    Start at the cost-optimal corner; while it fails the worst-case
    test, walk a ladder of single-router decrements (highest contention
    pressure first — where Equation 6 says depth hurts most) toward the
    all-shallow anchor, evaluating the whole ladder as batched
    frontiers.  Then a bounded local search (single-router moves and
    ±1 swap moves that reduce cost) polishes the incumbent.  Returns
    ``(relevant depths, irrelevant rank)`` or None when even the anchor
    fails the budget.
    """
    relevant = search.relevant
    start = tuple(options[0][1] for options in search.options)
    # Ladder: cyclic single-router decrements, pressure-first.
    order = sorted(relevant, key=lambda r: (-search.pressure[r], r))
    indices = {router: i for i, router in enumerate(relevant)}
    ladder = [start]
    current = list(start)
    moved = True
    while moved:
        moved = False
        for router in order:
            i = indices[router]
            if current[i] > search.lo:
                current[i] -= 1
                ladder.append(tuple(current))
                moved = True
    incumbent: tuple[tuple[int, ...], int] | None = None
    # Probe the cost-optimal corner alone first: when it passes (the
    # common unconstrained case) the whole ladder is moot.
    chunks = [ladder[:1]] + [
        ladder[start : start + _FRONTIER_WIDTH]
        for start in range(1, len(ladder), _FRONTIER_WIDTH)
    ]
    for chunk in chunks:
        search.frontier.evaluate(chunk)
        for depths in chunk:
            if not search.frontier.verdict(depths):
                continue
            rank = search.best_irr_rank(depths)
            if rank is not None:
                incumbent = (depths, rank)
                break
        if incumbent is not None:
            break
    if incumbent is None:
        return None

    def node_cost(node: tuple[tuple[int, ...], int]) -> int | float:
        depths, rank = node
        return search.rel_cost(depths) + search.irrelevant_options[rank][0]

    for _round in range(_LOCAL_ROUNDS):
        depths, _rank = incumbent
        bound = node_cost(incumbent)
        moves: set[tuple[int, ...]] = set()
        for i in range(len(relevant)):
            for depth in range(search.lo, search.hi + 1):
                if depth != depths[i]:
                    moves.add(depths[:i] + (depth,) + depths[i + 1 :])
        for i in range(len(relevant)):
            for j in range(len(relevant)):
                if i == j:
                    continue
                if depths[i] < search.hi and depths[j] > search.lo:
                    swapped = list(depths)
                    swapped[i] += 1
                    swapped[j] -= 1
                    moves.add(tuple(swapped))
        candidates = []
        for move in moves:
            rank = search.best_irr_rank(move)
            if rank is None:
                continue
            cost = search.rel_cost(move) + search.irrelevant_options[rank][0]
            if cost < bound:
                candidates.append((cost, move, rank))
        candidates.sort()
        if not candidates:
            break
        batch = [move for _cost, move, _rank in candidates[:_FRONTIER_WIDTH]]
        search.frontier.evaluate(batch)
        better = next(
            (
                (move, rank)
                for cost, move, rank in candidates[:_FRONTIER_WIDTH]
                if search.frontier.verdict(move)
            ),
            None,
        )
        if better is None:
            break
        incumbent = better
    return incumbent


def optimize_allocation(
    flowset: FlowSet,
    *,
    analysis: Analysis | None = None,
    lo: int = 1,
    hi: int = 8,
    cost_model: CostModel | Mapping[str, Any] | None = None,
    budget: int | None = None,
    max_evaluations: int | None = None,
) -> AllocationResult:
    """The minimum-cost schedulable per-router buffer allocation.

    Searches every assignment of depths in ``[lo, hi]`` to the
    platform's routers (``budget`` optionally caps the total depth
    across all routers) for the cheapest one the ``analysis`` deems
    schedulable.  Exact: when ``certified`` is True the returned cost
    is the true optimum — the property the brute-force oracle test
    enforces.  The search only branches on routers whose buffers back a
    contention-domain link (the only depths Equation 6 can see);
    uncontended routers take their cost-optimal depths directly.

    ``max_evaluations`` caps schedulability evaluations; a capped run
    returns the best incumbent found with ``certified=False``.

    >>> from repro.workloads.didactic import didactic_flowset
    >>> result = optimize_allocation(didactic_flowset(), hi=4)
    >>> result.feasible and result.certified
    True
    """
    if not 1 <= lo <= hi:
        raise ValueError(f"need 1 <= lo <= hi, got [{lo}, {hi}]")
    if budget is not None and (
        isinstance(budget, bool) or not isinstance(budget, int) or budget < 1
    ):
        raise ValueError(f"budget must be a positive integer, got {budget!r}")
    if max_evaluations is not None and max_evaluations < 1:
        raise ValueError(
            f"max_evaluations must be positive, got {max_evaluations!r}"
        )
    if analysis is None:
        analysis = IBNAnalysis()
    num_routers = flowset.platform.topology.num_routers
    model = cost_model_from_dict(cost_model, hi=hi, num_routers=num_routers)
    search = _Search(
        flowset, analysis, model, lo, hi, budget, max_evaluations
    )

    if budget is not None and budget < num_routers * lo:
        return search.infeasible()
    anchor = tuple(lo for _ in search.relevant)
    incumbent: tuple[tuple[int, ...], int] | None = None
    try:
        search.frontier.evaluate([anchor])
        if not search.frontier.verdict(anchor):
            return search.infeasible()
        incumbent = _greedy_incumbent(search)
        if incumbent is None:  # pragma: no cover - anchor passed above
            return search.infeasible()
        found = _best_first(search, incumbent)
    except _SearchBudgetExhausted:
        if incumbent is None:
            # The anchor passed (it is evaluated before anything can
            # raise) and its budget fit was established above.
            incumbent = (anchor, search.best_irr_rank(anchor))
        depths, rank = incumbent
        return search.result(depths, rank, certified=False)
    depths, rank = found
    return search.result(depths, rank, certified=True)


def _best_first(
    search: _Search, incumbent: tuple[tuple[int, ...], int]
) -> tuple[tuple[int, ...], int]:
    """Exact phase: pop candidates cheapest-first until one passes.

    Nodes are ``(rank per relevant router, pseudo-coordinate rank)``
    vectors; each coordinate's choices are pre-sorted by cost, so every
    successor (one rank incremented) costs at least its parent and the
    first schedulable, budget-feasible pop is provably optimal.
    Unknown verdicts are resolved in batched frontiers: the popped node
    plus the next queue entries are evaluated in one
    ``analyze_batch`` round and pushed back, preserving pop order.
    Candidates costing more than the greedy incumbent are never pushed
    — the incumbent itself stays reachable, so the search always
    terminates with an optimum.
    """
    options = search.options
    irr = search.irrelevant_options

    def key(node: tuple[int, ...]):
        depths = tuple(
            options[i][rank][1] for i, rank in enumerate(node[:-1])
        )
        cost = search.rel_cost(depths) + irr[node[-1]][0]
        return cost, depths

    inc_depths, inc_rank = incumbent
    inc_cost = search.rel_cost(inc_depths) + irr[inc_rank][0]
    start = tuple(0 for _ in options) + (0,)
    start_cost, start_depths = key(start)
    heap = [(start_cost, start_depths, start[-1], start)]
    seen = {start}
    best = incumbent
    while heap:
        cost, depths, irr_rank, node = heapq.heappop(heap)
        verdict = search.frontier.verdict(depths)
        if verdict is None:
            batch = [(cost, depths, irr_rank, node)]
            tuples = [depths]
            while heap and len(tuples) < _FRONTIER_WIDTH:
                entry = heapq.heappop(heap)
                batch.append(entry)
                if search.frontier.verdict(entry[1]) is None:
                    tuples.append(entry[1])
            search.frontier.evaluate(tuples)
            for entry in batch:
                heapq.heappush(heap, entry)
            continue
        if verdict and search.budget_ok(depths, irr_rank):
            return depths, irr_rank
        for i in range(len(node)):
            limit = len(irr) if i == len(node) - 1 else len(options[i])
            if node[i] + 1 >= limit:
                continue
            successor = node[:i] + (node[i] + 1,) + node[i + 1 :]
            if successor in seen:
                continue
            seen.add(successor)
            succ_cost, succ_depths = key(successor)
            if succ_cost > inc_cost:
                continue
            heapq.heappush(
                heap, (succ_cost, succ_depths, successor[-1], successor)
            )
    return best  # pragma: no cover - incumbent is always reachable


def exhaustive_allocation(
    flowset: FlowSet,
    *,
    analysis: Analysis | None = None,
    lo: int = 1,
    hi: int = 4,
    cost_model: CostModel | Mapping[str, Any] | None = None,
    budget: int | None = None,
) -> AllocationResult:
    """Brute-force oracle: every depth vector, no pruning, no ordering.

    Deliberately shares nothing with :func:`optimize_allocation`'s
    search — it enumerates the full ``(hi−lo+1)^num_routers`` grid and
    keeps the cheapest schedulable vector, which is what makes it a
    trustworthy referee in ``tests/core/test_allocate_oracle.py``.
    Exponential by design: keep it to small platforms.
    """
    if not 1 <= lo <= hi:
        raise ValueError(f"need 1 <= lo <= hi, got [{lo}, {hi}]")
    if analysis is None:
        analysis = IBNAnalysis()
    platform = flowset.platform
    num_routers = platform.topology.num_routers
    model = cost_model_from_dict(cost_model, hi=hi, num_routers=num_routers)
    graph = InterferenceGraph(flowset)
    evaluations = 0
    best_cost: int | float | None = None
    best_map: dict[int, int] | None = None
    for combo in itertools.product(range(lo, hi + 1), repeat=num_routers):
        if budget is not None and sum(combo) > budget:
            continue
        buf_map = dict(enumerate(combo))
        cost = model.allocation_cost(buf_map)
        if best_cost is not None and cost >= best_cost:
            continue
        variant = flowset.on_platform(
            platform.with_buffers(platform.buf, buf_map=buf_map)
        )
        evaluations += 1
        if is_schedulable(variant, analysis, graph=graph):
            best_cost = cost
            best_map = buf_map
    if best_map is None:
        return AllocationResult(
            feasible=False,
            certified=True,
            buf_map=None,
            cost=None,
            total_depth=None,
            evaluations=evaluations,
            frontiers=0,
            relevant=tuple(range(num_routers)),
        )
    return AllocationResult(
        feasible=True,
        certified=True,
        buf_map=best_map,
        cost=best_cost,
        total_depth=sum(best_map.values()),
        evaluations=evaluations,
        frontiers=0,
        relevant=tuple(range(num_routers)),
    )


def allocation_summary(
    flowset: FlowSet,
    *,
    analysis_name: str = "ibn",
    lo: int = 1,
    hi: int = 8,
    cost_model: Mapping[str, Any] | CostModel | None = None,
    budget: int | None = None,
    max_evaluations: int | None = None,
) -> dict:
    """JSON-able allocation document, identical across every surface.

    The request-friendly face of :func:`optimize_allocation`, shared by
    ``python -m repro allocate --json``, ``POST /allocate`` and the
    ``allocation`` campaign kind — same spec in, same bytes out, which
    is what makes the endpoint cacheable and campaign resumes
    byte-identical.

    >>> from repro.workloads.didactic import didactic_flowset
    >>> doc = allocation_summary(didactic_flowset(), hi=4)
    >>> doc["allocation"]["feasible"], doc["allocation"]["certified"]
    (True, True)
    """
    num_routers = flowset.platform.topology.num_routers
    model = cost_model_from_dict(cost_model, hi=hi, num_routers=num_routers)
    result = optimize_allocation(
        flowset,
        analysis=analysis_by_name(analysis_name),
        lo=lo,
        hi=hi,
        cost_model=model,
        budget=budget,
        max_evaluations=max_evaluations,
    )
    return {
        "allocation": {
            "feasible": result.feasible,
            "certified": result.certified,
            "cost": result.cost,
            "total_depth": result.total_depth,
            "buf_map": (
                None
                if result.buf_map is None
                else {
                    str(router): depth
                    for router, depth in sorted(result.buf_map.items())
                }
            ),
        },
        "search": {
            "evaluations": result.evaluations,
            "frontiers": result.frontiers,
            "relevant_routers": list(result.relevant),
        },
        "spec": {
            "analysis": analysis_name,
            "lo": lo,
            "hi": hi,
            "budget": budget,
            "cost_model": model.to_dict(),
        },
    }
