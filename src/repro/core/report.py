"""Human-readable tables for analysis results.

These renderers back the examples and the benchmark harness output; they
print plain text so results are usable over SSH and in CI logs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.engine import AnalysisResult


def _render_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))
    lines = [
        "  ".join(h.ljust(widths[col]) for col, h in enumerate(header)).rstrip(),
        "  ".join("-" * widths[col] for col in range(len(header))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def result_table(result: AnalysisResult) -> str:
    """Per-flow table for a single analysis run.

    >>> # doctest-free: exercised in tests/core/test_report.py
    """
    header = ["flow", "P", "C", "T", "D", "R", "slack", "verdict"]
    rows = []
    for flow_result in result.flows.values():
        flow = result.flowset.flow(flow_result.name)
        verdict = "ok" if flow_result.schedulable else "MISS"
        if not flow_result.converged:
            verdict = "MISS(>D)"
        if flow_result.tainted:
            verdict += "*"
        rows.append(
            [
                flow_result.name,
                str(flow_result.priority),
                str(flow_result.c),
                str(flow.period),
                str(flow_result.deadline),
                str(flow_result.response_time),
                str(flow_result.slack),
                verdict,
            ]
        )
    title = f"analysis {result.analysis_name}"
    if result.unsafe:
        title += "  (UNSAFE under MPB - reference only)"
    if not result.complete:
        title += "  (early exit: incomplete)"
    return f"{title}\n{_render_table(header, rows)}"


def explain_flow(result: AnalysisResult, name: str) -> str:
    """Render a flow's full interference tree.

    Shows every direct interferer τj with its hit count and per-hit cost,
    and — when the analysis carries MPB terms — decomposes each
    ``I^down_ji`` into the indirect interferers τk behind it, including
    their upstream/downstream classification and the buffered-interference
    cap of Equation 6.  Requires the result to have been produced with
    ``collect_breakdown=True``.
    """
    ctx = result.context
    if ctx is None:
        raise ValueError(
            "explain_flow needs a result produced with collect_breakdown=True"
        )
    flow_result = result.flows[name]
    graph = ctx.graph
    i = graph.index(name)
    flow = result.flowset.flow(name)
    lines = [
        f"{name} under {result.analysis_name}: "
        f"R = {flow_result.response_time} "
        f"(C = {flow_result.c}, D = {flow_result.deadline}, "
        f"{'meets deadline' if flow_result.schedulable else 'MISSES deadline'})"
    ]
    if flow.is_local:
        lines.append("  local flow: never enters the network")
        return "\n".join(lines)
    if not flow_result.breakdown:
        lines.append("  no higher-priority flow shares a link: R = C")
        return "\n".join(lines)
    for term in flow_result.breakdown:
        j = graph.index(term.interferer)
        lines.append(
            f"  ← {term.interferer}: {term.hits} hit(s) × {term.hit_cost} "
            f"cycles = {term.total}  "
            f"(C_j = {ctx.c[j]}, I_down = {term.downstream_term}, "
            f"window jitter = {term.window_jitter})"
        )
        upstream, downstream = graph.updown_by_index(i, j)
        for k in upstream:
            k_name = graph.name(k)
            lines.append(
                f"      ↑ upstream indirect: {k_name} hits "
                f"{term.interferer} before cd({name}, {term.interferer})"
            )
        if downstream:
            bi = ctx.buffered_interference(i, j)
            for k in downstream:
                k_name = graph.name(k)
                per_hit = ctx.hit_term.get((j, k), 0)
                lines.append(
                    f"      ↓ downstream indirect: {k_name} "
                    f"(per-hit downstream cost {per_hit}, "
                    f"buffered-interference cap bi = {bi})"
                )
            if upstream:
                lines.append(
                    "      rule: upstream + downstream present -> "
                    "Equation 3 (XLWX fallback)"
                )
            elif result.analysis_name.startswith("IBN"):
                lines.append(
                    "      rule: no upstream interference -> Equation 8 "
                    "(min of cap and downstream cost per hit)"
                )
    return "\n".join(lines)


def comparison_table(results: Mapping[str, AnalysisResult]) -> str:
    """Side-by-side response-time table, one column per analysis.

    Mirrors the layout of the paper's Table II (flows as rows, analyses as
    columns).
    """
    if not results:
        raise ValueError("no results to tabulate")
    labels = list(results)
    first = results[labels[0]]
    names = list(first.flows)
    header = ["flow", "C", "T", "D"] + [f"R_{label}" for label in labels]
    rows = []
    for name in names:
        flow = first.flowset.flow(name)
        row = [
            name,
            str(first.flows[name].c),
            str(flow.period),
            str(flow.deadline),
        ]
        for label in labels:
            flow_result = results[label].flows.get(name)
            if flow_result is None:
                row.append("-")
            else:
                marker = "" if flow_result.schedulable else "!"
                row.append(f"{flow_result.response_time}{marker}")
        rows.append(row)
    return _render_table(header, rows)
