"""XLW16: the original Xiong et al. 2016 analysis [12] (paper Equation 4).

The first analysis to identify and account for multi-point progressive
blocking.  It bounds *upstream* indirect interference by using
``I^up_ji`` as an interference-jitter term inside the ceiling::

    R_i = C_i + Σ_{τj ∈ S^D_i} ⌈(R_i + J_j + I^up_ji)/T_j⌉ · (C_j + I^down_ji)

Indrusiak et al. [6] disproved this with a counter-example: ``I^up_ji``
cannot capture all upstream indirect-interference effects, so Equation 4
can be **optimistic**.  The corrected version (XLWX) replaces the jitter
term with ``J^I_j = R_j − C_j``.

This class exists for didactic and regression purposes — e.g. to show, on
concrete scenarios, bounds below those of the safe analyses — and is
flagged ``unsafe``.
"""

from __future__ import annotations

from repro.core.analyses.base import Analysis, AnalysisContext


class XLW16Analysis(Analysis):
    """Xiong et al. 2016, Equation 4 — shown optimistic by [6]."""

    name = "XLW16"
    unsafe = True

    def downstream_term(self, ctx: AnalysisContext, i: int, j: int) -> int:
        _, downstream = ctx.graph.updown_by_index(i, j)
        return sum(ctx.total[(j, k)] for k in downstream)

    def indirect_jitter(self, ctx: AnalysisContext, i: int, j: int) -> int:
        upstream, _ = ctx.graph.updown_by_index(i, j)
        return sum(ctx.total[(j, k)] for k in upstream)
