"""KIM98: direct-interference-only analysis (Kim et al. 1998 [9]).

The historical baseline the paper's related work traces the lineage to:
Kim et al. introduced the direct/indirect interference-set distinction
that SB, XLWX and IBN all build on, but their response-time bound charges
only *direct* interference::

    R_i = C_i + Σ_{τj ∈ S^D_i} ⌈(R_i + J_j)/T_j⌉ · C_j

with no interference-jitter term: it misses the "back-to-back hit"
phenomenon (a τj packet delayed by τk arriving compressed against the
next one), which Shi & Burns later covered with ``J^I_j = R_j − C_j`` —
and of course it predates the MPB observation entirely.

Kept as the deepest reference point of the didactic lineage
(KIM98 ≤ SB ≤ XLWX pointwise, all three relations property-tested);
flagged ``unsafe`` on both counts.
"""

from __future__ import annotations

from repro.core.analyses.base import Analysis, AnalysisContext


class Kim98Analysis(Analysis):
    """Kim et al. 1998: direct interference only (doubly optimistic)."""

    name = "KIM98"
    unsafe = True

    def downstream_term(self, ctx: AnalysisContext, i: int, j: int) -> int:
        return 0

    def indirect_jitter(self, ctx: AnalysisContext, i: int, j: int) -> int:
        return 0
