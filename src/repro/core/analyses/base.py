"""Analysis strategy interface and the shared computation context.

Every analysis in this family instantiates the same outer recurrence
(paper Equation 5 shape)::

    R_i = C_i + Σ_{τj ∈ S^D_i} ⌈(R_i + J_j + jitter_term_ji) / T_j⌉ · (C_j + I^down_ji)

and differs only in two strategy points, which is exactly the interface
below:

* ``downstream_term(ctx, i, j)`` — the extra per-hit interference
  ``I^down_ji`` beyond τj's zero-load latency (0 for SB; Eq. 3 for XLWX;
  Eq. 8 with the buffer bound for IBN);
* ``indirect_jitter(ctx, i, j)`` — the jitter term added to τj's release
  jitter inside the ceiling (``J^I_j = R_j − C_j`` for SB/XLWX/IBN;
  the unsafe ``I^up_ji`` for XLW16).

The :class:`AnalysisContext` carries everything already computed for
higher-priority flows: converged response times, per-pair hit terms and
per-pair total interference contributions.  The engine fills it in
priority order, so an analysis can rely on all τj/τk quantities being
present when a lower-priority flow is processed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.interference import InterferenceGraph
from repro.flows.flow import Flow
from repro.flows.flowset import FlowSet


@dataclass
class AnalysisContext:
    """Mutable state threaded through one analysis run.

    Indices are priority-order indices from the
    :class:`~repro.core.interference.InterferenceGraph` (0 = highest
    priority).  ``hit_term[(i, j)]`` is the per-hit cost ``C_j + I^down_ji``
    used in τi's recurrence; ``total[(i, j)]`` is τj's total converged
    contribution to ``R_i`` — the ``I_kj`` of the paper's Equation 3.
    """

    flowset: FlowSet
    graph: InterferenceGraph
    flows: tuple[Flow, ...] = field(init=False)
    c: list[int] = field(init=False)
    #: per-flow ``T_j`` / ``J_j`` as parallel arrays, so the hot loops in
    #: the engine and the analyses index lists instead of touching Flow
    #: attributes.
    period: list[int] = field(init=False)
    jitter: list[int] = field(init=False)
    response: dict[int, int] = field(default_factory=dict)
    converged: dict[int, bool] = field(default_factory=dict)
    hit_term: dict[tuple[int, int], int] = field(default_factory=dict)
    total: dict[tuple[int, int], int] = field(default_factory=dict)
    #: memo for IBN's downstream hit counts ``⌈(R_j + J_k)/T_k⌉`` — the
    #: value depends only on (j, k), not on the analysed flow τi, so it is
    #: shared across every τi having τj as a direct interferer.
    downstream_hits: dict[tuple[int, int], int] = field(default_factory=dict)
    #: Equation 6's per-link factor ``buf·linkl`` on homogeneous platforms
    #: (None when per-router depths differ and the per-link sum applies).
    bi_unit: int | None = field(init=False)
    #: the graph's up/down partition memo table, bound once here so the
    #: per-pair analysis code probes it without attribute walks (misses
    #: are filled via ``graph.updown_partition``).
    updown_cache: dict = field(init=False)

    def __post_init__(self):
        self.flows = self.flowset.flows
        self.c = [self.flowset.c(f.name) for f in self.flows]
        self.period = [f.period for f in self.flows]
        self.jitter = [f.jitter for f in self.flows]
        platform = self.flowset.platform
        self.bi_unit = (
            platform.buf * platform.linkl if platform.is_homogeneous else None
        )
        self.updown_cache = self.graph.updown_cache

    def interference_jitter(self, j: int) -> int:
        """``J^I_j = R_j − C_j`` (the fix of Indrusiak et al. [6])."""
        return self.response[j] - self.c[j]

    def buffered_interference(self, i: int, j: int) -> int:
        """Paper Equation 6: ``bi_ij = buf(Ξ) · linkl(Ξ) · |cd_ij|``.

        The time for one full contention domain's worth of buffered τj
        flits to drain past τi — the paper's cap on how much already-seen
        interference a single downstream hit can replay.

        On heterogeneous platforms (per-router ``buf_map``) the product
        generalises to a per-link sum,
        ``linkl · Σ_{λ ∈ cd_ij} buf(λ)``, which reduces to the paper's
        formula when all routers share one depth.
        """
        if self.bi_unit is not None:
            return self.bi_unit * self.graph.cd_size_by_index(i, j)
        platform = self.flowset.platform
        return platform.linkl * sum(
            platform.buf_of_link(link)
            for link in self.graph.cd_links_by_index(i, j)
        )


class Analysis(ABC):
    """A response-time analysis, expressed as the two strategy points that
    differentiate the members of this analysis family."""

    #: short identifier used in tables and plots ("SB", "XLWX", ...)
    name: str = "?"
    #: True for analyses known to be optimistic under MPB (SB, XLW16);
    #: their results are presented for comparison, never as guarantees.
    unsafe: bool = False

    @abstractmethod
    def downstream_term(self, ctx: AnalysisContext, i: int, j: int) -> int:
        """``I^down_ji``: per-hit interference beyond ``C_j`` (>= 0)."""

    def indirect_jitter(self, ctx: AnalysisContext, i: int, j: int) -> int:
        """Jitter term (beyond ``J_j``) in τj's ceiling for τi's recurrence.

        Defaults to the interference jitter ``J^I_j = R_j − C_j`` used by
        SB, XLWX and IBN.
        """
        return ctx.interference_jitter(j)

    def label(self, platform_buf: int | None = None) -> str:
        """Display label; IBN overrides to carry the buffer size (IBN2...)."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
