"""SB: Shi & Burns 2008 [11].

The classic analysis: a packet of τi suffers, from every direct interferer
τj, at most ``⌈(R_i + J_j + J^I_j)/T_j⌉`` hits of cost ``C_j`` each, where
the interference jitter ``J^I_j = R_j − C_j`` accounts for indirect
interference compressing consecutive τj packets ("back-to-back hits").

Xiong et al. [12] showed this is **optimistic under multi-point progressive
blocking**: a single τj packet can hit τi more than once when τj is blocked
downstream and its buffered flits replay interference.  The paper keeps SB
as the (unsafe) upper reference curve in Figure 4; so do we, with
``unsafe=True`` so no caller mistakes it for a guarantee.
"""

from __future__ import annotations

from repro.core.analyses.base import Analysis, AnalysisContext


class SBAnalysis(Analysis):
    """Shi & Burns direct + indirect-jitter analysis (optimistic under MPB)."""

    name = "SB"
    unsafe = True

    def downstream_term(self, ctx: AnalysisContext, i: int, j: int) -> int:
        # SB predates the MPB observation: each hit costs exactly C_j.
        return 0
