"""IBN: the paper's buffer-aware analysis (Equations 6-8).

The key observation: the interference a τj packet replays onto τi beyond
``C_j`` consists of τj flits *buffered inside their contention domain*
``cd_ij``.  Each downstream hit by an indirectly interfering τk can build
up at most one full contention domain's worth of buffered flits, so the
replayed interference per hit is bounded by Equation 6::

    bi_ij = buf(Ξ) · linkl(Ξ) · |cd_ij|

Equation 8 then charges, for every downstream hit (counted with τk's
period over τj's response window), the smaller of the buffer bound and the
XLWX-style downstream cost::

    I^down_ji = Σ_{τk ∈ S^{down_j}_{I_i}} ⌈(R_j + J_k)/T_k⌉ · min(bi_ij, C_k + I^down_kj)

Equation 8 can be optimistic when τj suffers *both* upstream and
downstream indirect interference (its packets arrive "chopped-up" into the
contention domain, so buffered-flit accounting no longer telescopes).  The
paper's application rule therefore falls back to XLWX's Equation 3 for
such τj — making IBN tighter than, and never looser than, XLWX.

Two knobs are exposed for ablation studies (defaults follow the paper):

* ``upstream_rule="pairwise"`` uses the paper's formal set
  ``S^{up_j}_{I_i}`` to decide the fallback; ``"any_upstream"`` is a more
  conservative variant that also counts *direct* interferers of τi hitting
  τj upstream of ``cd_ij``;
* ``use_buffer_bound=False`` disables the ``min`` (degenerating to a
  hit-recounted XLWX term), useful to isolate where the tightness comes
  from.
"""

from __future__ import annotations

from repro.core.analyses.base import Analysis, AnalysisContext


class IBNAnalysis(Analysis):
    """The paper's analysis: buffer-aware MPB bounds, tighter than XLWX."""

    name = "IBN"
    unsafe = False

    def __init__(
        self,
        *,
        upstream_rule: str = "pairwise",
        use_buffer_bound: bool = True,
    ):
        if upstream_rule not in ("pairwise", "any_upstream"):
            raise ValueError(
                f"unknown upstream_rule {upstream_rule!r}; "
                "expected 'pairwise' or 'any_upstream'"
            )
        self.upstream_rule = upstream_rule
        self.use_buffer_bound = use_buffer_bound

    def downstream_term(self, ctx: AnalysisContext, i: int, j: int) -> int:
        cached = ctx.updown_cache.get((i, j))
        if cached is None:
            cached = ctx.graph.updown_partition(i, j)
        upstream, downstream = cached
        if not downstream:
            return 0
        if upstream or (
            self.upstream_rule == "any_upstream"
            and self._any_direct_upstream(ctx, i, j)
        ):
            # Chopped-up arrival: buffered-interference accounting does not
            # hold, use XLWX's Equation 3 verbatim (same per-pair totals).
            totals = ctx.total
            fallback = 0
            for k in downstream:
                fallback += totals[(j, k)]
            return fallback
        bi = ctx.buffered_interference(i, j)
        r_j = ctx.response[j]
        periods, jitters = ctx.period, ctx.jitter
        hit_term, hits_memo = ctx.hit_term, ctx.downstream_hits
        use_bound = self.use_buffer_bound
        total = 0
        for k in downstream:
            key = (j, k)
            hits = hits_memo.get(key)
            if hits is None:
                hits = -(-(r_j + jitters[k]) // periods[k])
                hits_memo[key] = hits
            per_hit = hit_term[key]
            if use_bound and bi < per_hit:
                per_hit = bi
            total += hits * per_hit
        return total

    def _any_direct_upstream(
        self, ctx: AnalysisContext, i: int, j: int
    ) -> bool:
        """The "any_upstream" widening: is any *direct* interferer of τi
        hitting τj strictly upstream of cd_ij on τj's route?"""
        cd_lo, _ = ctx.graph.cd_span_on(j, i)
        for k in ctx.graph.direct_by_index(j):
            if k == i:
                continue
            _, jk_hi = ctx.graph.cd_span_on(j, k)
            if jk_hi < cd_lo:
                return True
        return False

    def label(self, platform_buf: int | None = None) -> str:
        """Paper-style label carrying the analysed buffer size (e.g. IBN2)."""
        if platform_buf is None:
            return self.name
        return f"{self.name}{platform_buf}"

    def __repr__(self) -> str:
        return (
            f"IBNAnalysis(upstream_rule={self.upstream_rule!r}, "
            f"use_buffer_bound={self.use_buffer_bound})"
        )
