"""IBN: the paper's buffer-aware analysis (Equations 6-8).

The key observation: the interference a τj packet replays onto τi beyond
``C_j`` consists of τj flits *buffered inside their contention domain*
``cd_ij``.  Each downstream hit by an indirectly interfering τk can build
up at most one full contention domain's worth of buffered flits, so the
replayed interference per hit is bounded by Equation 6::

    bi_ij = buf(Ξ) · linkl(Ξ) · |cd_ij|

Equation 8 then charges, for every downstream hit (counted with τk's
period over τj's response window), the smaller of the buffer bound and the
XLWX-style downstream cost::

    I^down_ji = Σ_{τk ∈ S^{down_j}_{I_i}} ⌈(R_j + J_k)/T_k⌉ · min(bi_ij, C_k + I^down_kj)

Equation 8 can be optimistic when τj suffers *both* upstream and
downstream indirect interference (its packets arrive "chopped-up" into the
contention domain, so buffered-flit accounting no longer telescopes).  The
paper's application rule therefore falls back to XLWX's Equation 3 for
such τj — making IBN tighter than, and never looser than, XLWX.

Two knobs are exposed for ablation studies (defaults follow the paper):

* ``upstream_rule="pairwise"`` uses the paper's formal set
  ``S^{up_j}_{I_i}`` to decide the fallback; ``"any_upstream"`` is a more
  conservative variant that also counts *direct* interferers of τi hitting
  τj upstream of ``cd_ij``;
* ``use_buffer_bound=False`` disables the ``min`` (degenerating to a
  hit-recounted XLWX term), useful to isolate where the tightness comes
  from.
"""

from __future__ import annotations

from repro.core.analyses.base import Analysis, AnalysisContext
from repro.util.mathx import ceil_div


class IBNAnalysis(Analysis):
    """The paper's analysis: buffer-aware MPB bounds, tighter than XLWX."""

    name = "IBN"
    unsafe = False

    def __init__(
        self,
        *,
        upstream_rule: str = "pairwise",
        use_buffer_bound: bool = True,
    ):
        if upstream_rule not in ("pairwise", "any_upstream"):
            raise ValueError(
                f"unknown upstream_rule {upstream_rule!r}; "
                "expected 'pairwise' or 'any_upstream'"
            )
        self.upstream_rule = upstream_rule
        self.use_buffer_bound = use_buffer_bound

    def downstream_term(self, ctx: AnalysisContext, i: int, j: int) -> int:
        upstream, downstream = ctx.graph.updown_by_index(i, j)
        if not downstream:
            return 0
        if self._suffers_upstream(ctx, i, j, upstream):
            # Chopped-up arrival: buffered-interference accounting does not
            # hold, use XLWX's Equation 3 verbatim (same per-pair totals).
            return sum(ctx.total[(j, k)] for k in downstream)
        bi = ctx.buffered_interference(i, j)
        r_j = ctx.response[j]
        total = 0
        for k in downstream:
            flow_k = ctx.flows[k]
            hits = ceil_div(r_j + flow_k.jitter, flow_k.period)
            per_hit = ctx.hit_term[(j, k)]
            if self.use_buffer_bound:
                per_hit = min(bi, per_hit)
            total += hits * per_hit
        return total

    def _suffers_upstream(
        self, ctx: AnalysisContext, i: int, j: int, upstream: tuple[int, ...]
    ) -> bool:
        """Does τj suffer upstream interference w.r.t. its contention with τi?"""
        if upstream:
            return True
        if self.upstream_rule == "pairwise":
            return False
        # "any_upstream": also count direct interferers of τi that hit τj
        # strictly upstream of cd_ij on τj's route.
        cd_lo, _ = ctx.graph.cd_span_on(j, i)
        for k in ctx.graph.direct_by_index(j):
            if k == i:
                continue
            _, jk_hi = ctx.graph.cd_span_on(j, k)
            if jk_hi < cd_lo:
                return True
        return False

    def label(self, platform_buf: int | None = None) -> str:
        """Paper-style label carrying the analysed buffer size (e.g. IBN2)."""
        if platform_buf is None:
            return self.name
        return f"{self.name}{platform_buf}"

    def __repr__(self) -> str:
        return (
            f"IBNAnalysis(upstream_rule={self.upstream_rule!r}, "
            f"use_buffer_bound={self.use_buffer_bound})"
        )
