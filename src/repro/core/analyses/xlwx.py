"""XLWX: Xiong et al. 2017 [13] with the fix of Indrusiak et al. [6].

The state of the art the paper improves on, and the only prior analysis
that is safe under MPB.  Its recurrence (paper Equation 5) charges every
hit of a direct interferer τj at ``C_j + I^down_ji``, where Equation 3::

    I^down_ji = Σ_{τk ∈ S^{down_j}_{I_i}} I_kj

adds the *entire* worst-case interference ``I_kj`` that each downstream
indirect interferer τk imposes on τj.  The intuition (paper Section IV):
the interference τj replays onto τi beyond ``C_j`` can never exceed the
amount of time τj itself was held up downstream of their shared links.

``I_kj`` is exactly τk's total converged contribution to τj's own
response-time recurrence, which the engine cached while processing τj
(all members of these sets have higher priority than τj, which in turn has
higher priority than τi, so the cache is always warm).
"""

from __future__ import annotations

from repro.core.analyses.base import Analysis, AnalysisContext


class XLWXAnalysis(Analysis):
    """Xiong et al. 2017 (corrected): safe but pessimistic under MPB."""

    name = "XLWX"
    unsafe = False

    def downstream_term(self, ctx: AnalysisContext, i: int, j: int) -> int:
        cached = ctx.updown_cache.get((i, j))
        if cached is None:
            cached = ctx.graph.updown_partition(i, j)
        totals = ctx.total
        term = 0
        for k in cached[1]:
            term += totals[(j, k)]
        return term
