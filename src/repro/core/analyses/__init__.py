"""Worst-case response-time analyses for priority-preemptive wormhole NoCs.

Five analyses from the paper's narrative, oldest first:

* :class:`Kim98Analysis` — Kim et al. 1998 [9]: direct interference only;
  the origin of the interference-set formulation.  **Optimistic** even
  without MPB (no back-to-back-hit jitter).
* :class:`SBAnalysis` — Shi & Burns 2008 [11]: direct interference plus
  indirect-interference jitter.  **Optimistic under MPB** (kept as the
  paper's unsafe reference curve).
* :class:`XLW16Analysis` — Xiong et al. 2016 [12], Equation 4: first
  account of MPB, later shown optimistic by Indrusiak et al. [6].  Kept for
  didactic purposes only.
* :class:`XLWXAnalysis` — Xiong et al. 2017 [13] with the fix from [6],
  Equation 5: the safe state of the art the paper compares against.
* :class:`IBNAnalysis` — the paper's contribution: buffer-aware bounds on
  downstream indirect interference (Equations 6-8), never looser than XLWX.

All are stateless strategy objects consumed by
:func:`repro.core.engine.analyze`.
"""

from repro.core.analyses.base import Analysis, AnalysisContext
from repro.core.analyses.kim98 import Kim98Analysis
from repro.core.analyses.sb import SBAnalysis
from repro.core.analyses.xlw16 import XLW16Analysis
from repro.core.analyses.xlwx import XLWXAnalysis
from repro.core.analyses.ibn import IBNAnalysis

#: Selector name -> analysis class: the one mapping the CLI, the serving
#: layer and hand-written configs all resolve analysis names through.
ANALYSES_BY_NAME: dict[str, type[Analysis]] = {
    "kim98": Kim98Analysis,
    "sb": SBAnalysis,
    "xlw16": XLW16Analysis,
    "xlwx": XLWXAnalysis,
    "ibn": IBNAnalysis,
}

#: What ``analysis == "all"`` means everywhere (CLI ``--analysis all``
#: and the service's ``POST /analyze``): the paper's comparison set in
#: presentation order, tightest safe analysis (IBN) last.  Kim98 is
#: excluded — it predates the indirect-interference model the
#: comparison narrates.
ALL_COMPARISON = ("sb", "xlw16", "xlwx", "ibn")


def analysis_by_name(name: str) -> Analysis:
    """Instantiate an analysis from its selector name.

    >>> analysis_by_name("ibn").__class__.__name__
    'IBNAnalysis'
    """
    try:
        return ANALYSES_BY_NAME[name]()
    except KeyError:
        raise ValueError(
            f"unknown analysis {name!r}; "
            f"choose from {', '.join(sorted(ANALYSES_BY_NAME))}"
        ) from None


__all__ = [
    "ALL_COMPARISON",
    "ANALYSES_BY_NAME",
    "Analysis",
    "AnalysisContext",
    "IBNAnalysis",
    "Kim98Analysis",
    "SBAnalysis",
    "XLW16Analysis",
    "XLWXAnalysis",
    "analysis_by_name",
]
