"""The backend seam: pluggable compiled kernels for the hot paths.

A *backend* optionally accelerates the hot loops with compiled code:

* ``run_levels`` — the batch engine's whole level loop (window jitters,
  downstream terms, fixed points, totals, taint, retirement) over the
  level-major slot arrays :func:`repro.core.batch.analyze_batch` builds;
* ``solve_rows`` — just one level's ceiling-recurrence fixed points,
  for backends that accelerate the inner loop but not the sweep;
* ``sim_run`` — the wormhole simulator's event-deque drain over the flat
  :class:`~repro.sim.network.NetworkState` arrays.

Both hooks are *optional*: a backend exposing ``None`` for a kernel
leaves the caller on its built-in numpy/Python path.  The ``numpy``
backend (the default) provides no kernels at all — it *is* the built-in
path; ``cext`` loads the C library built from ``core/_kernels.c`` (see
:mod:`repro.core._cbuild`).

**Byte-identity is the contract.**  Every kernel must produce results
byte-identical to the built-in path (the equivalence suites are
parametrized over all available backends), which is what makes silent
fallback safe: selecting an unavailable backend degrades to numpy with
a single warning and *identical* results, differing only in speed.

Selection order: an explicit :func:`set_backend` call beats the
``REPRO_BACKEND`` environment variable beats the default (``numpy``).
``set_backend`` also writes ``REPRO_BACKEND`` back into ``os.environ``
so worker processes — forked *or* spawned — inherit the choice; the
campaign scheduler additionally ships the name inside each job block
(see DESIGN.md, "Backend seam") so late-joining pool workers agree.
"""

from __future__ import annotations

import contextlib
import ctypes
import os
import warnings
from ctypes import c_int64, c_void_p

try:  # compiled backends are numpy-in, numpy-out; no numpy, no seam
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

ENV_VAR = "REPRO_BACKEND"
DEFAULT_NAME = "numpy"


class Backend:
    """One named backend; subclasses attach compiled kernels.

    ``solve_rows`` / ``sim_run`` are either ``None`` (use the caller's
    built-in path) or callables with the contracts described on
    :class:`CextBackend`.
    """

    name = "base"
    solve_rows = None
    run_levels = None
    sim_run = None

    def available(self) -> bool:
        """Can this backend serve kernels right now (probing may build)?"""
        return True

    def detail(self) -> str:
        """One-line availability/build status for diagnostics."""
        return "built-in numpy/Python paths"


class NumpyBackend(Backend):
    """The default: the pure numpy/Python implementations themselves."""

    name = "numpy"


class CextBackend(Backend):
    """C kernels from ``_kernels.c``, loaded via ctypes on first use.

    The first availability probe locates a prebuilt artifact or compiles
    the source on demand (:func:`repro.core._cbuild.load`); failure is
    remembered and reported, never raised past :func:`get_backend`.
    """

    name = "cext"

    def __init__(self, loader=None):
        self._loader = loader
        self._lib = None
        self._artifact = None
        self._error: str | None = None
        self._probed = False

    # -- availability ------------------------------------------------------

    def available(self) -> bool:
        if not self._probed:
            self._probed = True
            if _np is None:
                self._error = "numpy unavailable"
            else:
                try:
                    loader = self._loader
                    if loader is None:
                        from repro.core import _cbuild
                        loader = _cbuild.load
                    self._lib, self._artifact = loader()
                    self._declare()
                except Exception as exc:  # noqa: BLE001 - report, not raise
                    self._lib = None
                    self._error = str(exc)
        return self._lib is not None

    def detail(self) -> str:
        if not self._probed:
            return "not probed yet"
        if self._lib is not None:
            return f"loaded {self._artifact}"
        return f"unavailable: {self._error}"

    def _declare(self) -> None:
        lib = self._lib
        lib.repro_solve_rows.restype = None
        lib.repro_solve_rows.argtypes = (
            [c_int64] + [c_void_p] * 9 + [c_int64] * 2 + [c_void_p] * 4
        )
        lib.repro_run_levels.restype = None
        lib.repro_run_levels.argtypes = [c_void_p] * 34
        lib.repro_sim_run.restype = c_int64
        lib.repro_sim_run.argtypes = [c_void_p] * 47

    # -- kernel: batched ceiling recurrence --------------------------------

    def solve_rows(self, start, warm_active, base, give, cold, wj, period,
                   cost, counts):
        """Drop-in for :func:`repro.core.batch._solve_rows` (same contract:
        byte-identical outputs, same dtypes)."""
        from repro.core.batch import _MAX_ITERATIONS, _SAFE_RESPONSE

        i64 = lambda a: _np.ascontiguousarray(a, dtype=_np.int64)  # noqa: E731
        start = i64(start)
        warm = _np.ascontiguousarray(warm_active, dtype=_np.bool_)
        base, give, cold = i64(base), i64(give), i64(cold)
        wj, period, cost, counts = i64(wj), i64(period), i64(cost), i64(counts)
        n = len(start)
        out_r = _np.zeros(n, dtype=_np.int64)
        out_conv = _np.zeros(n, dtype=_np.bool_)
        out_iters = _np.zeros(n, dtype=_np.int64)
        out_unsafe = _np.zeros(n, dtype=_np.bool_)
        self._lib.repro_solve_rows(
            n, start.ctypes.data, warm.ctypes.data, base.ctypes.data,
            give.ctypes.data, cold.ctypes.data, wj.ctypes.data,
            period.ctypes.data, cost.ctypes.data, counts.ctypes.data,
            _SAFE_RESPONSE, _MAX_ITERATIONS,
            out_r.ctypes.data, out_conv.ctypes.data, out_iters.ctypes.data,
            out_unsafe.ctypes.data,
        )
        return out_r, out_conv, out_iters, out_unsafe

    # -- kernel: the whole level loop --------------------------------------

    def run_levels(
        self, *, max_f, early_exit,
        level_slot_bounds, slot_perm, slot_scn, slot_counts,
        level_pair_bounds, pair_j_slot, pair_mode, pair_fallback,
        pair_bi, pair_use_bound, down_offsets, down_pair, down_k_slot,
        C, T, J, D, BLK, WARM, GIVE,
        R, CONV, TAINT, BAD, totals, hitcost,
        stopped, diverted, last_level, iterations,
    ) -> None:
        """Run :func:`repro.core.batch._run_batch`'s entire level loop.

        Mutates the dynamic-state arrays (``R``/``CONV``/``TAINT``/
        ``BAD``/``totals``/``hitcost``/``stopped``/``diverted``/
        ``last_level``/``iterations``) in place, byte-identically to the
        numpy loop.
        """
        from repro.core.batch import _MAX_ITERATIONS, _SAFE_RESPONSE

        max_cnt = int(slot_counts.max()) if len(slot_counts) else 0
        scr_wj = _np.empty(max(max_cnt, 1), dtype=_np.int64)
        scr_T = _np.empty(max(max_cnt, 1), dtype=_np.int64)
        scr_cost = _np.empty(max(max_cnt, 1), dtype=_np.int64)
        lparams = _np.asarray(
            [max_f, int(bool(early_exit)), _SAFE_RESPONSE, _MAX_ITERATIONS],
            dtype=_np.int64,
        )
        arrays = (
            lparams, level_slot_bounds, slot_perm, slot_scn, slot_counts,
            level_pair_bounds, pair_j_slot, pair_mode, pair_fallback,
            pair_bi, pair_use_bound, down_offsets, down_pair, down_k_slot,
            C, T, J, D, BLK, WARM, GIVE,
            R, CONV, TAINT, BAD, totals, hitcost,
            stopped, diverted, last_level, iterations,
            scr_wj, scr_T, scr_cost,
        )
        self._lib.repro_run_levels(*[a.ctypes.data for a in arrays])

    # -- kernel: simulator event loop --------------------------------------

    def _sim_static(self, tables):
        """Flat numpy mirrors of one flow set's SimTables, cached on it."""
        bundle = tables.cext
        if bundle is not None:
            return bundle
        nf, nl = tables.num_flows, tables.num_links
        ring_off = _np.full(nl * nf, -1, dtype=_np.int64)
        total = 0
        for slot in tables.route_slots:
            ring_off[slot] = total
            total += tables.capacity[slot // nf]
        bundle = {
            "next_of": _np.asarray(tables.next_of, dtype=_np.int32),
            "first_link": _np.asarray(tables.first_link, dtype=_np.int32),
            "priority": _np.asarray(tables.priority_of, dtype=_np.int64),
            "is_local": _np.asarray(tables.is_local, dtype=_np.uint8),
            "capacity": _np.asarray(tables.capacity, dtype=_np.int32),
            "ejection": _np.asarray(tables.ejection, dtype=_np.uint8),
            "buffered": _np.asarray(tables.buffered, dtype=_np.uint8),
            "credit_template": _np.asarray(
                tables.credit_template, dtype=_np.int64
            ),
            "ring_off": ring_off,
            "ring_total": total,
        }
        tables.cext = bundle
        return bundle

    def sim_run(self, tables, pending, *, linkl, routl, credit_delay,
                drain_limit):
        """Drain the whole event loop in C.

        ``pending`` is the simulator's globally sorted release list
        (packet id = list index).  Returns the run's observables as flat
        arrays/ints, or ``None`` when the kernel declined (a ring bound
        tripped — the caller replays the pure-Python loop); raises the
        simulator's stall :class:`AssertionError` on an arbitration bug,
        exactly like the Python path.
        """
        st = self._sim_static(tables)
        nf, nl = tables.num_flows, tables.num_links
        npk = len(pending)
        rel_time = _np.fromiter(
            (p.release_time for p in pending), dtype=_np.int64, count=npk
        )
        rel_flow = _np.fromiter(
            (p.flow_index for p in pending), dtype=_np.int32, count=npk
        )
        rel_len = _np.fromiter(
            (p.length for p in pending), dtype=_np.int32, count=npk
        )
        per_flow = _np.bincount(rel_flow, minlength=nf) if npk else (
            _np.zeros(nf, dtype=_np.int64)
        )
        srcq_off = _np.zeros(nf + 1, dtype=_np.int64)
        _np.cumsum(per_flow, out=srcq_off[1:])
        src_head = srcq_off[:-1].copy()
        src_push = srcq_off[:-1].copy()

        arrive_cap = nl + 2
        credit_cap = max(nl * (credit_delay + 2) + 16, 1)
        wake_cap = max(routl, 0) + 3
        cand_cap = nl * nf + nf + 1
        params = _np.zeros(16, dtype=_np.int64)
        params[0:11] = (
            nf, nl, npk, linkl, routl, credit_delay, drain_limit,
            arrive_cap, credit_cap, wake_cap, cand_cap,
        )

        credits = st["credit_template"].copy()
        ring_ready = _np.zeros(max(st["ring_total"], 1), dtype=_np.int64)
        ring_fidx = _np.zeros(max(st["ring_total"], 1), dtype=_np.int32)
        ring_pkt = _np.zeros(max(st["ring_total"], 1), dtype=_np.int32)
        buf_head = _np.zeros(nl * nf, dtype=_np.int32)
        buf_len = _np.zeros(nl * nf, dtype=_np.int32)
        arr_time = _np.zeros(arrive_cap, dtype=_np.int64)
        arr_out = _np.zeros(arrive_cap, dtype=_np.int32)
        arr_flow = _np.zeros(arrive_cap, dtype=_np.int32)
        arr_fidx = _np.zeros(arrive_cap, dtype=_np.int32)
        arr_pkt = _np.zeros(arrive_cap, dtype=_np.int32)
        cr_time = _np.zeros(credit_cap, dtype=_np.int64)
        cr_slot = _np.zeros(credit_cap, dtype=_np.int64)
        wk_time = _np.zeros(wake_cap, dtype=_np.int64)
        srcq = _np.zeros(max(npk, 1), dtype=_np.int32)
        injected = _np.zeros(nf, dtype=_np.int32)
        occ_list = _np.zeros(nl * nf, dtype=_np.int32)
        occ_pos = _np.full(nl * nf, -1, dtype=_np.int32)
        act_list = _np.zeros(nf, dtype=_np.int32)
        act_pos = _np.full(nf, -1, dtype=_np.int32)
        slot_seq = _np.full(nl * nf, -1, dtype=_np.int64)
        busy_until = _np.zeros(nl, dtype=_np.int64)
        head = _np.full(nl, -1, dtype=_np.int32)
        cand_val = _np.zeros(cand_cap, dtype=_np.int64)
        cand_next = _np.zeros(cand_cap, dtype=_np.int32)
        req_list = _np.zeros(max(nl, 1), dtype=_np.int32)
        req_key = _np.zeros(max(nl, 1), dtype=_np.int64)
        worst = _np.zeros(nf, dtype=_np.int64)
        delivered_pkts = _np.zeros(nf, dtype=_np.int64)
        delivered_flits = _np.zeros(nf, dtype=_np.int64)
        flits_per_link = _np.zeros(nl, dtype=_np.int64)
        out = _np.zeros(4, dtype=_np.int64)

        arrays = (
            params, st["next_of"], st["first_link"], st["priority"],
            st["is_local"], st["capacity"], st["ejection"], st["buffered"],
            rel_time, rel_flow, rel_len, credits, st["ring_off"],
            ring_ready, ring_fidx, ring_pkt, buf_head, buf_len,
            arr_time, arr_out, arr_flow, arr_fidx, arr_pkt,
            cr_time, cr_slot, wk_time, srcq_off, srcq, src_head, src_push,
            injected, occ_list, occ_pos, act_list, act_pos, slot_seq,
            busy_until, head, cand_val, cand_next, req_list, req_key,
            worst, delivered_pkts, delivered_flits, flits_per_link, out,
        )
        status = self._lib.repro_sim_run(*[a.ctypes.data for a in arrays])
        if status == 1:
            raise AssertionError(
                f"network stalled at cycle {int(out[0])} with flits in "
                "place and no future events; arbitration bug"
            )
        if status != 0:  # capacity valve: replay in Python
            return None
        return {
            "end_time": int(out[0]),
            "drained": bool(out[1]),
            "flits_in_network": int(out[2]),
            "worst": worst,
            "delivered_pkts": delivered_pkts,
            "delivered_flits": delivered_flits,
            "flits_per_link": flits_per_link,
        }


# ---------------------------------------------------------------------------
# Registry and selection.
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Backend] = {}
_ACTIVE: Backend | None = None
_WARNED: set[str] = set()


def register_backend(backend: Backend, *, replace: bool = False) -> None:
    """Add a backend to the registry (``replace=True`` for tests)."""
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend


def registered_backend_names() -> list[str]:
    """All registered names, registration order (numpy first)."""
    return list(_REGISTRY)


def available_backend_names() -> list[str]:
    """Registered backends whose availability probe succeeds."""
    return [name for name, b in _REGISTRY.items() if b.available()]


def _warn_once(message: str, key: str) -> None:
    if key not in _WARNED:
        _WARNED.add(key)
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def _resolve(name: str | None, *, strict: bool) -> Backend:
    requested = (name or DEFAULT_NAME).strip().lower()
    backend = _REGISTRY.get(requested)
    if backend is None:
        if strict:
            raise ValueError(
                f"unknown backend {requested!r}; "
                f"registered: {', '.join(_REGISTRY)}"
            )
        _warn_once(
            f"unknown backend {requested!r} "
            f"(registered: {', '.join(_REGISTRY)}); using numpy",
            f"unknown:{requested}",
        )
        return _REGISTRY[DEFAULT_NAME]
    if not backend.available():
        _warn_once(
            f"backend {requested!r} unavailable ({backend.detail()}); "
            "falling back to numpy",
            f"unavailable:{requested}",
        )
        return _REGISTRY[DEFAULT_NAME]
    return backend


def get_backend() -> Backend:
    """The active backend (resolving ``REPRO_BACKEND`` on first use)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _resolve(os.environ.get(ENV_VAR), strict=False)
    return _ACTIVE


def set_backend(name: str) -> Backend:
    """Select a backend by name (raises ``ValueError`` on unknown names).

    A known-but-unavailable backend falls back to numpy with a single
    warning — selection can never make results worse, only slower.  The
    requested name is exported as ``REPRO_BACKEND`` so worker processes
    inherit the choice.
    """
    global _ACTIVE
    _resolve(name, strict=True)  # unknown names are an error here
    os.environ[ENV_VAR] = (name or DEFAULT_NAME).strip().lower()
    _ACTIVE = _resolve(name, strict=False)
    return _ACTIVE


def apply_worker_backend(name: str | None) -> Backend:
    """Best-effort selection inside worker processes.

    Jobs ship the coordinator's backend name; workers apply it quietly
    (unknown or unavailable names degrade to numpy exactly like
    :func:`get_backend`, warning once per process).
    """
    global _ACTIVE
    if name:
        os.environ[ENV_VAR] = name
        _ACTIVE = _resolve(name, strict=False)
    return get_backend()


@contextlib.contextmanager
def use_backend(name: str):
    """Temporarily select a backend (tests, probes); restores on exit."""
    global _ACTIVE
    saved_active = _ACTIVE
    saved_env = os.environ.get(ENV_VAR)
    try:
        yield set_backend(name)
    finally:
        _ACTIVE = saved_active
        if saved_env is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = saved_env


def backend_infos() -> list[dict]:
    """Diagnostics rows for every registered backend (``repro backend``)."""
    active = get_backend()
    rows = []
    for name, backend in _REGISTRY.items():
        rows.append(
            {
                "name": name,
                "available": backend.available(),
                "active": backend is active,
                "detail": backend.detail(),
                "kernels": sorted(
                    k for k in ("solve_rows", "run_levels", "sim_run")
                    if getattr(backend, k, None) is not None
                ),
            }
        )
    return rows


def _reset_for_tests() -> None:
    """Forget selection, warnings, and probe state (test isolation)."""
    global _ACTIVE
    _ACTIVE = None
    _WARNED.clear()
    cext = _REGISTRY.get("cext")
    if isinstance(cext, CextBackend):
        cext._probed = False
        cext._lib = None
        cext._error = None


register_backend(NumpyBackend())
register_backend(CextBackend())
