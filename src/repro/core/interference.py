"""Interference sets over a flow set (paper Sections II-III).

Given a :class:`~repro.flows.flowset.FlowSet`, this module computes the
contention geometry every analysis consumes:

* the **contention domain** ``cd_ij = route_i ∩ route_j`` of each flow pair,
  summarised by its size and its position (first/last link order) on each
  of the two routes;
* the **direct interference set** ``S^D_i``: higher-priority flows sharing
  at least one link with τi (Kim et al. / Shi & Burns);
* the **indirect interference set** ``S^I_i``: flows that interfere with a
  member of ``S^D_i`` but not with τi itself;
* Xiong et al.'s partitioning of ``S^I_i ∩ S^D_j`` into the **upstream**
  set ``S^{up_j}_{I_i}`` (τk hits τj before τj meets τi along τj's route)
  and the **downstream** set ``S^{down_j}_{I_i}`` (τk hits τj after).

Internally flows are indexed by priority order (index 0 = highest
priority), so "higher priority than" is simply "smaller index than"; the
public accessors speak flow names.

A structural fact worth noting (asserted in the test suite): every flow in
``S^I_i ∩ S^D_j`` is *strictly* upstream or *strictly* downstream — a flow
whose contention domain with τj overlapped ``cd_ij`` would share a link
with τi and hence be a direct interferer, not an indirect one.

Representation (the analysis kernel's hot path)
-----------------------------------------------
Link ids are dense small integers, so each route is encoded as an integer
**bitmask** (bit ``λ`` set when link ``λ`` is on the route): the pairwise
overlap test of the O(n²) build is a single ``mask_a & mask_b``, and the
contention-domain size is a ``bit_count()``.  Per-flow **position arrays**
(link id → 1-based order on the route, 0 when absent) turn span
computations into list indexing.  All pair geometry lands in flat n×n
tables (``size``/``lo``/``hi`` per route), so the per-pair accessors the
engine hammers are O(1) list lookups with no hashing, and the
lower-priority suffix table used by the non-preemptive blocking term is
built eagerly here rather than lazily on first use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flows.flowset import FlowSet

try:  # optional: vectorized pair discovery (pure-python fallback below)
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

#: Flow-set size from which the numpy pair-discovery path pays for itself;
#: below it, matrix setup costs more than the plain double loop.
_VECTOR_DISCOVERY_MIN_FLOWS = 64


class _LazyRows:
    """List-of-lists view over an int matrix, materialised row by row.

    The geometry tables are indexed ``table[i][j]`` all over the hot path;
    converting a numpy matrix to nested lists up front pays for every row,
    but early-exiting analyses only ever touch the rows of flows they
    processed.  This keeps ``table[i]`` returning a plain list (cheap
    scalar indexing afterwards) while deferring each row's conversion to
    its first access.
    """

    __slots__ = ("_matrix", "_rows")

    def __init__(self, matrix):
        self._matrix = matrix
        self._rows: list[list[int] | None] = [None] * len(matrix)

    def __getitem__(self, i: int) -> list[int]:
        row = self._rows[i]
        if row is None:
            row = self._matrix[i].tolist()
            self._rows[i] = row
        return row

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other):  # tests compare tables across gears
        return [self[i] for i in range(len(self))] == [
            other[i] for i in range(len(other))
        ]


@dataclass(frozen=True)
class PairGeometry:
    """Summary of the contention domain of one unordered flow pair.

    ``size`` is ``|cd_ij|`` (number of shared links); ``lo_a``/``hi_a`` are
    the 1-based orders of the first/last shared link on the route of the
    pair's lower-indexed flow, ``lo_b``/``hi_b`` on the other route.

    Kept as the public value type for pair geometry
    (:meth:`InterferenceGraph.pair_geometry`); internally the graph stores
    the same numbers in flat per-index tables.
    """

    size: int
    lo_a: int
    hi_a: int
    lo_b: int
    hi_b: int


class InterferenceGraph:
    """All pairwise contention geometry and interference sets of a flow set.

    Construction is O(n² + overlapping pairs · |cd|); the
    upstream/downstream partitions are computed lazily per (τi, τj) pair
    and cached, since the engine only needs them for pairs where τj
    directly interferes with τi.
    """

    def __init__(self, flowset: FlowSet):
        self.flowset = flowset
        flows = flowset.flows
        self._names = [f.name for f in flows]
        self._index = {f.name: idx for idx, f in enumerate(flows)}
        self._routes = [flowset.route(f.name) for f in flows]
        self._direct: list[tuple[int, ...]] = []
        self._direct_sets: list[frozenset[int]] = []
        self._updown_cache: dict[tuple[int, int], tuple[tuple[int, ...], tuple[int, ...]]] = {}
        #: lazily-built S^D bitmasks over flow indices (see direct_masks).
        self._direct_masks: list[int] | None = None
        self._build()

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        routes = self._routes
        n = len(routes)
        num_links = self.flowset.platform.topology.num_links

        masks: list[int] = []
        for route in routes:
            mask = 0
            for link in route:
                mask |= 1 << link
            masks.append(mask)
        self._link_masks = masks

        # Flat n×n geometry tables: cd size (symmetric) and the 1-based
        # first/last orders of cd_ij on flow i's route (row i, column j).
        # 0 size / 0 lo means "routes disjoint".  Two gears fill them: a
        # matrix-algebra path (numpy, pays off from medium sets up) and a
        # scalar bitmask path (small sets, numpy-less installs).
        if _np is not None and n >= _VECTOR_DISCOVERY_MIN_FLOWS:
            self._build_tables_vector(routes, n, num_links)
        else:
            self._build_tables_scalar(routes, masks, n, num_links)
        self._direct_sets = [frozenset(members) for members in self._direct]

        # Suffix link table for the non-preemptive blocking term: for each
        # flow, how many of its route links are also used by *lower*
        # priority flows.  One backward pass over the route masks.
        lower_counts = [0] * n
        accumulated = 0
        for index in range(n - 1, -1, -1):
            lower_counts[index] = (masks[index] & accumulated).bit_count()
            accumulated |= masks[index]
        self._lower_shared_counts = lower_counts

    def _build_tables_vector(self, routes, n: int, num_links: int) -> None:
        """Geometry tables via incidence-matrix products (no per-pair loop).

        Let ``B`` be the n×L 0/1 route-incidence matrix and ``P`` the
        matching matrix of 1-based link orders.  Then for every pair at
        once::

            count[a,b]  = (B·Bᵀ)[a,b]      — |cd_ab|
            sum[a,b]    = (P·Bᵀ)[a,b]      — Σ orders of cd links on τa
            sumsq[a,b]  = (P²·Bᵀ)[a,b]     — Σ orders² of cd links on τa

        A set of ``c`` integers with sum ``s`` is the contiguous run
        starting at ``lo = (2s − c(c−1)) / 2c`` **iff** its sum of squares
        equals that run's — any gap strictly increases the sum of squares
        at fixed count and sum.  That turns both the span extraction and
        the dimension-order contiguity check into elementwise integer
        algebra, and the tables come out through one ``tolist()`` each.
        All quantities are bounded by the route length (≤ a few dozen), so
        float32 matmul and int64 algebra are exact.
        """
        incidence_flat = _np.zeros(n * num_links, dtype=_np.float32)
        orders_flat = _np.zeros(n * num_links, dtype=_np.float32)
        flat_index = _np.fromiter(
            (i * num_links + link for i, route in enumerate(routes) for link in route),
            dtype=_np.int64,
        )
        incidence_flat[flat_index] = 1.0
        orders_flat[flat_index] = _np.fromiter(
            (order for route in routes for order in range(1, len(route) + 1)),
            dtype=_np.float32,
        )
        incidence = incidence_flat.reshape(n, num_links)
        orders = orders_flat.reshape(n, num_links)

        transposed = incidence.T.copy()
        count = (incidence @ transposed).astype(_np.int64)
        _np.fill_diagonal(count, 0)
        order_sum = (orders @ transposed).astype(_np.int64)
        order_sumsq = ((orders * orders) @ transposed).astype(_np.int64)

        # Work sparsely from here: the moment algebra only matters at the
        # overlapping entries (both orientations of each pair).
        rows, cols = _np.nonzero(count)
        c = count[rows, cols]
        order_s = order_sum[rows, cols]
        order_q = order_sumsq[rows, cols]
        two_c = 2 * c
        lo_numer = 2 * order_s - c * (c - 1)
        lo = lo_numer // two_c
        run_sumsq = (
            c * lo * lo + lo * c * (c - 1) + (c - 1) * c * (2 * c - 1) // 6
        )
        contiguous = (
            (lo_numer % two_c == 0) & (lo >= 1) & (order_q == run_sumsq)
        )
        if not contiguous.all():
            first_bad = int(_np.nonzero(~contiguous)[0][0])
            bad_a, bad_b = int(rows[first_bad]), int(cols[first_bad])
            self._raise_not_contiguous(min(bad_a, bad_b), max(bad_a, bad_b))

        lo_mat = _np.zeros_like(count)
        lo_mat[rows, cols] = lo
        hi_mat = _np.zeros_like(count)
        hi_mat[rows, cols] = lo + c - 1
        self._cd_size = _LazyRows(count)
        self._cd_lo = _LazyRows(lo_mat)
        self._cd_hi = _LazyRows(hi_mat)

        # S^D rows: for each flow, the higher-priority (smaller-index)
        # flows it shares links with, ascending — sliced per row out of the
        # row-major nonzero structure of the symmetric count matrix.
        row_starts = _np.searchsorted(rows, _np.arange(n + 1))
        direct: list[tuple[int, ...]] = []
        for i in range(n):
            sharing = cols[row_starts[i]:row_starts[i + 1]]
            direct.append(tuple(sharing[: _np.searchsorted(sharing, i)].tolist()))
        self._direct = direct

        # The S^D bitmasks come almost for free here: pack the adjacency
        # rows to bytes and keep the below-diagonal (higher-priority) part.
        packed = _np.packbits(count > 0, axis=1, bitorder="little")
        self._direct_masks = [
            int.from_bytes(packed[i].tobytes(), "little") & ((1 << i) - 1)
            for i in range(n)
        ]

    def _build_tables_scalar(self, routes, masks, n: int, num_links: int) -> None:
        """Geometry tables via the per-pair bitmask loop (small sets)."""
        positions: list[list[int]] = []
        for route in routes:
            pos = [0] * num_links
            for order, link in enumerate(route, start=1):
                pos[link] = order
            positions.append(pos)

        size = [[0] * n for _ in range(n)]
        lo = [[0] * n for _ in range(n)]
        hi = [[0] * n for _ in range(n)]
        direct: list[list[int]] = [[] for _ in range(n)]
        for a in range(n):
            mask_a = masks[a]
            if not mask_a:
                continue
            route_a = routes[a]
            for b in range(a + 1, n):
                shared = mask_a & masks[b]
                if not shared:
                    continue
                pos_b = positions[b]
                count = shared.bit_count()
                # The cd must be a contiguous run on τa's route: locate its
                # first link by scanning, then read the remaining count−1
                # links straight off the route.  Any gap in that window (or
                # the window overrunning the route) means the run is not
                # contiguous — invalid under dimension-order routing.
                start = 0
                for link in route_a:
                    if pos_b[link]:
                        break
                    start += 1
                end = start + count
                if end > len(route_a):
                    self._raise_not_contiguous(a, b)
                lo_b = hi_b = pos_b[route_a[start]]
                for t in range(start + 1, end):
                    order_b = pos_b[route_a[t]]
                    if not order_b:
                        self._raise_not_contiguous(a, b)
                    if order_b < lo_b:
                        lo_b = order_b
                    elif order_b > hi_b:
                        hi_b = order_b
                if hi_b - lo_b + 1 != count:
                    self._raise_not_contiguous(a, b)
                size[a][b] = size[b][a] = count
                lo[a][b], hi[a][b] = start + 1, end
                lo[b][a], hi[b][a] = lo_b, hi_b
                direct[b].append(a)
        self._cd_size = size
        self._cd_lo = lo
        self._cd_hi = hi
        self._direct = [tuple(members) for members in direct]

    def _raise_not_contiguous(self, a: int, b: int) -> None:
        raise ValueError(
            f"contention domain of flows {self._names[a]!r} and "
            f"{self._names[b]!r} is not a contiguous run of links; the "
            "analyses require dimension-order routing"
        )

    def geometry_matrices(self):
        """Dense ``(cd_size, cd_lo, cd_hi)`` as n×n int64 numpy arrays.

        The batched analysis engine (:mod:`repro.core.batch`) derives its
        flat pair/downstream index tables from these with whole-matrix
        algebra instead of per-pair accessor calls.  Requires numpy; the
        vector discovery gear hands back its backing matrices, the scalar
        gear's nested lists are converted on the fly.
        """
        if _np is None:  # pragma: no cover - the toolchain ships numpy
            raise RuntimeError("geometry_matrices requires numpy")

        def dense(table):
            matrix = getattr(table, "_matrix", None)
            if matrix is not None:
                return matrix
            return _np.array(
                [table[i] for i in range(len(table))], dtype=_np.int64
            )

        return dense(self._cd_size), dense(self._cd_lo), dense(self._cd_hi)

    def pair_geometry(self, i: int, j: int) -> PairGeometry | None:
        """The pair's :class:`PairGeometry` (``None`` when disjoint).

        ``lo_a``/``hi_a`` refer to the lower-indexed flow of the pair,
        matching the unordered-pair convention.
        """
        a, b = (i, j) if i < j else (j, i)
        count = self._cd_size[a][b]
        if count == 0:
            return None
        return PairGeometry(
            size=count,
            lo_a=self._cd_lo[a][b],
            hi_a=self._cd_hi[a][b],
            lo_b=self._cd_lo[b][a],
            hi_b=self._cd_hi[b][a],
        )

    def compatible_with(self, flowset: FlowSet) -> bool:
        """Is this graph valid for ``flowset``?

        The geometry depends only on flows (priorities, endpoints) and
        routes — *not* on buffer depth or latencies — so one graph can be
        shared across platforms differing only in ``buf``/``linkl``/
        ``routl`` (the paper's IBN2-vs-IBN100 comparisons).
        """
        if flowset is self.flowset:
            return True
        mine = self.flowset.platform
        theirs = flowset.platform
        return (
            self.flowset.flows == flowset.flows
            and mine.topology is theirs.topology
            and type(mine.routing) is type(theirs.routing)
        )

    # -- basic geometry -------------------------------------------------------

    def index(self, name: str) -> int:
        """Priority-order index of a flow (0 = highest priority)."""
        return self._index[name]

    def name(self, index: int) -> str:
        """Flow name at a priority-order index."""
        return self._names[index]

    def cd_size_by_index(self, i: int, j: int) -> int:
        """``|cd_ij|`` — number of shared links (0 when disjoint)."""
        return self._cd_size[i][j]

    def cd_size(self, name_i: str, name_j: str) -> int:
        """``|cd_ij|`` by flow names."""
        return self.cd_size_by_index(self._index[name_i], self._index[name_j])

    def cd_links_by_index(self, i: int, j: int) -> tuple[int, ...]:
        """The contention domain's link ids, ordered along τi's route.

        Needed by the heterogeneous-buffer variant of Equation 6 (per-link
        depths); the homogeneous fast path only uses
        :meth:`cd_size_by_index`.
        """
        if self._cd_size[i][j] == 0:
            return ()
        lo, hi = self._cd_lo[i][j], self._cd_hi[i][j]
        return tuple(self._routes[i][lo - 1:hi])

    def cd_links(self, name_i: str, name_j: str) -> tuple[int, ...]:
        """Contention-domain link ids by flow names."""
        return self.cd_links_by_index(self._index[name_i], self._index[name_j])

    def cd_span_on(self, on: int, other: int) -> tuple[int, int]:
        """(first, last) 1-based orders of ``cd`` links on flow ``on``'s route.

        Raises ``ValueError`` when the two routes are disjoint.
        """
        lo = self._cd_lo[on][other]
        if lo == 0:
            raise ValueError(
                f"flows {self._names[on]!r} and {self._names[other]!r} share no links"
            )
        return lo, self._cd_hi[on][other]

    # -- interference sets ------------------------------------------------------

    def direct_by_index(self, i: int) -> tuple[int, ...]:
        """``S^D_i``: indices of higher-priority flows sharing links with τi."""
        return self._direct[i]

    def lower_priority_shared_links(self, i: int) -> int:
        """Number of τi route links also used by *lower*-priority flows.

        Feeds the non-preemptive blocking term for platforms with
        ``linkl > 1`` (see :mod:`repro.core.engine`): on such platforms a
        higher-priority header can stall behind one in-flight
        lower-priority flit on each of these links.  Precomputed in
        :meth:`_build` from the suffix union of route masks.
        """
        return self._lower_shared_counts[i]

    @property
    def updown_cache(self) -> dict:
        """The (i, j) → (upstream, downstream) partition memo table.

        Exposed read-mostly so the per-pair analysis code can probe it
        without a method call; fill misses via :meth:`updown_partition`.
        """
        return self._updown_cache

    @property
    def direct_masks(self) -> list[int]:
        """Per-flow ``S^D_i`` as integer bitmasks over flow *indices*.

        Lets the engine test "does τi directly depend on any flow in this
        set?" with one ``&`` against another index bitmask (taint
        propagation).  Built on first use so pure graph construction does
        not pay for it, then shared by every analysis using this graph.
        """
        masks = self._direct_masks
        if masks is None:
            masks = [
                sum(1 << j for j in members) for members in self._direct
            ]
            self._direct_masks = masks
        return masks

    def direct(self, name: str) -> tuple[str, ...]:
        """``S^D_i`` by flow names."""
        return tuple(self._names[j] for j in self._direct[self._index[name]])

    def indirect_by_index(self, i: int) -> tuple[int, ...]:
        """``S^I_i``: flows interfering with ``S^D_i`` members but not τi."""
        direct = self._direct_sets[i]
        indirect = {
            k
            for j in self._direct[i]
            for k in self._direct[j]
            if k not in direct
        }
        return tuple(sorted(indirect))

    def indirect(self, name: str) -> tuple[str, ...]:
        """``S^I_i`` by flow names."""
        return tuple(self._names[k] for k in self.indirect_by_index(self._index[name]))

    def updown_by_index(
        self, i: int, j: int
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """``(S^{up_j}_{I_i}, S^{down_j}_{I_i})`` as index tuples.

        ``j`` must be a direct interferer of ``i``.  A member τk of
        ``S^I_i ∩ S^D_j`` is upstream when its last shared link with τj
        comes before the first link of ``cd_ij`` on τj's route, downstream
        when its first shared link comes after the last link of ``cd_ij``.
        """
        cached = self._updown_cache.get((i, j))
        if cached is not None:
            return cached
        if j not in self._direct_sets[i]:
            raise ValueError(
                f"{self._names[j]!r} is not a direct interferer of {self._names[i]!r}"
            )
        return self.updown_partition(i, j)

    def updown_partition(
        self, i: int, j: int
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """:meth:`updown_by_index` without the direct-membership check.

        The engine's analyses call this on every direct (i, j) pair —
        validity is guaranteed by construction there — after first
        probing the memo table themselves (bound on the
        :class:`~repro.core.analyses.base.AnalysisContext`).  Empty
        partitions are memoized too, so repeat queries cost one dict hit.
        """
        cached = self._updown_cache.get((i, j))
        if cached is not None:
            return cached
        masks = self.direct_masks
        members = masks[j] & ~(masks[i] | (1 << i))
        if not members:
            result: tuple[tuple[int, ...], tuple[int, ...]] = ((), ())
            self._updown_cache[(i, j)] = result
            return result
        return self._updown_fill(i, j, members)

    def _updown_fill(
        self, i: int, j: int, members: int
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Compute and cache the partition for a known-direct (i, j) pair.

        ``members`` is ``S^I_i ∩ S^D_j`` as an index bitmask (direct
        interferers of τj that are neither direct interferers of τi nor τi
        itself) — iterating its set bits (ascending, matching the ordering
        of ``S^D_j``) visits only the usually-few members instead of
        scanning all of ``S^D_j``.
        """
        lo_row = self._cd_lo[j]
        hi_row = self._cd_hi[j]
        cd_lo = lo_row[i]
        cd_hi = hi_row[i]
        upstream: list[int] = []
        downstream: list[int] = []
        while members:
            low_bit = members & -members
            k = low_bit.bit_length() - 1
            members ^= low_bit
            if hi_row[k] < cd_lo:
                upstream.append(k)
            elif lo_row[k] > cd_hi:
                downstream.append(k)
            else:
                raise AssertionError(
                    f"flow {self._names[k]!r} overlaps cd("
                    f"{self._names[i]!r}, {self._names[j]!r}) on "
                    f"{self._names[j]!r}'s route yet is not a direct "
                    f"interferer of {self._names[i]!r}; contention domains "
                    "are inconsistent"
                )
        result = (tuple(upstream), tuple(downstream))
        self._updown_cache[(i, j)] = result
        return result

    def upstream(self, name_i: str, name_j: str) -> tuple[str, ...]:
        """``S^{up_j}_{I_i}`` by flow names."""
        up, _ = self.updown_by_index(self._index[name_i], self._index[name_j])
        return tuple(self._names[k] for k in up)

    def downstream(self, name_i: str, name_j: str) -> tuple[str, ...]:
        """``S^{down_j}_{I_i}`` by flow names."""
        _, down = self.updown_by_index(self._index[name_i], self._index[name_j])
        return tuple(self._names[k] for k in down)
