"""Interference sets over a flow set (paper Sections II-III).

Given a :class:`~repro.flows.flowset.FlowSet`, this module computes the
contention geometry every analysis consumes:

* the **contention domain** ``cd_ij = route_i ∩ route_j`` of each flow pair,
  summarised by its size and its position (first/last link order) on each
  of the two routes;
* the **direct interference set** ``S^D_i``: higher-priority flows sharing
  at least one link with τi (Kim et al. / Shi & Burns);
* the **indirect interference set** ``S^I_i``: flows that interfere with a
  member of ``S^D_i`` but not with τi itself;
* Xiong et al.'s partitioning of ``S^I_i ∩ S^D_j`` into the **upstream**
  set ``S^{up_j}_{I_i}`` (τk hits τj before τj meets τi along τj's route)
  and the **downstream** set ``S^{down_j}_{I_i}`` (τk hits τj after).

Internally flows are indexed by priority order (index 0 = highest
priority), so "higher priority than" is simply "smaller index than"; the
public accessors speak flow names.

A structural fact worth noting (asserted in the test suite): every flow in
``S^I_i ∩ S^D_j`` is *strictly* upstream or *strictly* downstream — a flow
whose contention domain with τj overlapped ``cd_ij`` would share a link
with τi and hence be a direct interferer, not an indirect one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flows.flowset import FlowSet


@dataclass(frozen=True)
class PairGeometry:
    """Summary of the contention domain of one unordered flow pair.

    ``size`` is ``|cd_ij|`` (number of shared links); ``lo_a``/``hi_a`` are
    the 1-based orders of the first/last shared link on the route of the
    pair's lower-indexed flow, ``lo_b``/``hi_b`` on the other route.
    """

    size: int
    lo_a: int
    hi_a: int
    lo_b: int
    hi_b: int


class InterferenceGraph:
    """All pairwise contention geometry and interference sets of a flow set.

    Construction is O(n² · route length); the upstream/downstream
    partitions are computed lazily per (τi, τj) pair and cached, since the
    engine only needs them for pairs where τj directly interferes with τi.
    """

    def __init__(self, flowset: FlowSet):
        self.flowset = flowset
        flows = flowset.flows
        self._names = [f.name for f in flows]
        self._index = {f.name: idx for idx, f in enumerate(flows)}
        self._routes = [flowset.route(f.name) for f in flows]
        self._geometry: dict[tuple[int, int], PairGeometry] = {}
        self._direct: list[tuple[int, ...]] = []
        self._direct_sets: list[frozenset[int]] = []
        self._updown_cache: dict[tuple[int, int], tuple[tuple[int, ...], tuple[int, ...]]] = {}
        self._build()

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        routes = self._routes
        n = len(routes)
        link_sets = [frozenset(r) for r in routes]
        positions = [
            {link: pos + 1 for pos, link in enumerate(route)} for route in routes
        ]
        for a in range(n):
            set_a, pos_a = link_sets[a], positions[a]
            for b in range(a + 1, n):
                shared = set_a & link_sets[b]
                if not shared:
                    continue
                pos_b = positions[b]
                orders_a = [pos_a[link] for link in shared]
                orders_b = [pos_b[link] for link in shared]
                geometry = PairGeometry(
                    size=len(shared),
                    lo_a=min(orders_a),
                    hi_a=max(orders_a),
                    lo_b=min(orders_b),
                    hi_b=max(orders_b),
                )
                self._check_contiguous(a, b, geometry)
                self._geometry[(a, b)] = geometry
        for i in range(n):
            direct = tuple(j for j in range(i) if self._pair(i, j) is not None)
            self._direct.append(direct)
            self._direct_sets.append(frozenset(direct))

    def _check_contiguous(self, a: int, b: int, geometry: PairGeometry) -> None:
        if (
            geometry.hi_a - geometry.lo_a + 1 != geometry.size
            or geometry.hi_b - geometry.lo_b + 1 != geometry.size
        ):
            raise ValueError(
                f"contention domain of flows {self._names[a]!r} and "
                f"{self._names[b]!r} is not a contiguous run of links; the "
                "analyses require dimension-order routing"
            )

    def _pair(self, i: int, j: int) -> PairGeometry | None:
        if i < j:
            return self._geometry.get((i, j))
        return self._geometry.get((j, i))

    def compatible_with(self, flowset: FlowSet) -> bool:
        """Is this graph valid for ``flowset``?

        The geometry depends only on flows (priorities, endpoints) and
        routes — *not* on buffer depth or latencies — so one graph can be
        shared across platforms differing only in ``buf``/``linkl``/
        ``routl`` (the paper's IBN2-vs-IBN100 comparisons).
        """
        if flowset is self.flowset:
            return True
        mine = self.flowset.platform
        theirs = flowset.platform
        return (
            self.flowset.flows == flowset.flows
            and mine.topology is theirs.topology
            and type(mine.routing) is type(theirs.routing)
        )

    # -- basic geometry -------------------------------------------------------

    def index(self, name: str) -> int:
        """Priority-order index of a flow (0 = highest priority)."""
        return self._index[name]

    def name(self, index: int) -> str:
        """Flow name at a priority-order index."""
        return self._names[index]

    def cd_size_by_index(self, i: int, j: int) -> int:
        """``|cd_ij|`` — number of shared links (0 when disjoint)."""
        pair = self._pair(i, j)
        return 0 if pair is None else pair.size

    def cd_size(self, name_i: str, name_j: str) -> int:
        """``|cd_ij|`` by flow names."""
        return self.cd_size_by_index(self._index[name_i], self._index[name_j])

    def cd_links_by_index(self, i: int, j: int) -> tuple[int, ...]:
        """The contention domain's link ids, ordered along τi's route.

        Needed by the heterogeneous-buffer variant of Equation 6 (per-link
        depths); the homogeneous fast path only uses
        :meth:`cd_size_by_index`.
        """
        pair = self._pair(i, j)
        if pair is None:
            return ()
        lo, hi = self.cd_span_on(i, j)
        return tuple(self._routes[i][lo - 1:hi])

    def cd_links(self, name_i: str, name_j: str) -> tuple[int, ...]:
        """Contention-domain link ids by flow names."""
        return self.cd_links_by_index(self._index[name_i], self._index[name_j])

    def cd_span_on(self, on: int, other: int) -> tuple[int, int]:
        """(first, last) 1-based orders of ``cd`` links on flow ``on``'s route.

        Raises ``ValueError`` when the two routes are disjoint.
        """
        pair = self._pair(on, other)
        if pair is None:
            raise ValueError(
                f"flows {self._names[on]!r} and {self._names[other]!r} share no links"
            )
        if on < other:
            return pair.lo_a, pair.hi_a
        return pair.lo_b, pair.hi_b

    # -- interference sets ------------------------------------------------------

    def direct_by_index(self, i: int) -> tuple[int, ...]:
        """``S^D_i``: indices of higher-priority flows sharing links with τi."""
        return self._direct[i]

    def lower_priority_shared_links(self, i: int) -> int:
        """Number of τi route links also used by *lower*-priority flows.

        Feeds the non-preemptive blocking term for platforms with
        ``linkl > 1`` (see :mod:`repro.core.engine`): on such platforms a
        higher-priority header can stall behind one in-flight
        lower-priority flit on each of these links.
        """
        suffix = getattr(self, "_suffix_links", None)
        if suffix is None:
            suffix = [set() for _ in self._routes]
            accumulated: set[int] = set()
            for index in range(len(self._routes) - 1, -1, -1):
                suffix[index] = set(accumulated)
                accumulated.update(self._routes[index])
            self._suffix_links = suffix
        return len(set(self._routes[i]) & suffix[i])

    def direct(self, name: str) -> tuple[str, ...]:
        """``S^D_i`` by flow names."""
        return tuple(self._names[j] for j in self._direct[self._index[name]])

    def indirect_by_index(self, i: int) -> tuple[int, ...]:
        """``S^I_i``: flows interfering with ``S^D_i`` members but not τi."""
        direct = self._direct_sets[i]
        indirect = {
            k
            for j in self._direct[i]
            for k in self._direct[j]
            if k not in direct
        }
        return tuple(sorted(indirect))

    def indirect(self, name: str) -> tuple[str, ...]:
        """``S^I_i`` by flow names."""
        return tuple(self._names[k] for k in self.indirect_by_index(self._index[name]))

    def updown_by_index(
        self, i: int, j: int
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """``(S^{up_j}_{I_i}, S^{down_j}_{I_i})`` as index tuples.

        ``j`` must be a direct interferer of ``i``.  A member τk of
        ``S^I_i ∩ S^D_j`` is upstream when its last shared link with τj
        comes before the first link of ``cd_ij`` on τj's route, downstream
        when its first shared link comes after the last link of ``cd_ij``.
        """
        key = (i, j)
        cached = self._updown_cache.get(key)
        if cached is not None:
            return cached
        if j not in self._direct_sets[i]:
            raise ValueError(
                f"{self._names[j]!r} is not a direct interferer of {self._names[i]!r}"
            )
        cd_lo, cd_hi = self.cd_span_on(j, i)
        direct_i = self._direct_sets[i]
        upstream: list[int] = []
        downstream: list[int] = []
        for k in self._direct[j]:
            if k in direct_i or k == i:
                continue
            jk_lo, jk_hi = self.cd_span_on(j, k)
            if jk_hi < cd_lo:
                upstream.append(k)
            elif jk_lo > cd_hi:
                downstream.append(k)
            else:
                raise AssertionError(
                    f"flow {self._names[k]!r} overlaps cd("
                    f"{self._names[i]!r}, {self._names[j]!r}) on "
                    f"{self._names[j]!r}'s route yet is not a direct "
                    f"interferer of {self._names[i]!r}; contention domains "
                    "are inconsistent"
                )
        result = (tuple(upstream), tuple(downstream))
        self._updown_cache[key] = result
        return result

    def upstream(self, name_i: str, name_j: str) -> tuple[str, ...]:
        """``S^{up_j}_{I_i}`` by flow names."""
        up, _ = self.updown_by_index(self._index[name_i], self._index[name_j])
        return tuple(self._names[k] for k in up)

    def downstream(self, name_i: str, name_j: str) -> tuple[str, ...]:
        """``S^{down_j}_{I_i}`` by flow names."""
        _, down = self.updown_by_index(self._index[name_i], self._index[name_j])
        return tuple(self._names[k] for k in down)
