"""Design-space tools built on the buffer-aware analysis.

The paper establishes that IBN's bounds — and therefore schedulability —
degrade monotonically as per-VC buffers grow.  That monotonicity (property
tested in the suite) turns two practical design questions into binary
searches:

* :func:`max_schedulable_buffer_depth` — the deepest buffer a platform
  can afford while the traffic stays provably schedulable.  Deeper
  buffers improve average-case throughput, so designers want the largest
  depth that still passes the worst-case test;
* :func:`length_scaling_margin` — how much every packet could grow (or
  must shrink) before the schedulability verdict flips: a robustness
  metric for a given deployment.

Both return exact integers/ratios under the chosen analysis, and both
accept any analysis object (defaulting to IBN, the tightest safe one).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.analyses.base import Analysis
from repro.core.analyses.ibn import IBNAnalysis
from repro.core.engine import is_schedulable
from repro.flows.flowset import FlowSet


@dataclass(frozen=True)
class BufferSizingResult:
    """Outcome of :func:`max_schedulable_buffer_depth`."""

    #: deepest schedulable depth in [lo, hi], or None if even ``lo`` fails.
    max_depth: int | None
    #: True when ``hi`` itself was schedulable — the verdict is then
    #: "at least hi", not a maximum (for buffer-independent analyses this
    #: is the common case).
    unbounded_within_range: bool = False


def max_schedulable_buffer_depth(
    flowset: FlowSet,
    *,
    analysis: Analysis | None = None,
    lo: int = 1,
    hi: int = 1024,
) -> BufferSizingResult:
    """Largest per-VC buffer depth in ``[lo, hi]`` keeping the set schedulable.

    Relies on schedulability being monotone non-increasing in the depth,
    which holds for IBN (Equation 6 grows with ``buf``) and trivially for
    the buffer-independent analyses.

    >>> from repro.workloads.didactic import didactic_flowset
    >>> result = max_schedulable_buffer_depth(didactic_flowset())
    >>> result.unbounded_within_range   # didactic set holds at any depth
    True
    """
    if not 1 <= lo <= hi:
        raise ValueError(f"need 1 <= lo <= hi, got [{lo}, {hi}]")
    if analysis is None:
        analysis = IBNAnalysis()

    def schedulable_at(depth: int) -> bool:
        variant = flowset.on_platform(flowset.platform.with_buffers(depth))
        return is_schedulable(variant, analysis)

    if not schedulable_at(lo):
        return BufferSizingResult(max_depth=None)
    if schedulable_at(hi):
        return BufferSizingResult(max_depth=hi, unbounded_within_range=True)
    # invariant: schedulable at `low`, not schedulable at `high`
    low, high = lo, hi
    while high - low > 1:
        mid = (low + high) // 2
        if schedulable_at(mid):
            low = mid
        else:
            high = mid
    return BufferSizingResult(max_depth=low)


def length_scaling_margin(
    flowset: FlowSet,
    *,
    analysis: Analysis | None = None,
    hi: float = 64.0,
    resolution: float = 0.01,
) -> float:
    """Largest factor λ such that scaling every packet length by λ keeps
    the flow set schedulable.

    λ > 1 means headroom (payloads could grow); λ < 1 means the set is
    only schedulable after shrinking packets; 0.0 means not schedulable
    even with single-flit packets (the header path alone misses a
    deadline).  Scaled lengths are ``max(1, round(λ·L_i))``, so the
    verdict is monotone in λ and binary search applies.
    """
    if hi <= 0:
        raise ValueError(f"hi must be positive, got {hi}")
    if resolution <= 0:
        raise ValueError(f"resolution must be positive, got {resolution}")
    if analysis is None:
        analysis = IBNAnalysis()

    def schedulable_at(scale: float) -> bool:
        scaled = [
            replace(flow, length=max(1, round(flow.length * scale)))
            for flow in flowset.flows
        ]
        variant = FlowSet(flowset.platform, scaled)
        return is_schedulable(variant, analysis)

    tiny = resolution
    if not schedulable_at(tiny):
        return 0.0
    if schedulable_at(hi):
        return hi
    low, high = tiny, hi
    while high - low > resolution:
        mid = (low + high) / 2
        if schedulable_at(mid):
            low = mid
        else:
            high = mid
    return low


def sizing_summary(
    flowset: FlowSet,
    *,
    analysis: Analysis | None = None,
    max_depth: int = 1024,
) -> dict:
    """JSON-able design-space summary: buffer headroom + payload margin.

    The request-friendly face of :func:`max_schedulable_buffer_depth` and
    :func:`length_scaling_margin`, shared by ``python -m repro sizing
    --json`` and the ``POST /sizing`` endpoint of :mod:`repro.serve`.

    >>> from repro.workloads.didactic import didactic_flowset
    >>> summary = sizing_summary(didactic_flowset(), max_depth=16)
    >>> summary["max_schedulable_buffer_depth"]["unbounded_within_range"]
    True
    """
    depth = max_schedulable_buffer_depth(flowset, analysis=analysis, hi=max_depth)
    margin = length_scaling_margin(flowset, analysis=analysis)
    return {
        "max_schedulable_buffer_depth": {
            "max_depth": depth.max_depth,
            "searched_up_to": max_depth,
            "unbounded_within_range": depth.unbounded_within_range,
        },
        "length_scaling_margin": round(margin, 4),
    }


def contention_pressure(flowset: FlowSet, *, graph=None) -> dict[int, int]:
    """How many contention domains each router's buffers participate in.

    For every direct-interference pair (τi, τj), every link of their
    contention domain contributes one count to the router whose buffer
    backs that link.  High-pressure routers are where deep buffers inflate
    Equation 6 — and therefore where the paper's insight says to keep
    buffers shallow.  Pass ``graph`` to reuse a pre-built interference
    graph (the geometry is buffer-independent).
    """
    from repro.core.interference import InterferenceGraph

    if graph is None:
        graph = InterferenceGraph(flowset)
    platform = flowset.platform
    topology = platform.topology
    pressure = {router: 0 for router in range(topology.num_routers)}
    for i, flow in enumerate(flowset.flows):
        for j in graph.direct_by_index(i):
            for link_id in graph.cd_links_by_index(i, j):
                link = topology.link(link_id)
                owner = link.src if link.kind.value == "ejection" else link.dst
                pressure[owner] += 1
    return pressure


def allocate_buffers(
    flowset: FlowSet,
    *,
    shallow: int = 2,
    deep: int = 16,
    analysis: Analysis | None = None,
) -> FlowSet | None:
    """Contention-aware heterogeneous buffer allocation.

    Greedy application of the paper's insight: start with ``deep`` buffers
    everywhere (good for average-case throughput), then — while the set is
    not provably schedulable — shrink the highest-pressure router to
    ``shallow``.  Returns the first schedulable heterogeneous variant, or
    ``None`` when even all-shallow fails.
    """
    if not 1 <= shallow <= deep:
        raise ValueError(f"need 1 <= shallow <= deep, got {shallow}, {deep}")
    if analysis is None:
        analysis = IBNAnalysis()
    pressure = contention_pressure(flowset)
    order = sorted(pressure, key=lambda r: pressure[r], reverse=True)
    buf_map: dict[int, int] = {}
    candidates = [None, *range(1, len(order) + 1)]
    for shrink_count in candidates:
        if shrink_count is not None:
            buf_map = {r: shallow for r in order[:shrink_count]}
        variant = flowset.on_platform(
            flowset.platform.with_buffers(deep, buf_map=buf_map)
        )
        if is_schedulable(variant, analysis):
            return variant
    return None


def slack_table(flowset: FlowSet, *, analysis: Analysis | None = None) -> str:
    """Per-flow slack report (deadline − bound), tightest flow first."""
    from repro.core.engine import analyze

    if analysis is None:
        analysis = IBNAnalysis()
    result = analyze(flowset, analysis, stop_at_deadline=False)
    rows = sorted(result.flows.values(), key=lambda r: r.slack)
    lines = [f"slack under {result.analysis_name} (tightest first):"]
    for row in rows:
        verdict = "ok" if row.schedulable else "MISS"
        lines.append(
            f"  {row.name:<12} R={row.response_time:>8}  D={row.deadline:>8}"
            f"  slack={row.slack:>8}  {verdict}"
        )
    return "\n".join(lines)
