"""Batched columnar analysis engine: many scenarios, one array program.

The scalar engine (:mod:`repro.core.engine`) solves one flow set per
call; campaign sweeps evaluate thousands of (flow set, analysis, buffer
depth) points, so the per-call interpreter overhead — term assembly,
the fixed-point loop, result bookkeeping — is paid once per grid cell.
This module stacks B such *scenarios* into flat numpy arrays and runs
the ceiling-recurrence fixed point for SB/IBN/XLWX across the whole
batch at once:

* flows of every scenario occupy **slots** of one flat array; levels
  (priority indices) are processed in order, each level solving the
  recurrences of *all* scenarios' flows at that level simultaneously;
* the pair structure (direct interference sets, downstream partitions,
  contention-domain sizes) is derived once per interference graph from
  its dense geometry matrices (:meth:`InterferenceGraph
  .geometry_matrices`) and cached on the graph, so buffer variants and
  repeated analyses of the same flows share it;
* per-iteration masking retires converged (scenario, flow) cells: rows
  leave the working arrays the moment their recurrence converges,
  overruns its give-up cut-off, or (for warm starts) must replay cold;
* scenarios may be **ragged** (different flow counts) and **mixed**
  (different analyses, buffer maps, payloads, periods, priorities);
  a scenario simply stops contributing rows beyond its own depth.

Equivalence contract: :func:`analyze_batch` returns
:class:`~repro.core.engine.AnalysisResult` objects **byte-identical**
to scalar :func:`~repro.core.engine.analyze` calls — same iterates,
same convergence/taint flags, same early-exit truncation, same
warm-start acceptance rules (a failed warm attempt replays cold).  The
scalar engine stays the oracle; `tests/core/test_batch_equivalence.py`
enforces the contract on randomized platforms.

Scalar fallback: a scenario is handed back to :func:`analyze` when

* numpy is unavailable,
* its analysis is not exactly SB/XLWX/IBN (subclasses may override the
  strategy points, which the array program cannot see),
* a response iterate approaches the int64 safety bound or the
  iteration budget (Python's unbounded ints take over), or
* the caller asked for breakdowns (:func:`analyze_batch` never
  collects them; use the scalar engine for explanation workflows).
"""

from __future__ import annotations

import os
import warnings
import weakref
from dataclasses import dataclass
from typing import Sequence

from repro.core import backend as _backend
from repro.core.analyses.base import Analysis
from repro.core.analyses.ibn import IBNAnalysis
from repro.core.analyses.sb import SBAnalysis
from repro.core.analyses.xlwx import XLWXAnalysis
from repro.core.engine import (
    RESPONSE_CAP,
    AnalysisResult,
    FlowResult,
    _flow_result_fast,
    _timing_equal,
    analyze,
)
from repro.core.interference import InterferenceGraph
from repro.flows.flowset import FlowSet

try:  # optional: the batch path needs numpy (scalar fallback below)
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

#: Iterates beyond this divert the scenario to the scalar engine before
#: int64 products could overflow (Python ints are unbounded there).
_SAFE_RESPONSE = 1 << 59
#: Per-recurrence iteration budget; must match
#: :func:`repro.util.mathx.fixed_point` so diverted scenarios report the
#: same ``FixedPointDiverged`` outcome through the scalar replay.
_MAX_ITERATIONS = 100_000

_MODE_SB = 0
_MODE_XLWX = 1
_MODE_IBN = 2

#: Analyses the array program implements.  ``type`` comparison is exact
#: on purpose: a subclass may override ``downstream_term`` or
#: ``indirect_jitter`` in ways the batched terms cannot reproduce.
_MODES = {SBAnalysis: _MODE_SB, XLWXAnalysis: _MODE_XLWX, IBNAnalysis: _MODE_IBN}


@dataclass
class Scenario:
    """One cell of a batch: a flow set analysed by one analysis.

    ``graph`` optionally shares a pre-built interference graph (as with
    scalar :func:`~repro.core.engine.analyze`); ``warm_from`` optionally
    warm-starts each flow's fixed point from a pointwise-tighter result
    under the same rules as the scalar engine.
    """

    flowset: FlowSet
    analysis: Analysis
    graph: InterferenceGraph | None = None
    warm_from: AnalysisResult | None = None


def batchable(analysis: Analysis) -> bool:
    """Can the array program run this analysis (else: scalar fallback)?"""
    return _np is not None and type(analysis) in _MODES


#: Default stacked-flow count beneath which batch consumers prefer the
#: scalar engine (array-program setup overhead dominates tiny rounds).
_DEFAULT_MIN_BATCH_FLOWS = 1024
_warned_min_flows = False


def min_batch_flows(override: int | None = None) -> int:
    """The tiny-round threshold: rounds stacking fewer flows than this
    should take the scalar path.

    Callers pass sweep-level keyword overrides through ``override``;
    otherwise the ``REPRO_BATCH_MIN_FLOWS`` environment variable tunes
    the default (``1024``).  Both paths are byte-identical (the
    equivalence contract), so the threshold only moves the crossover
    point, never the results; an unparsable variable warns once and
    keeps the default rather than failing a sweep.
    """
    if override is not None:
        return int(override)
    raw = os.environ.get("REPRO_BATCH_MIN_FLOWS")
    if raw:
        try:
            return int(raw)
        except ValueError:
            global _warned_min_flows
            if not _warned_min_flows:
                _warned_min_flows = True
                warnings.warn(
                    f"REPRO_BATCH_MIN_FLOWS={raw!r} is not an integer; "
                    f"using {_DEFAULT_MIN_BATCH_FLOWS}",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return _DEFAULT_MIN_BATCH_FLOWS


# ---------------------------------------------------------------------------
# Per-graph structure: flat pair / downstream index tables.
# ---------------------------------------------------------------------------

class _GraphStruct:
    """Flow-major flat interference structure of one graph.

    ``pair_i``/``pair_j`` enumerate every direct-interference pair
    (τi, τj ∈ S^D_i) in flow-major order (i ascending, j ascending
    within i — the scalar engine's term order).  ``down_pair``/
    ``down_k`` flatten each pair's downstream set S^{down_j}_{I_i},
    ``down_pair`` holding the *pair index* of (j, k) so totals and
    per-hit costs recorded when level j was solved can be gathered
    directly.  All arrays are int64/bool numpy arrays.
    """

    __slots__ = (
        "n", "pair_i", "pair_j", "pair_offsets", "down_pair", "down_k",
        "down_offsets", "up_nonempty", "any_direct_up", "cd_size_pair",
        "lower_counts", "mat_fields",
    )


def _graph_struct(graph: InterferenceGraph) -> _GraphStruct:
    """The graph's batch structure, built on first use and cached."""
    struct = getattr(graph, "_batch_struct", None)
    if struct is None:
        struct = _build_struct(graph)
        graph._batch_struct = struct
    return struct


def _build_struct(graph: InterferenceGraph) -> _GraphStruct:
    cd_size, cd_lo, cd_hi = graph.geometry_matrices()
    n = cd_size.shape[0]
    struct = _GraphStruct()
    struct.n = n
    # Lower-triangular adjacency: adj[i, j] == True iff τj ∈ S^D_i.
    adj = cd_size > 0
    adj &= _np.tri(n, dtype=bool, k=-1)
    pair_i, pair_j = _np.nonzero(adj)
    pair_i = pair_i.astype(_np.int64)
    pair_j = pair_j.astype(_np.int64)
    num_pairs = len(pair_i)
    struct.pair_i = pair_i
    struct.pair_j = pair_j
    struct.pair_offsets = _np.searchsorted(
        pair_i, _np.arange(n + 1)
    ).astype(_np.int64)
    struct.cd_size_pair = cd_size[pair_i, pair_j].astype(_np.int64)
    struct.lower_counts = _np.asarray(
        [graph.lower_priority_shared_links(i) for i in range(n)],
        dtype=_np.int64,
    )

    # Downstream/upstream partitions for every pair at once, evaluated
    # sparsely: the candidates for pair (τi, τj) are exactly the pairs
    # (τj, τk) of τj's own direct set, so enumerating each pair's
    # candidate run of the pair table (one repeat + one arange) and
    # testing membership/geometry with 1-D gathers beats any dense
    # (pairs × n) formulation.  Route orders fit int16 comfortably.
    lo16 = cd_lo.astype(_np.int16)
    hi16 = cd_hi.astype(_np.int16)
    lo_ji = lo16[pair_j, pair_i]
    hi_ji = hi16[pair_j, pair_i]
    # Span of each pair on its *owner's* route (row pair_i, col pair_j):
    # for a candidate pair q = (τj, τk) these are cd(j,k)'s orders on
    # τj's route — the quantities the partition rule compares.
    own_lo = lo16[pair_i, pair_j]
    own_hi = hi16[pair_i, pair_j]
    deg = _np.diff(struct.pair_offsets)
    cand_q, cand_offsets = _gather_segments(
        struct.pair_offsets[pair_j], deg[pair_j]
    )
    cand_lens = deg[pair_j]
    owner = _np.repeat(_np.arange(num_pairs, dtype=_np.int64), cand_lens)
    k = pair_j[cand_q]
    # Members of S^I_i ∩ S^D_j: direct interferers of τj that are
    # neither direct interferers of τi nor τi itself (k < j < i, so the
    # k == i exclusion is already implied by the triangle shape).
    member = ~adj[pair_i[owner], k]
    down = member & (own_lo[cand_q] > hi_ji[owner])
    up = member & (own_hi[cand_q] < lo_ji[owner])
    counts = _segment_sums(down.astype(_np.int64), cand_lens)
    up_nonempty = _segment_sums(up.astype(_np.int64), cand_lens) > 0
    struct.down_pair = cand_q[down]
    struct.down_k = k[down]
    offsets = _np.zeros(num_pairs + 1, dtype=_np.int64)
    _np.cumsum(counts, out=offsets[1:])
    struct.down_offsets = offsets
    struct.up_nonempty = up_nonempty
    # The "any_upstream" ablation widening is computed on first use
    # (see _ensure_any_direct_up); the default rule never reads it.
    struct.any_direct_up = None
    # (names, priorities) for materialisation, filled on first use.
    struct.mat_fields = None
    return struct


def _ensure_any_direct_up(graph: InterferenceGraph, struct: _GraphStruct):
    """Lazily computed "any_upstream" flags: does any *direct* interferer
    of τj hit τj strictly upstream of cd_ij?  Only the non-default
    ``upstream_rule="any_upstream"`` ablation reads these."""
    if struct.any_direct_up is not None:
        return struct.any_direct_up
    cd_size, cd_lo, cd_hi = graph.geometry_matrices()
    pair_i, pair_j = struct.pair_i, struct.pair_j
    num_pairs = len(pair_i)
    lo16 = cd_lo.astype(_np.int16)
    hi16 = cd_hi.astype(_np.int16)
    lo_ji = lo16[pair_j, pair_i]
    own_hi = hi16[pair_i, pair_j]
    deg = _np.diff(struct.pair_offsets)
    cand_q, _ = _gather_segments(struct.pair_offsets[pair_j], deg[pair_j])
    cand_lens = deg[pair_j]
    owner = _np.repeat(_np.arange(num_pairs, dtype=_np.int64), cand_lens)
    hit = own_hi[cand_q] < lo_ji[owner]
    struct.any_direct_up = _segment_sums(hit.astype(_np.int64), cand_lens) > 0
    return struct.any_direct_up


# ---------------------------------------------------------------------------
# Per-scenario plan: numeric arrays + analysis mode.
# ---------------------------------------------------------------------------

class _Plan:
    """Everything one batched scenario contributes to the composition."""

    __slots__ = (
        "scenario", "graph", "struct", "mode", "n", "c", "period", "jitter",
        "deadline", "blocking", "warm", "use_bound", "fallback_pair",
        "bi_pair",
    )


#: Per-flow-set numeric arrays, keyed by instance identity like the
#: simulator's table cache: entries die with their flow set and never
#: ride along in pickles (workers rebuild them once).
_NUMERIC_CACHE: "weakref.WeakKeyDictionary[FlowSet, tuple]" = (
    weakref.WeakKeyDictionary()
)


def _numeric_arrays(flowset: FlowSet):
    """(c, period, jitter, deadline) int64 arrays, shared per FlowSet."""
    found = _NUMERIC_CACHE.get(flowset)
    if found is None:
        flows = flowset.flows
        found = (
            _np.asarray([flowset.c(f.name) for f in flows], dtype=_np.int64),
            _np.asarray([f.period for f in flows], dtype=_np.int64),
            _np.asarray([f.jitter for f in flows], dtype=_np.int64),
            _np.asarray([f.deadline for f in flows], dtype=_np.int64),
        )
        _NUMERIC_CACHE[flowset] = found
    return found


def _build_plan(scenario: Scenario) -> _Plan:
    flowset = scenario.flowset
    graph = scenario.graph
    plan = _Plan()
    plan.scenario = scenario
    plan.graph = graph
    struct = _graph_struct(graph)
    plan.struct = struct
    plan.mode = _MODES[type(scenario.analysis)]
    plan.n = struct.n
    plan.c, plan.period, plan.jitter, plan.deadline = _numeric_arrays(
        flowset
    )
    platform = flowset.platform
    if platform.linkl > 1:
        plan.blocking = (platform.linkl - 1) * struct.lower_counts
    else:
        plan.blocking = _np.zeros(plan.n, dtype=_np.int64)
    plan.warm = _warm_array(scenario, plan)
    plan.use_bound = False
    plan.fallback_pair = None
    plan.bi_pair = None
    if plan.mode == _MODE_IBN:
        analysis = scenario.analysis
        plan.use_bound = analysis.use_buffer_bound
        has_down = _np.diff(struct.down_offsets) > 0
        fallback = struct.up_nonempty.copy()
        if analysis.upstream_rule == "any_upstream":
            fallback |= _ensure_any_direct_up(graph, struct)
        plan.fallback_pair = has_down & fallback
        if platform.is_homogeneous:
            plan.bi_pair = (
                platform.buf * platform.linkl
            ) * struct.cd_size_pair
        else:
            # Per-link depths (Equation 6 generalised): rare enough that
            # a per-pair Python sum is fine.
            linkl = platform.linkl
            plan.bi_pair = _np.asarray(
                [
                    linkl * sum(
                        platform.buf_of_link(link)
                        for link in graph.cd_links_by_index(int(i), int(j))
                    )
                    for i, j in zip(struct.pair_i, struct.pair_j)
                ],
                dtype=_np.int64,
            )
    return plan


def _warm_array(scenario: Scenario, plan: _Plan):
    """Per-flow warm-start values (0 = cold), scalar-engine rules."""
    warm = _np.zeros(plan.n, dtype=_np.int64)
    source = scenario.warm_from
    if source is None:
        return warm
    graph = scenario.graph
    if not (
        graph.compatible_with(source.flowset)
        and _timing_equal(
            scenario.flowset.platform, source.flowset.platform
        )
    ):
        return warm
    source_flows = source.flows
    for index, flow in enumerate(scenario.flowset.flows):
        record = source_flows.get(flow.name)
        if record is not None and record.converged and not record.tainted:
            warm[index] = record.response_time
    return warm


# ---------------------------------------------------------------------------
# Segment helpers (int64-exact, empty-segment-safe).
# ---------------------------------------------------------------------------

def _segment_sums(values, counts):
    """Sum ``values`` per contiguous segment of the given lengths.

    Empty segments sum to 0 wherever they appear.  ``reduceat`` handles
    empty *interior* segments via its repeated-index quirk (masked back
    to 0 below); a trailing empty segment would need an out-of-range
    index, so a zero sentinel is appended for that case only.
    """
    sums = _np.zeros(len(counts), dtype=_np.int64)
    if values.size == 0:
        return sums
    starts = _np.zeros(len(counts), dtype=_np.int64)
    _np.cumsum(counts[:-1], out=starts[1:])
    if counts[len(counts) - 1] == 0:
        values = _np.append(values, 0)
    sums = _np.add.reduceat(values, starts)
    sums[counts == 0] = 0
    return sums


def _gather_segments(starts, lens):
    """Indices gathering variable-length segments, plus their offsets."""
    offsets = _np.zeros(len(lens) + 1, dtype=_np.int64)
    _np.cumsum(lens, out=offsets[1:])
    total = int(offsets[-1])
    if total == 0:
        return _np.empty(0, dtype=_np.int64), offsets
    idx = _np.repeat(starts - offsets[:-1], lens) + _np.arange(
        total, dtype=_np.int64
    )
    return idx, offsets


def _ceil_div(numer, denom):
    """Vector ``⌈numer/denom⌉`` matching the engine's inlined form."""
    return -((-numer) // denom)


# ---------------------------------------------------------------------------
# The batched fixed point.
# ---------------------------------------------------------------------------

def _solve_rows(start, warm_active, base, give, cold, wj, period, cost,
                counts):
    """Solve one level's recurrences for all rows simultaneously.

    Returns ``(response, converged, iterations, unsafe)`` per row, with
    the exact iterate sequence of the scalar engine: converged rows keep
    the fixed point, overrun rows keep the first iterate beyond their
    give-up, failed warm attempts replay from the cold start.  Rows
    whose iterate approaches the int64 safety bound (or the iteration
    budget) are flagged ``unsafe`` for scalar diversion.
    """
    nrows = len(start)
    out_r = _np.zeros(nrows, dtype=_np.int64)
    out_conv = _np.zeros(nrows, dtype=bool)
    out_iters = _np.zeros(nrows, dtype=_np.int64)
    out_unsafe = _np.zeros(nrows, dtype=bool)
    idx = _np.arange(nrows, dtype=_np.int64)
    r = start.copy()
    warm = warm_active.copy()
    iteration = 0
    while len(idx):
        iteration += 1
        expanded = _np.repeat(r, counts)
        contrib = _ceil_div(expanded + wj, period) * cost
        r_new = base + _segment_sums(contrib, counts)
        out_iters[idx] += 1
        conv = r_new == r
        over = r_new > give
        dec = r_new < r
        unsafe = (r_new > _SAFE_RESPONSE) | (r_new < base)
        if iteration >= _MAX_ITERATIONS:
            unsafe |= ~conv
        # Failed warm attempts (overran the cut-off or the start was
        # invalid and the map dipped) restart from the cold start.
        restart = warm & ~conv & (dec | over) & ~unsafe
        finish_ok = conv & ~unsafe
        finish_fail = over & ~conv & ~warm & ~unsafe
        done = finish_ok | finish_fail | unsafe
        out_r[idx[finish_ok]] = r[finish_ok]
        out_conv[idx[finish_ok]] = True
        out_r[idx[finish_fail]] = r_new[finish_fail]
        out_unsafe[idx[unsafe]] = True
        cont = ~done
        if not cont.any():
            break
        r = _np.where(restart, cold, r_new)[cont]
        warm = (warm & ~restart)[cont]
        idx = idx[cont]
        if not cont.all():
            keep_pairs = _np.repeat(cont, counts)
            wj = wj[keep_pairs]
            period = period[keep_pairs]
            cost = cost[keep_pairs]
            counts = counts[cont]
            base = base[cont]
            give = give[cont]
            cold = cold[cont]
    return out_r, out_conv, out_iters, out_unsafe


# ---------------------------------------------------------------------------
# Batch composition and the level loop.
# ---------------------------------------------------------------------------

class BatchReport:
    """Diagnostics of one :func:`analyze_batch` call."""

    __slots__ = ("iterations", "scalar_fallbacks")

    def __init__(self, size: int) -> None:
        #: recurrence iterations spent per scenario (0 for fallbacks).
        self.iterations = [0] * size
        #: indices of scenarios answered by the scalar engine.
        self.scalar_fallbacks: list[int] = []


def analyze_batch(
    scenarios: Sequence[Scenario],
    *,
    stop_at_deadline: bool = True,
    early_exit: bool = False,
    report: BatchReport | None = None,
) -> list[AnalysisResult]:
    """Analyse B scenarios as one array program.

    Results are byte-identical to calling scalar
    :func:`~repro.core.engine.analyze` per scenario with the same
    ``stop_at_deadline``/``early_exit``/``warm_from`` arguments, in the
    input order.  Scenarios whose analysis the array program cannot
    express are transparently answered by the scalar engine (see the
    module docstring for the triggers); pass ``report`` to observe
    which path served each scenario.
    """
    scenarios = list(scenarios)
    if report is None:
        report = BatchReport(len(scenarios))
    elif len(report.iterations) != len(scenarios):
        raise ValueError("report size does not match the scenario count")
    # Mirror the scalar engine's graph handling (build or validate).
    for scenario in scenarios:
        if scenario.graph is None:
            scenario.graph = InterferenceGraph(scenario.flowset)
        elif not scenario.graph.compatible_with(scenario.flowset):
            raise ValueError(
                "interference graph was built for a different flow set"
            )
    results: list[AnalysisResult | None] = [None] * len(scenarios)
    batched: list[int] = []
    for index, scenario in enumerate(scenarios):
        if batchable(scenario.analysis):
            batched.append(index)
    needs_scalar: set[int] = set(range(len(scenarios))) - set(batched)
    if batched:
        solved = _run_batch(
            [scenarios[i] for i in batched],
            stop_at_deadline=stop_at_deadline,
            early_exit=early_exit,
        )
        for position, index in enumerate(batched):
            outcome = solved[position]
            if outcome is None:
                needs_scalar.add(index)
            else:
                results[index], report.iterations[index] = outcome
    for index in sorted(needs_scalar):
        scenario = scenarios[index]
        results[index] = analyze(
            scenario.flowset,
            scenario.analysis,
            graph=scenario.graph,
            stop_at_deadline=stop_at_deadline,
            early_exit=early_exit,
            warm_from=scenario.warm_from,
        )
        report.scalar_fallbacks.append(index)
    report.scalar_fallbacks.sort()
    return results  # type: ignore[return-value]


def _run_batch(scenarios, *, stop_at_deadline, early_exit):
    """The array program proper; ``None`` entries mean "divert"."""
    plans = [_build_plan(s) for s in scenarios]
    B = len(plans)
    sizes = _np.asarray([p.n for p in plans], dtype=_np.int64)
    slot_base = _np.zeros(B + 1, dtype=_np.int64)
    _np.cumsum(sizes, out=slot_base[1:])
    total_slots = int(slot_base[-1])
    max_f = int(sizes.max())

    # ---- flat per-slot arrays (scenario-major) ------------------------
    C = _np.concatenate([p.c for p in plans])
    T = _np.concatenate([p.period for p in plans])
    J = _np.concatenate([p.jitter for p in plans])
    D = _np.concatenate([p.deadline for p in plans])
    BLK = _np.concatenate([p.blocking for p in plans])
    WARM = _np.concatenate([p.warm for p in plans])
    GIVE = D if stop_at_deadline else _np.full(
        total_slots, RESPONSE_CAP, dtype=_np.int64
    )
    slot_scn = _np.repeat(_np.arange(B, dtype=_np.int64), sizes)
    slot_level = _np.concatenate(
        [_np.arange(p.n, dtype=_np.int64) for p in plans]
    )
    # Level-major views: slots (and pairs, below) regrouped so each
    # level is one contiguous slice, scenarios ascending within it.
    slot_perm = _np.argsort(slot_level, kind="stable")
    level_slot_bounds = _np.searchsorted(
        slot_level[slot_perm], _np.arange(max_f + 2)
    )

    # ---- flat pair arrays --------------------------------------------
    pair_bases = _np.zeros(B + 1, dtype=_np.int64)
    _np.cumsum(
        _np.asarray([len(p.struct.pair_i) for p in plans], dtype=_np.int64),
        out=pair_bases[1:],
    )
    pair_level = _np.concatenate([p.struct.pair_i for p in plans])
    pair_j_slot = _np.concatenate(
        [p.struct.pair_j + int(slot_base[b]) for b, p in enumerate(plans)]
    )
    pair_mode = _np.concatenate(
        [
            _np.full(len(p.struct.pair_i), p.mode, dtype=_np.int64)
            for p in plans
        ]
    )
    pair_fallback = _np.concatenate(
        [
            p.fallback_pair
            if p.fallback_pair is not None
            else _np.zeros(len(p.struct.pair_i), dtype=bool)
            for p in plans
        ]
    )
    pair_bi = _np.concatenate(
        [
            p.bi_pair
            if p.bi_pair is not None
            else _np.zeros(len(p.struct.pair_i), dtype=_np.int64)
            for p in plans
        ]
    )
    pair_use_bound = _np.concatenate(
        [
            _np.full(len(p.struct.pair_i), p.use_bound, dtype=bool)
            for p in plans
        ]
    )
    pperm = _np.argsort(pair_level, kind="stable")
    inv_pperm = _np.empty_like(pperm)
    inv_pperm[pperm] = _np.arange(len(pperm), dtype=_np.int64)
    pair_j_slot = pair_j_slot[pperm]
    pair_mode = pair_mode[pperm]
    pair_fallback = pair_fallback[pperm]
    pair_bi = pair_bi[pperm]
    pair_use_bound = pair_use_bound[pperm]
    level_pair_bounds = _np.searchsorted(
        pair_level[pperm], _np.arange(max_f + 2)
    )
    # Per-slot direct-set sizes, level-major (row segmentation).
    slot_counts = _np.concatenate(
        [_np.diff(p.struct.pair_offsets) for p in plans]
    )[slot_perm]

    # ---- flat downstream arrays (regrouped to the pair permutation) ---
    down_lens_sm = _np.concatenate(
        [_np.diff(p.struct.down_offsets) for p in plans]
    )
    down_starts_sm = _np.zeros(len(down_lens_sm), dtype=_np.int64)
    down_total = _np.zeros(B + 1, dtype=_np.int64)
    _np.cumsum(
        _np.asarray([len(p.struct.down_pair) for p in plans]),
        out=down_total[1:],
    )
    down_pair_sm = _np.concatenate(
        [
            inv_pperm[p.struct.down_pair + int(pair_bases[b])]
            if len(p.struct.down_pair)
            else _np.empty(0, dtype=_np.int64)
            for b, p in enumerate(plans)
        ]
    ) if int(down_total[-1]) else _np.empty(0, dtype=_np.int64)
    down_k_slot_sm = _np.concatenate(
        [
            p.struct.down_k + int(slot_base[b])
            if len(p.struct.down_k)
            else _np.empty(0, dtype=_np.int64)
            for b, p in enumerate(plans)
        ]
    ) if int(down_total[-1]) else _np.empty(0, dtype=_np.int64)
    _np.cumsum(down_lens_sm[:-1], out=down_starts_sm[1:])
    gather_idx, down_offsets = _gather_segments(
        down_starts_sm[pperm], down_lens_sm[pperm]
    )
    down_pair = (
        down_pair_sm[gather_idx] if gather_idx.size else down_pair_sm
    )
    down_k_slot = (
        down_k_slot_sm[gather_idx] if gather_idx.size else down_k_slot_sm
    )
    down_starts = down_offsets[:-1]
    down_lens = down_lens_sm[pperm]

    # ---- dynamic state ------------------------------------------------
    R = _np.zeros(total_slots, dtype=_np.int64)
    CONV = _np.zeros(total_slots, dtype=bool)
    TAINT = _np.zeros(total_slots, dtype=bool)
    BAD = _np.zeros(total_slots, dtype=_np.int64)  # ~conv | taint, 0/1
    totals = _np.zeros(len(pperm), dtype=_np.int64)
    hitcost = _np.zeros(len(pperm), dtype=_np.int64)
    stopped = _np.zeros(B, dtype=bool)
    diverted = _np.zeros(B, dtype=bool)
    last_level = sizes - 1
    iterations = _np.zeros(B, dtype=_np.int64)

    # Batch-wide fast-path flags: skip whole term families no scenario
    # needs, and skip the live-filtering machinery until a scenario
    # actually retires (early exit or scalar diversion).
    modes_present = {p.mode for p in plans}
    need_sum = bool(modes_present & {_MODE_XLWX, _MODE_IBN})
    need_eq8 = _MODE_IBN in modes_present
    sb_present = _MODE_SB in modes_present
    xlwx_present = _MODE_XLWX in modes_present
    has_blocking = bool(BLK.any())
    any_warm = bool(WARM.any())
    any_retired = False
    # The backend seam: a compiled backend may take the whole level
    # loop (run_levels) or just the fixed-point inner loop (solve_rows);
    # either way the contract is byte-identical dynamic state.  numpy
    # keeps the in-module implementations.
    kernel = _backend.get_backend()
    solve = kernel.solve_rows or _solve_rows
    if kernel.run_levels is not None:
        kernel.run_levels(
            max_f=max_f, early_exit=early_exit,
            level_slot_bounds=level_slot_bounds, slot_perm=slot_perm,
            slot_scn=slot_scn, slot_counts=slot_counts,
            level_pair_bounds=level_pair_bounds, pair_j_slot=pair_j_slot,
            pair_mode=pair_mode, pair_fallback=pair_fallback,
            pair_bi=pair_bi, pair_use_bound=pair_use_bound,
            down_offsets=down_offsets, down_pair=down_pair,
            down_k_slot=down_k_slot,
            C=C, T=T, J=J, D=D, BLK=BLK, WARM=WARM, GIVE=GIVE,
            R=R, CONV=CONV, TAINT=TAINT, BAD=BAD, totals=totals,
            hitcost=hitcost, stopped=stopped, diverted=diverted,
            last_level=last_level, iterations=iterations,
        )
        levels = range(0)
    else:
        levels = range(max_f)

    for level in levels:
        s0, s1 = int(level_slot_bounds[level]), int(level_slot_bounds[level + 1])
        slots_all = slot_perm[s0:s1]
        scns_all = slot_scn[slots_all]
        counts_all = slot_counts[s0:s1]
        p0, p1 = int(level_pair_bounds[level]), int(level_pair_bounds[level + 1])
        live_all = True
        if any_retired:
            live = ~(stopped[scns_all] | diverted[scns_all])
            live_all = bool(live.all())
            if not live_all and not live.any():
                continue
        if live_all:
            # The common case is one contiguous slice per level: no
            # index arrays, and the level's downstream entries are one
            # contiguous run of the flat arrays.
            slots, scns, counts = slots_all, scns_all, counts_all
            sel = slice(p0, p1)
            dlen = down_lens[sel]
            d0, d1 = int(down_offsets[p0]), int(down_offsets[p1])
            dp = down_pair[d0:d1]
            dk = down_k_slot[d0:d1]
        else:
            slots = slots_all[live]
            scns = scns_all[live]
            counts = counts_all[live]
            # Select the live scenarios' pair runs without touching the
            # retired ones: one prefix sum over the level, then gathers
            # proportional to the *surviving* pairs only.
            prefix = _np.zeros(len(counts_all) + 1, dtype=_np.int64)
            _np.cumsum(counts_all, out=prefix[1:])
            sel, _ = _gather_segments(p0 + prefix[:-1][live], counts)
            dlen = down_lens[sel]
            gidx, _ = _gather_segments(down_starts[sel], dlen)
            dp = down_pair[gidx]
            dk = down_k_slot[gidx]
        pj = pair_j_slot[sel]
        r_j = R[pj]
        wj = J[pj] + r_j - C[pj]

        # Downstream terms, evaluated per family over the level's flat
        # downstream run (empty per-pair segments naturally sum to 0):
        # the totals sum feeds XLWX pairs and IBN's application-rule
        # fallback, Equation 8's recounted-and-capped hits feed the
        # remaining IBN pairs, SB pairs take 0.
        sums = eq8 = None
        if need_sum and dp.size:
            sums = _segment_sums(totals[dp], dlen)
        if need_eq8 and dp.size:
            hits = _ceil_div(_np.repeat(r_j, dlen) + J[dk], T[dk])
            per_hit = hitcost[dp]
            capped = _np.repeat(pair_use_bound[sel], dlen)
            bi_exp = _np.repeat(pair_bi[sel], dlen)
            per_hit = _np.where(capped & (bi_exp < per_hit), bi_exp, per_hit)
            eq8 = _segment_sums(hits * per_hit, dlen)
        if sums is None:
            cost = C[pj]
        else:
            if eq8 is None:
                down_term = sums
                if sb_present:
                    down_term = _np.where(
                        pair_mode[sel] == _MODE_XLWX, sums, 0
                    )
            else:
                takes_sum = pair_fallback[sel]
                if xlwx_present:
                    takes_sum = takes_sum | (pair_mode[sel] == _MODE_XLWX)
                down_term = _np.where(takes_sum, sums, eq8)
                if sb_present:
                    down_term = _np.where(
                        pair_mode[sel] == _MODE_SB, 0, down_term
                    )
            cost = C[pj] + down_term
        hitcost[sel] = cost

        cold = C[slots]
        give = GIVE[slots]
        if has_blocking:
            blocking = BLK[slots]
            base = cold + blocking
            iter_cost = cost + _np.repeat(blocking, counts)
        else:
            base = cold
            iter_cost = cost
        if any_warm:
            warm = WARM[slots]
            warm_ok = (cold < warm) & (warm <= give)
            start = _np.where(warm_ok, warm, cold)
        else:
            warm_ok = _np.zeros(len(slots), dtype=bool)
            start = cold
        r_fin, conv_fin, iters, unsafe = solve(
            start, warm_ok, base, give, cold, wj, T[pj], iter_cost, counts
        )
        iterations[scns] += iters
        if unsafe.any():
            any_retired = True
            diverted[scns[unsafe]] = True
            keep = ~unsafe
            if not keep.any():
                continue
            if isinstance(sel, slice):
                sel = _np.arange(p0, p1, dtype=_np.int64)
            slots, scns = slots[keep], scns[keep]
            pair_keep = _np.repeat(keep, counts)
            sel, pj, wj = sel[pair_keep], pj[pair_keep], wj[pair_keep]
            cost = cost[pair_keep]
            counts = counts[keep]
            r_fin, conv_fin = r_fin[keep], conv_fin[keep]

        R[slots] = r_fin
        CONV[slots] = conv_fin
        # Totals (the I_kj cache) use the final iterate and the per-hit
        # cost *without* the non-preemptive blocking term, as scalar.
        totals[sel] = (
            _ceil_div(_np.repeat(r_fin, counts) + wj, T[pj]) * cost
        )
        tainted = _segment_sums(BAD[pj], counts) > 0
        TAINT[slots] = tainted
        BAD[slots] = (~conv_fin | tainted).astype(_np.int64)
        if early_exit:
            failed = ~(conv_fin & (r_fin <= D[slots]))
            if failed.any():
                any_retired = True
                stopped[scns[failed]] = True
                last_level[scns[failed]] = level

    # ---- materialise --------------------------------------------------
    # Plain-list views once, then the __init__-free constructor: frozen
    # dataclass construction and numpy scalar boxing dominate this loop
    # otherwise (one result per slot, all backends share this path).
    C_l, R_l, D_l = C.tolist(), R.tolist(), D.tolist()
    CONV_l, TAINT_l = CONV.tolist(), TAINT.tolist()
    outcomes: list = []
    for b, plan in enumerate(plans):
        if diverted[b]:
            outcomes.append(None)
            continue
        flowset = plan.scenario.flowset
        analysis = plan.scenario.analysis
        base_slot = int(slot_base[b])
        flows: dict[str, FlowResult] = {}
        upto = int(last_level[b])
        fields = plan.struct.mat_fields
        if fields is None:
            fields = plan.struct.mat_fields = (
                [f.name for f in flowset.flows],
                [f.priority for f in flowset.flows],
            )
        names, priorities = fields
        for index in range(upto + 1):
            slot = base_slot + index
            name = names[index]
            flows[name] = _flow_result_fast(
                name,
                priorities[index],
                C_l[slot],
                D_l[slot],
                R_l[slot],
                CONV_l[slot],
                TAINT_l[slot],
            )
        outcomes.append(
            (
                AnalysisResult(
                    analysis_name=analysis.label(flowset.platform.buf),
                    unsafe=analysis.unsafe,
                    flowset=flowset,
                    flows=flows,
                    complete=not bool(stopped[b]),
                ),
                int(iterations[b]),
            )
        )
    return outcomes
