"""Priority-ordered fixed-point engine for the response-time analyses.

All analyses in this family share the outer recurrence (paper Equation 5
shape); this module owns that recurrence, the priority-ordered scheduling
of per-flow computations, convergence/divergence handling and result
book-keeping, so each analysis class only contributes its interference
terms.

Flows are processed from highest to lowest priority.  Every quantity an
analysis needs about other flows (their response time ``R_j``, the per-hit
cost ``C_k + I^down_kj`` and total contribution ``I_kj`` of *their*
interferers) refers strictly up the priority order, so a single pass
suffices and no global fixed point across flows is required.

Warm-started fixed points
-------------------------
All recurrences in this family are monotone non-decreasing integer maps,
and the analyses are pointwise ordered: with shared flows/routes/timing,
``R^SB_i ≤ R^IBN(b)_i ≤ R^IBN(b')_i ≤ R^XLWX_i`` for buffer depths
``b ≤ b'`` (each looser analysis evaluates a pointwise-larger recurrence
given pointwise-larger inputs, by induction up the priority order).  A
*converged* bound of a tighter analysis is therefore a valid starting
iterate for a looser one: it is ≤ the looser fixed point, and iterating a
monotone map from any point between the cold start and the least fixed
point reaches that same fixed point.  :func:`analyze` accepts such a
result via ``warm_from`` and typically collapses most iterations;
:func:`compare` (and the sweep campaigns) chain the analyses along
:func:`analysis_pointwise_le` automatically.  Results are identical to
cold runs in every field — when a warm-started iteration fails to
converge, the cold iteration is replayed so even the reported
beyond-deadline iterate matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.core.analyses.base import Analysis, AnalysisContext
from repro.core.analyses.ibn import IBNAnalysis
from repro.core.analyses.sb import SBAnalysis
from repro.core.analyses.xlwx import XLWXAnalysis
from repro.core.interference import InterferenceGraph
from repro.flows.flowset import FlowSet
from repro.noc.platform import NoCPlatform
from repro.util.mathx import FixedPointDiverged, ceil_div, fixed_point

#: Hard ceiling for response times when ``stop_at_deadline`` is disabled.
#: Any response time beyond this is reported as diverged; it exists only to
#: keep pathological recurrences (overloaded links) from looping forever.
RESPONSE_CAP = 1 << 62


@dataclass(frozen=True)
class InterferenceTerm:
    """One direct interferer's contribution to a flow's bound (breakdown)."""

    interferer: str
    hits: int
    hit_cost: int
    downstream_term: int
    window_jitter: int

    @property
    def total(self) -> int:
        """This interferer's total contribution (hits x per-hit cost)."""
        return self.hits * self.hit_cost


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one analysis for one flow.

    ``response_time`` is the converged bound when ``converged`` is True;
    otherwise it is the first iterate beyond the give-up threshold (the
    deadline, by default) and only its *unschedulable* verdict is
    meaningful.  ``tainted`` marks flows whose bound depends (transitively)
    on an unconverged higher-priority flow.
    """

    name: str
    priority: int
    c: int
    deadline: int
    response_time: int
    converged: bool
    tainted: bool
    breakdown: tuple[InterferenceTerm, ...] = field(default=())

    @property
    def schedulable(self) -> bool:
        """True when the flow's converged bound meets its deadline."""
        return self.converged and self.response_time <= self.deadline

    @property
    def slack(self) -> int:
        """Deadline minus bound (negative or meaningless when missed)."""
        return self.deadline - self.response_time


def _flow_result_fast(
    name: str, priority: int, c: int, deadline: int,
    response_time: int, converged: bool, tainted: bool,
) -> FlowResult:
    """Breakdown-free :class:`FlowResult` without the frozen-dataclass
    ``__init__`` overhead (``object.__setattr__`` per field); the batch
    engine materialises tens of thousands of these per call.  Must stay
    in sync with the dataclass fields.
    """
    result = object.__new__(FlowResult)
    result.__dict__.update(
        name=name, priority=priority, c=c, deadline=deadline,
        response_time=response_time, converged=converged, tainted=tainted,
        breakdown=(),
    )
    return result


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of one analysis over a whole flow set."""

    analysis_name: str
    unsafe: bool
    flowset: FlowSet
    flows: Mapping[str, FlowResult]
    complete: bool = True
    #: internal computation context, kept only when the caller asked for
    #: breakdowns; powers :func:`repro.core.report.explain_flow`.
    context: "AnalysisContext | None" = None

    @property
    def schedulable(self) -> bool:
        """True when every analysed flow meets its deadline.

        Only meaningful when ``complete`` is True (no early exit).
        """
        return self.complete and all(r.schedulable for r in self.flows.values())

    @property
    def num_schedulable(self) -> int:
        """How many analysed flows meet their deadline."""
        return sum(1 for r in self.flows.values() if r.schedulable)

    def response_time(self, name: str) -> int:
        """Worst-case bound of one flow (see :class:`FlowResult`)."""
        return self.flows[name].response_time

    def __getitem__(self, name: str) -> FlowResult:
        return self.flows[name]


def _solve_recurrence(
    recurrence: Callable[[int], int],
    cold_start: int,
    warm_start: int,
    give_up: int,
) -> tuple[int, bool]:
    """Fixed point of ``recurrence``, byte-identical to a cold start.

    When ``cold_start < warm_start ≤ give_up`` the iteration begins
    there; a valid warm start (≤ the least fixed point above
    ``cold_start``) converges to exactly the cold result.  A warm start
    already beyond ``give_up`` is ignored outright — a cold run can never
    *converge* above the cut-off, only report the first iterate crossing
    it, so starting there could fabricate a converged verdict (e.g. an
    exact ``stop_at_deadline=False`` bound warm-starting a capped run).
    If the warm iteration fails to converge — it overran ``give_up``,
    hit the iteration budget, or the start was invalid (the recurrence
    dipped below it) — the cold iteration is replayed so the reported
    iterate matches a cold run bit for bit.
    """
    if cold_start < warm_start <= give_up:
        try:
            response, converged = fixed_point(
                recurrence, warm_start, give_up_above=give_up
            )
            if converged:
                return response, True
        except (FixedPointDiverged, ValueError):
            pass
    try:
        return fixed_point(recurrence, cold_start, give_up_above=give_up)
    except FixedPointDiverged as diverged:
        return diverged.last_value, False


def analyze(
    flowset: FlowSet,
    analysis: Analysis,
    *,
    graph: InterferenceGraph | None = None,
    stop_at_deadline: bool = True,
    early_exit: bool = False,
    collect_breakdown: bool = False,
    warm_from: "AnalysisResult | None" = None,
) -> AnalysisResult:
    """Compute worst-case response times for every flow of ``flowset``.

    Parameters
    ----------
    graph:
        A pre-built interference graph for this flow set.  Pass one when
        running several analyses over the same flows (see :func:`compare`)
        to share the O(n²) contention geometry.
    stop_at_deadline:
        Stop iterating a flow's recurrence as soon as it exceeds its
        deadline (the verdict can no longer change).  Disable to obtain the
        exact fixed point beyond the deadline, e.g. for latency tables.
    early_exit:
        Abandon the whole run at the first deadline miss; the result then
        has ``complete=False`` and covers only the flows processed so far.
        This is the fast path for large schedulability sweeps.
    collect_breakdown:
        Record per-interferer terms on each
        :class:`FlowResult` (memory-heavy on large sets; off by default).
    warm_from:
        Result of a *pointwise tighter or equal* analysis over the same
        flows/routes/timing (see :func:`analysis_pointwise_le` and the
        module docstring) used to warm-start each flow's fixed point.
        Only converged, untainted per-flow bounds are used; the returned
        result is identical to a cold run in every field.  The caller is
        responsible for the ordering — an invalid source can silently
        produce a larger fixed point.
    """
    if graph is None:
        graph = InterferenceGraph(flowset)
    elif not graph.compatible_with(flowset):
        raise ValueError("interference graph was built for a different flow set")
    warm_flows: Mapping[str, FlowResult] | None = None
    if (
        warm_from is not None
        and graph.compatible_with(warm_from.flowset)
        and _timing_equal(flowset.platform, warm_from.flowset.platform)
    ):
        # Both checks matter: the graph check ignores linkl/routl (the
        # geometry is latency-agnostic), but a warm source computed under
        # different timing could exceed this recurrence's fixed point and
        # silently inflate it.  Incompatible sources degrade to cold runs.
        warm_flows = warm_from.flows
    ctx = AnalysisContext(flowset=flowset, graph=graph)
    results: dict[str, FlowResult] = {}
    complete = True
    # Most analyses keep the default interference jitter J^I_j = R_j − C_j;
    # recognising that up front lets the term loop read the arrays
    # directly instead of making two method calls per interferer.
    default_jitter = type(analysis).indirect_jitter is Analysis.indirect_jitter
    # Taint state as an index bitmask: flow i is tainted when S^D_i
    # intersects the mask of unconverged-or-tainted flows — one `&`
    # instead of a scan over the direct set.
    direct_masks = graph.direct_masks
    tainted_mask = 0
    for i, flow in enumerate(ctx.flows):
        c_i = ctx.c[i]
        if flow.is_local:
            ctx.response[i] = 0
            ctx.converged[i] = True
            results[flow.name] = FlowResult(
                name=flow.name,
                priority=flow.priority,
                c=0,
                deadline=flow.deadline,
                response_time=0,
                converged=True,
                tainted=False,
            )
            continue

        # Non-preemptive blocking (extension beyond the paper, which uses
        # linkl = 1 throughout): with multi-cycle links, arbitration only
        # switches at flit boundaries, so τi can stall up to linkl−1 cycles
        # behind an in-flight lower-priority flit on every route link that
        # lower-priority traffic also uses — once at the start and once
        # after every preemption (each hit can force a re-acquisition of
        # those links).  Zero when linkl == 1, keeping the paper's
        # equations (and the Table II oracle) byte-identical.
        linkl = flowset.platform.linkl
        blocking_unit = 0
        if linkl > 1:
            blocking_unit = (linkl - 1) * graph.lower_priority_shared_links(i)

        # The recurrence body is the innermost loop of every campaign:
        # evaluate it over parallel per-term arrays with the ceiling
        # inlined as floor division, all per-iteration invariants
        # (blocking, per-hit costs) folded in up front.
        terms: list[tuple[int, int, int, int]] = []  # (j, period, window_jitter, hit_cost)
        for j in graph.direct_by_index(i):
            downstream_term = analysis.downstream_term(ctx, i, j)
            if downstream_term < 0:
                raise ValueError(
                    f"{analysis.name}: negative downstream term for pair "
                    f"({flow.name!r}, {ctx.flows[j].name!r})"
                )
            hit_cost = ctx.c[j] + downstream_term
            ctx.hit_term[(i, j)] = hit_cost
            if default_jitter:
                window_jitter = ctx.jitter[j] + ctx.response[j] - ctx.c[j]
            else:
                window_jitter = ctx.jitter[j] + analysis.indirect_jitter(ctx, i, j)
            terms.append((j, ctx.period[j], window_jitter, hit_cost))

        base = c_i + blocking_unit
        if blocking_unit:
            term_array = [
                (j, period, window_jitter, hit_cost + blocking_unit)
                for j, period, window_jitter, hit_cost in terms
            ]
        else:
            # linkl == 1 (the paper's setting): per-hit cost is hit_cost
            # itself, so the recurrence reads the terms list directly.
            term_array = terms

        def recurrence(r: int) -> int:
            total = base
            for _, period, window_jitter, cost in term_array:
                total += -(-(r + window_jitter) // period) * cost
            return total

        give_up = flow.deadline if stop_at_deadline else RESPONSE_CAP
        warm_start = 0
        if warm_flows is not None:
            warm = warm_flows.get(flow.name)
            # Only a converged, untainted bound is a true fixed point of a
            # pointwise-smaller recurrence, hence a safe starting iterate.
            if warm is not None and warm.converged and not warm.tainted:
                warm_start = warm.response_time
        response, converged = _solve_recurrence(
            recurrence, c_i, warm_start, give_up
        )

        ctx.response[i] = response
        ctx.converged[i] = converged
        total = ctx.total
        for j, period, window_jitter, hit_cost in terms:
            total[(i, j)] = (
                -(-(response + window_jitter) // period) * hit_cost
            )
        tainted = bool(tainted_mask and direct_masks[i] & tainted_mask)
        if not converged or tainted:
            tainted_mask |= 1 << i
        breakdown: tuple[InterferenceTerm, ...] = ()
        if collect_breakdown:
            breakdown = tuple(
                InterferenceTerm(
                    interferer=ctx.flows[j].name,
                    hits=ceil_div(response + window_jitter, period),
                    hit_cost=hit_cost,
                    downstream_term=hit_cost - ctx.c[j],
                    window_jitter=window_jitter,
                )
                for j, period, window_jitter, hit_cost in terms
            )
        results[flow.name] = FlowResult(
            name=flow.name,
            priority=flow.priority,
            c=c_i,
            deadline=flow.deadline,
            response_time=response,
            converged=converged,
            tainted=tainted,
            breakdown=breakdown,
        )
        if early_exit and not results[flow.name].schedulable:
            complete = False
            break

    return AnalysisResult(
        analysis_name=analysis.label(flowset.platform.buf),
        unsafe=analysis.unsafe,
        flowset=flowset,
        flows=results,
        complete=complete,
        context=ctx if collect_breakdown else None,
    )


def is_schedulable(
    flowset: FlowSet,
    analysis: Analysis,
    *,
    graph: InterferenceGraph | None = None,
    warm_from: AnalysisResult | None = None,
) -> bool:
    """Fast set-level verdict: does every flow meet its deadline?"""
    result = analyze(
        flowset, analysis, graph=graph, early_exit=True, warm_from=warm_from
    )
    return result.complete and result.schedulable


def _timing_equal(a: NoCPlatform, b: NoCPlatform) -> bool:
    """Do two platforms agree on everything the recurrences read except
    the buffer depth (topology, routing, link/routing latencies)?"""
    return (
        a is b
        or (
            a.topology is b.topology
            and type(a.routing) is type(b.routing)
            and a.linkl == b.linkl
            and a.routl == b.routl
        )
    )


def analysis_pointwise_le(
    tight: Analysis,
    loose: Analysis,
    tight_platform: NoCPlatform,
    loose_platform: NoCPlatform,
) -> bool:
    """Is ``tight`` guaranteed pointwise ≤ ``loose`` on shared flows?

    True only for pairs with a proof (see the module docstring's ordering
    argument); the safe default is False.  The recognised chain, for
    platforms differing at most in buffer depth:

    * SB ≤ {SB, IBN (any knobs/depth), XLWX} — SB's terms are the common
      floor: zero downstream cost, default interference jitter;
    * IBN(buf b) ≤ IBN(buf b') for ``b ≤ b'`` on homogeneous platforms
      with the same knobs (Equation 6's cap grows with the depth), and
      IBN with the buffer cap ≤ the same-rule variant without it;
      ``upstream_rule="pairwise"`` ≤ ``"any_upstream"`` (the conservative
      rule falls back to the larger XLWX term on more pairs);
    * IBN (any knobs/depth) ≤ XLWX — the application rule's fallback *is*
      XLWX's term, and the non-fallback term recounts hits without the
      ``J^I_k`` inflation and caps them;
    * XLWX ≤ XLWX.

    XLW16 (and other unsafe analyses beyond SB) are deliberately absent:
    its upstream-jitter replacement is not comparable term-by-term.
    """
    if not _timing_equal(tight_platform, loose_platform):
        return False
    if isinstance(tight, SBAnalysis):
        return isinstance(loose, (SBAnalysis, IBNAnalysis, XLWXAnalysis))
    if isinstance(tight, IBNAnalysis):
        if isinstance(loose, XLWXAnalysis):
            return True
        if not isinstance(loose, IBNAnalysis):
            return False
        rule_le = tight.upstream_rule == loose.upstream_rule or (
            tight.upstream_rule == "pairwise"
            and loose.upstream_rule == "any_upstream"
        )
        if not rule_le:
            return False
        if not loose.use_buffer_bound:
            return True
        if not tight.use_buffer_bound:
            return False
        return (
            tight_platform.is_homogeneous
            and loose_platform.is_homogeneous
            and tight_platform.buf <= loose_platform.buf
        )
    if isinstance(tight, XLWXAnalysis):
        return isinstance(loose, XLWXAnalysis)
    return False


def tightness_rank(analysis: Analysis, platform: NoCPlatform) -> tuple[int, int]:
    """Heuristic execution order so tighter analyses run first and their
    results are available as warm starts.  Validity is always re-checked
    with :func:`analysis_pointwise_le`; this only orders the attempts.
    Analysis subclasses unknown to this module get the last rank — they
    simply run cold, with no warm-start or verdict-inference
    participation, which is always safe."""
    if isinstance(analysis, SBAnalysis):
        return (0, 0)
    if isinstance(analysis, IBNAnalysis):
        if analysis.use_buffer_bound:
            return (1, platform.buf)
        return (2, 0)
    if isinstance(analysis, XLWXAnalysis):
        return (3, 0)
    return (4, 0)


def compare(
    flowset: FlowSet,
    analyses: Iterable[Analysis],
    *,
    stop_at_deadline: bool = False,
    collect_breakdown: bool = False,
) -> dict[str, AnalysisResult]:
    """Run several analyses over one flow set, sharing the contention graph.

    Returns a dict keyed by each analysis' display label, in the order the
    analyses were given.  The default ``stop_at_deadline=False`` yields
    exact fixed points (suitable for latency tables like the paper's
    Table II).

    Internally the analyses execute tightest-first so each can warm-start
    from the closest pointwise-tighter result already computed (module
    docstring); every returned result is identical to a cold run.
    """
    graph = InterferenceGraph(flowset)
    ordered = sorted(
        enumerate(analyses),
        key=lambda item: (tightness_rank(item[1], flowset.platform), item[0]),
    )
    computed: dict[int, AnalysisResult] = {}
    sources: list[tuple[Analysis, AnalysisResult]] = []
    for index, analysis in ordered:
        warm = None
        for src_analysis, src_result in reversed(sources):
            if analysis_pointwise_le(
                src_analysis, analysis, flowset.platform, flowset.platform
            ):
                warm = src_result
                break
        result = analyze(
            flowset,
            analysis,
            graph=graph,
            stop_at_deadline=stop_at_deadline,
            collect_breakdown=collect_breakdown,
            warm_from=warm,
        )
        computed[index] = result
        sources.append((analysis, result))
    return {
        computed[index].analysis_name: computed[index]
        for index in sorted(computed)
    }
