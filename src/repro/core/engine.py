"""Priority-ordered fixed-point engine for the response-time analyses.

All analyses in this family share the outer recurrence (paper Equation 5
shape); this module owns that recurrence, the priority-ordered scheduling
of per-flow computations, convergence/divergence handling and result
book-keeping, so each analysis class only contributes its interference
terms.

Flows are processed from highest to lowest priority.  Every quantity an
analysis needs about other flows (their response time ``R_j``, the per-hit
cost ``C_k + I^down_kj`` and total contribution ``I_kj`` of *their*
interferers) refers strictly up the priority order, so a single pass
suffices and no global fixed point across flows is required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.analyses.base import Analysis, AnalysisContext
from repro.core.interference import InterferenceGraph
from repro.flows.flowset import FlowSet
from repro.util.mathx import FixedPointDiverged, ceil_div, fixed_point

#: Hard ceiling for response times when ``stop_at_deadline`` is disabled.
#: Any response time beyond this is reported as diverged; it exists only to
#: keep pathological recurrences (overloaded links) from looping forever.
RESPONSE_CAP = 1 << 62


@dataclass(frozen=True)
class InterferenceTerm:
    """One direct interferer's contribution to a flow's bound (breakdown)."""

    interferer: str
    hits: int
    hit_cost: int
    downstream_term: int
    window_jitter: int

    @property
    def total(self) -> int:
        return self.hits * self.hit_cost


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one analysis for one flow.

    ``response_time`` is the converged bound when ``converged`` is True;
    otherwise it is the first iterate beyond the give-up threshold (the
    deadline, by default) and only its *unschedulable* verdict is
    meaningful.  ``tainted`` marks flows whose bound depends (transitively)
    on an unconverged higher-priority flow.
    """

    name: str
    priority: int
    c: int
    deadline: int
    response_time: int
    converged: bool
    tainted: bool
    breakdown: tuple[InterferenceTerm, ...] = field(default=())

    @property
    def schedulable(self) -> bool:
        return self.converged and self.response_time <= self.deadline

    @property
    def slack(self) -> int:
        """Deadline minus bound (negative or meaningless when missed)."""
        return self.deadline - self.response_time


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of one analysis over a whole flow set."""

    analysis_name: str
    unsafe: bool
    flowset: FlowSet
    flows: Mapping[str, FlowResult]
    complete: bool = True
    #: internal computation context, kept only when the caller asked for
    #: breakdowns; powers :func:`repro.core.report.explain_flow`.
    context: "AnalysisContext | None" = None

    @property
    def schedulable(self) -> bool:
        """True when every analysed flow meets its deadline.

        Only meaningful when ``complete`` is True (no early exit).
        """
        return self.complete and all(r.schedulable for r in self.flows.values())

    @property
    def num_schedulable(self) -> int:
        return sum(1 for r in self.flows.values() if r.schedulable)

    def response_time(self, name: str) -> int:
        """Worst-case bound of one flow (see :class:`FlowResult`)."""
        return self.flows[name].response_time

    def __getitem__(self, name: str) -> FlowResult:
        return self.flows[name]


def analyze(
    flowset: FlowSet,
    analysis: Analysis,
    *,
    graph: InterferenceGraph | None = None,
    stop_at_deadline: bool = True,
    early_exit: bool = False,
    collect_breakdown: bool = False,
) -> AnalysisResult:
    """Compute worst-case response times for every flow of ``flowset``.

    Parameters
    ----------
    graph:
        A pre-built interference graph for this flow set.  Pass one when
        running several analyses over the same flows (see :func:`compare`)
        to share the O(n²) contention geometry.
    stop_at_deadline:
        Stop iterating a flow's recurrence as soon as it exceeds its
        deadline (the verdict can no longer change).  Disable to obtain the
        exact fixed point beyond the deadline, e.g. for latency tables.
    early_exit:
        Abandon the whole run at the first deadline miss; the result then
        has ``complete=False`` and covers only the flows processed so far.
        This is the fast path for large schedulability sweeps.
    collect_breakdown:
        Record per-interferer terms on each
        :class:`FlowResult` (memory-heavy on large sets; off by default).
    """
    if graph is None:
        graph = InterferenceGraph(flowset)
    elif not graph.compatible_with(flowset):
        raise ValueError("interference graph was built for a different flow set")
    ctx = AnalysisContext(flowset=flowset, graph=graph)
    results: dict[str, FlowResult] = {}
    complete = True
    for i, flow in enumerate(ctx.flows):
        c_i = ctx.c[i]
        if flow.is_local:
            ctx.response[i] = 0
            ctx.converged[i] = True
            results[flow.name] = FlowResult(
                name=flow.name,
                priority=flow.priority,
                c=0,
                deadline=flow.deadline,
                response_time=0,
                converged=True,
                tainted=False,
            )
            continue

        # Non-preemptive blocking (extension beyond the paper, which uses
        # linkl = 1 throughout): with multi-cycle links, arbitration only
        # switches at flit boundaries, so τi can stall up to linkl−1 cycles
        # behind an in-flight lower-priority flit on every route link that
        # lower-priority traffic also uses — once at the start and once
        # after every preemption (each hit can force a re-acquisition of
        # those links).  Zero when linkl == 1, keeping the paper's
        # equations (and the Table II oracle) byte-identical.
        linkl = flowset.platform.linkl
        blocking_unit = 0
        if linkl > 1:
            blocking_unit = (linkl - 1) * graph.lower_priority_shared_links(i)

        terms: list[tuple[int, int, int, int]] = []  # (j, period, window_jitter, hit_cost)
        for j in graph.direct_by_index(i):
            downstream_term = analysis.downstream_term(ctx, i, j)
            if downstream_term < 0:
                raise ValueError(
                    f"{analysis.name}: negative downstream term for pair "
                    f"({flow.name!r}, {ctx.flows[j].name!r})"
                )
            hit_cost = ctx.c[j] + downstream_term
            ctx.hit_term[(i, j)] = hit_cost
            window_jitter = ctx.flows[j].jitter + analysis.indirect_jitter(ctx, i, j)
            terms.append((j, ctx.flows[j].period, window_jitter, hit_cost))

        def recurrence(r: int) -> int:
            total = c_i + blocking_unit
            for _, period, window_jitter, hit_cost in terms:
                total += ceil_div(r + window_jitter, period) * (
                    hit_cost + blocking_unit
                )
            return total

        give_up = flow.deadline if stop_at_deadline else RESPONSE_CAP
        try:
            response, converged = fixed_point(recurrence, c_i, give_up_above=give_up)
        except FixedPointDiverged as diverged:
            response, converged = diverged.last_value, False

        ctx.response[i] = response
        ctx.converged[i] = converged
        for j, period, window_jitter, hit_cost in terms:
            ctx.total[(i, j)] = (
                ceil_div(response + window_jitter, period) * hit_cost
            )
        tainted = any(
            not ctx.converged[j] or results[ctx.flows[j].name].tainted
            for j in graph.direct_by_index(i)
        )
        breakdown: tuple[InterferenceTerm, ...] = ()
        if collect_breakdown:
            breakdown = tuple(
                InterferenceTerm(
                    interferer=ctx.flows[j].name,
                    hits=ceil_div(response + window_jitter, period),
                    hit_cost=hit_cost,
                    downstream_term=hit_cost - ctx.c[j],
                    window_jitter=window_jitter,
                )
                for j, period, window_jitter, hit_cost in terms
            )
        results[flow.name] = FlowResult(
            name=flow.name,
            priority=flow.priority,
            c=c_i,
            deadline=flow.deadline,
            response_time=response,
            converged=converged,
            tainted=tainted,
            breakdown=breakdown,
        )
        if early_exit and not results[flow.name].schedulable:
            complete = False
            break

    return AnalysisResult(
        analysis_name=analysis.label(flowset.platform.buf),
        unsafe=analysis.unsafe,
        flowset=flowset,
        flows=results,
        complete=complete,
        context=ctx if collect_breakdown else None,
    )


def is_schedulable(
    flowset: FlowSet,
    analysis: Analysis,
    *,
    graph: InterferenceGraph | None = None,
) -> bool:
    """Fast set-level verdict: does every flow meet its deadline?"""
    result = analyze(flowset, analysis, graph=graph, early_exit=True)
    return result.complete and result.schedulable


def compare(
    flowset: FlowSet,
    analyses: Iterable[Analysis],
    *,
    stop_at_deadline: bool = False,
    collect_breakdown: bool = False,
) -> dict[str, AnalysisResult]:
    """Run several analyses over one flow set, sharing the contention graph.

    Returns a dict keyed by each analysis' display label.  The default
    ``stop_at_deadline=False`` yields exact fixed points (suitable for
    latency tables like the paper's Table II).
    """
    graph = InterferenceGraph(flowset)
    results: dict[str, AnalysisResult] = {}
    for analysis in analyses:
        result = analyze(
            flowset,
            analysis,
            graph=graph,
            stop_at_deadline=stop_at_deadline,
            collect_breakdown=collect_breakdown,
        )
        results[result.analysis_name] = result
    return results
