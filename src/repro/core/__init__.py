"""The paper's contribution: interference theory and response-time analyses.

* :mod:`repro.core.interference` — direct/indirect interference sets and
  Xiong et al.'s upstream/downstream partitioning (paper Section III);
* :mod:`repro.core.analyses` — the SB, XLW16, XLWX and IBN analyses;
* :mod:`repro.core.engine` — the priority-ordered fixed-point engine that
  turns an analysis into per-flow worst-case response times;
* :mod:`repro.core.report` — human-readable result tables.
"""

from repro.core.interference import InterferenceGraph
from repro.core.batch import BatchReport, Scenario, analyze_batch
from repro.core.engine import (
    AnalysisResult,
    FlowResult,
    analyze,
    compare,
    is_schedulable,
)
from repro.core.analyses import (
    Analysis,
    IBNAnalysis,
    Kim98Analysis,
    SBAnalysis,
    XLW16Analysis,
    XLWXAnalysis,
    analysis_by_name,
)
from repro.core.report import comparison_table, result_table
from repro.core.sizing import (
    BufferSizingResult,
    length_scaling_margin,
    max_schedulable_buffer_depth,
    sizing_summary,
    slack_table,
)

__all__ = [
    "BufferSizingResult",
    "analysis_by_name",
    "length_scaling_margin",
    "max_schedulable_buffer_depth",
    "sizing_summary",
    "slack_table",
    "InterferenceGraph",
    "BatchReport",
    "Scenario",
    "analyze_batch",
    "AnalysisResult",
    "FlowResult",
    "analyze",
    "compare",
    "is_schedulable",
    "Analysis",
    "Kim98Analysis",
    "SBAnalysis",
    "XLW16Analysis",
    "XLWXAnalysis",
    "IBNAnalysis",
    "comparison_table",
    "result_table",
]
