"""Microbenchmarks for the fast-lane simulator's hot path.

Covers the paths the array-based rework targets, plus direct speedup
gates against the frozen oracle (:mod:`repro.sim._reference`) so the
acceptance numbers stay enforced:

* single cycle-accurate runs on the 4×4 and 8×8 meshes (cycles/second
  reported via ``extra_info``);
* the didactic release-offset search (the Table II simulation column);
* fast-vs-reference speedup on both, asserting the ≥3× (didactic
  search) and ≥2× (single 8×8 run) floors with identical results.

The shared scenarios (seed, grids, the 8×8 run) live in
``benchmarks/_common.py`` so the recorder
(``benchmarks/record_engine_bench.py``) measures exactly what these
gates enforce; wall-clock history lives in ``BENCH_engine.json``.  Run
this suite via ``make bench-smoke``.
"""

import pytest

from _common import (
    DIDACTIC_GRID,
    DIDACTIC_HORIZON,
    mesh8x8_scenario,
    mesh_flowset,
    reference_didactic_search,
    timed,
)
from repro.sim._reference import ReferenceSimulator
from repro.sim.simulator import WormholeSimulator
from repro.sim.traffic import PeriodicReleases
from repro.sim.worstcase import offset_search
from repro.workloads.didactic import didactic_flowset


def _run(flowset, horizon):
    sim = WormholeSimulator(flowset, PeriodicReleases())
    result = sim.run(horizon)
    result.check_conservation()
    return result


def test_single_run_4x4(benchmark):
    """One drained periodic run on the Figure 4(a) platform."""
    flowset = mesh_flowset((4, 4), 24)
    horizon = max(f.period for f in flowset.flows) // 2
    result = benchmark(lambda: _run(flowset, horizon))
    benchmark.extra_info["cycles"] = result.end_time
    benchmark.extra_info["cycles_per_s"] = round(
        result.end_time / benchmark.stats.stats.mean
    )


def test_single_run_8x8(benchmark):
    """One drained periodic run on the larger Figure 4(b) platform."""
    flowset, horizon = mesh8x8_scenario()
    result = benchmark(lambda: _run(flowset, horizon))
    benchmark.extra_info["cycles"] = result.end_time
    benchmark.extra_info["cycles_per_s"] = round(
        result.end_time / benchmark.stats.stats.mean
    )


def test_didactic_offset_search(benchmark):
    """The Table II simulation column: a τ1 phase sweep at ci thinning."""
    flowset = didactic_flowset(buf=2)
    benchmark(
        lambda: offset_search(
            flowset,
            {"t1": DIDACTIC_GRID},
            release_horizon=DIDACTIC_HORIZON,
        )
    )


@pytest.mark.parametrize("buf", [2, 10])
def test_didactic_search_speedup_vs_reference(buf):
    """Fast offset search ≥3× the frozen oracle, byte-identical maxima."""
    flowset = didactic_flowset(buf=buf)
    fast_s, fast = timed(
        lambda: offset_search(
            flowset,
            {"t1": DIDACTIC_GRID},
            release_horizon=DIDACTIC_HORIZON,
        )
    )
    ref_s, ref_worst = timed(lambda: reference_didactic_search(flowset))
    assert fast.worst == ref_worst
    speedup = ref_s / fast_s
    print(f"\ndidactic search buf={buf}: {ref_s:.2f}s -> {fast_s:.2f}s "
          f"({speedup:.1f}x)")
    assert speedup >= 3.0, f"didactic offset search only {speedup:.1f}x"


def test_mesh8x8_speedup_vs_reference():
    """Single large-mesh run ≥2× the frozen oracle, identical outcome."""
    flowset, horizon = mesh8x8_scenario()
    fast_s, fast = timed(
        lambda: WormholeSimulator(flowset, PeriodicReleases()).run(horizon)
    )
    ref_s, ref = timed(
        lambda: ReferenceSimulator(flowset, PeriodicReleases()).run(horizon)
    )
    assert dict(fast.observer.worst) == dict(ref.observer.worst)
    assert fast.delivered_flits == ref.delivered_flits
    assert fast.end_time == ref.end_time
    speedup = ref_s / fast_s
    print(f"\n8x8 run: {ref_s:.2f}s -> {fast_s:.2f}s ({speedup:.1f}x)")
    assert speedup >= 2.0, f"8x8 single run only {speedup:.1f}x"
