"""Compiled backend vs numpy: the backend seam's speedup gates.

Measurements (shared with ``record_engine_bench.py``, which stores
them as the ``backend`` block of BENCH_engine.json):

* **kernel_b256** — a B = 256 batch of 96-flow log-uniform-period sets
  through :func:`~repro.core.batch.analyze_batch` under each available
  backend.  Log-uniform periods make the fixed points iterate for real
  (uniform periods converge in a step or two, leaving nothing for a
  compiled loop to win); candidate sets whose recurrences overrun into
  the scalar-diversion valve are filtered out up front, because a
  diverted scenario runs the identical pure-Python engine under every
  backend and would only dilute the kernel comparison.  Graphs and
  batch structures are warmed before timing so the comparison isolates
  the level loop, and the gate gates on process-CPU time.
* **sim_8x8** — the 8×8 periodic wormhole run under each backend
  (cycles/s), with the end times cross-checked for byte-identity.

Both gates skip when the C extension is unavailable — the seam's
contract is that numpy alone must still pass the whole suite.

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_backend.py -q
"""

from __future__ import annotations

import time

import pytest

from repro.core import backend as backend_mod
from repro.core.analyses.ibn import IBNAnalysis
from repro.core.batch import BatchReport, Scenario, analyze_batch
from repro.core.interference import InterferenceGraph
from repro.flows.flowset import FlowSet
from repro.noc.platform import NoCPlatform
from repro.noc.topology import Mesh2D
from repro.sim.simulator import WormholeSimulator
from repro.sim.traffic import PeriodicReleases
from repro.util.rng import spawn_rng
from repro.workloads.synthetic import SyntheticConfig, synthetic_flows

from _common import mesh8x8_scenario

SEED = 20180319
KERNEL_B = 256
KERNEL_NUM_FLOWS = 96
#: Candidates generated before the diversion filter trims to KERNEL_B.
KERNEL_CANDIDATES = 320


def _best_cpu(fn, reps: int = 7) -> float:
    """Best-of-N process-CPU seconds (the gates' currency: on a busy
    shared host wall clock measures the neighbours, CPU time the code).
    Seven reps, not three: the C-kernel runs are ~25 ms windows whose
    best-of-3 still jitters ±15% on a single-core recording host, and
    the regression gate compares them at 20%."""
    best = float("inf")
    for _ in range(reps):
        c0 = time.process_time()
        fn()
        best = min(best, time.process_time() - c0)
    return best


def _kernel_scenarios() -> list[Scenario]:
    """KERNEL_B warm scenarios that stay on the array path throughout.

    Diversion (a recurrence overrunning the int64 safety valve) is
    byte-identical across backends, so the filter pass can run on the
    default backend; its graphs are rebuilt fresh afterwards and warmed
    by the callers' first timed repetition.
    """
    platform = NoCPlatform(Mesh2D(4, 4), buf=2)
    config = SyntheticConfig(
        num_flows=KERNEL_NUM_FLOWS, log_uniform_periods=True
    )
    analysis = IBNAnalysis()
    flowsets = []
    for index in range(KERNEL_CANDIDATES):
        rng = spawn_rng(SEED, "bench-backend", KERNEL_NUM_FLOWS, index)
        flows = synthetic_flows(config, platform.topology.num_nodes, rng)
        flowsets.append(FlowSet(platform, flows))
    report = BatchReport(len(flowsets))
    with backend_mod.use_backend("numpy"):
        analyze_batch(
            [Scenario(fs, analysis) for fs in flowsets],
            early_exit=False,
            report=report,
        )
    diverted = set(report.scalar_fallbacks)
    kept = [fs for i, fs in enumerate(flowsets) if i not in diverted]
    assert len(kept) >= KERNEL_B, (
        f"only {len(kept)} non-diverting candidates; raise KERNEL_CANDIDATES"
    )
    return [
        Scenario(fs, analysis, graph=InterferenceGraph(fs))
        for fs in kept[:KERNEL_B]
    ]


def kernel_metrics() -> dict:
    """The batch recurrence loop per backend at B = 256."""
    scenarios = _kernel_scenarios()
    cpu: dict[str, float] = {}
    for name in backend_mod.available_backend_names():
        with backend_mod.use_backend(name):
            run = lambda: analyze_batch(scenarios, early_exit=False)  # noqa: E731
            run()  # warm graphs, structs, numeric caches
            cpu[name] = _best_cpu(run)
    block: dict = {
        "B": KERNEL_B,
        "num_flows": KERNEL_NUM_FLOWS,
        "numpy_cpu_s": round(cpu["numpy"], 4),
    }
    if "cext" in cpu:
        block["cext_cpu_s"] = round(cpu["cext"], 4)
        block["cpu_speedup"] = round(cpu["numpy"] / cpu["cext"], 2)
    return block


def sim_metrics() -> dict:
    """The 8×8 wormhole run per backend, gated on cycles/s."""
    flowset, horizon = mesh8x8_scenario()
    cpu: dict[str, float] = {}
    end_times: dict[str, int] = {}
    for name in backend_mod.available_backend_names():
        with backend_mod.use_backend(name):
            run = lambda: WormholeSimulator(  # noqa: E731
                flowset, PeriodicReleases()
            ).run(horizon)
            end_times[name] = run().end_time  # warm route/table caches
            cpu[name] = _best_cpu(run)
    assert len(set(end_times.values())) == 1, (
        f"backends disagree on the simulated end time: {end_times}"
    )
    end_time = end_times["numpy"]
    block: dict = {
        "end_time": end_time,
        "numpy_cpu_s": round(cpu["numpy"], 4),
        "numpy_cycles_per_s": round(end_time / cpu["numpy"]),
    }
    if "cext" in cpu:
        block["cext_cpu_s"] = round(cpu["cext"], 4)
        block["cext_cycles_per_s"] = round(end_time / cpu["cext"])
        block["cpu_speedup"] = round(cpu["numpy"] / cpu["cext"], 2)
    return block


def backend_metrics() -> dict:
    """The ``backend`` block recorded in BENCH_engine.json."""
    return {
        "available": backend_mod.available_backend_names(),
        "kernel_b256": kernel_metrics(),
        "sim_8x8": sim_metrics(),
    }


def _require_cext() -> None:
    if "cext" not in backend_mod.available_backend_names():
        pytest.skip("C extension unavailable; numpy-only host")


def test_kernel_b256_speedup_gate():
    """The compiled level loop must run the B = 256 batch ≥3x faster
    than the numpy loop (process CPU time)."""
    _require_cext()
    block = kernel_metrics()
    assert block["cpu_speedup"] >= 3.0, block


def test_sim_8x8_speedup_gate():
    """The compiled event drain must push the 8×8 run ≥3x more
    cycles/s than the Python loop (process CPU time)."""
    _require_cext()
    block = sim_metrics()
    assert block["cpu_speedup"] >= 3.0, block
