"""Allocation optimizer: frontier throughput and time-to-optimum.

Measurements (shared with ``record_engine_bench.py``, which stores
them as the ``allocate`` block of BENCH_engine.json):

* **evals_per_s** — schedulability evaluations the search sustains per
  second over a ladder of didactic deadline variants whose feasibility
  boundary crosses the whole 1..4 depth box.  Evaluations flow through
  the frontier batching path (``analyze_batch`` over candidate depth
  maps sharing one interference graph), so this is the number the
  batching exists to move.
* **time_to_optimum_s** — wall clock to a *certified* optimum for the
  whole ladder (best-of-N process-CPU, like the other kernel probes).
* **evaluations_per_case / pruning_factor** — how much of the 4^4
  relevant-router box the monotonicity pruning lets the search skip.
  Speed-independent, so the regression gate sees algorithmic
  regressions (lost pruning) even through machine drift.

The pytest gates enforce the search-quality floor: every ladder case
certified, matching the brute-force oracle, at a pruning factor the
dominance rules comfortably clear today.

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_allocate.py -q
"""

from __future__ import annotations

import dataclasses
import time

from repro.core.allocate import (
    CostModel,
    exhaustive_allocation,
    optimize_allocation,
)
from repro.flows.flowset import FlowSet
from repro.workloads.didactic import didactic_flowset

#: t3-deadline ladder: infeasible -> one corner -> knapsack -> roomy.
#: 336 + 2·(d2+d3+d4) is t3's IBN bound, so each step moves the
#: feasibility boundary one layer through the depth box.
DEADLINES = tuple(range(336, 404, 4))

#: Objectives exercised per deadline: the kind default, a weighted
#: silicon-area model, and a weighted throughput-sacrifice model.
MODELS = (
    None,
    CostModel(kind="depth", weights={2: 3, 4: 2}),
    CostModel(kind="shallowness", target=4, weights={2: 3, 4: 2}),
)

HI = 4
#: The didactic chain has 4 contended routers: the exhaustive
#: relevant-router box the pruning is measured against.
BOX = HI ** 4


def _ladder() -> list[FlowSet]:
    base = didactic_flowset()
    out = []
    for deadline in DEADLINES:
        flows = list(base.flows)
        flows[2] = dataclasses.replace(flows[2], deadline=deadline)
        out.append(FlowSet(base.platform, flows))
    return out


def _run_ladder(flowsets) -> list:
    return [
        optimize_allocation(flowset, lo=1, hi=HI, cost_model=model)
        for flowset in flowsets
        for model in MODELS
    ]


def allocate_metrics(repeats: int = 3) -> dict:
    """The ``allocate`` block recorded into BENCH_engine.json."""
    flowsets = _ladder()
    _run_ladder(flowsets)  # warm routes and memos outside the timing
    best_s = float("inf")
    results = []
    for _ in range(repeats):
        start = time.process_time()
        results = _run_ladder(flowsets)
        best_s = min(best_s, time.process_time() - start)
    evaluations = sum(r.evaluations for r in results)
    frontiers = sum(r.frontiers for r in results)
    per_case = evaluations / len(results)
    return {
        "cases": len(results),
        "time_to_optimum_s": round(best_s, 3),
        "evals_per_s": round(evaluations / best_s, 1),
        "frontiers_per_s": round(frontiers / best_s, 1),
        "evaluations_per_case": round(per_case, 1),
        "pruning_factor": round(BOX / per_case, 1),
    }


def test_ladder_certified_and_matches_oracle(benchmark):
    """Every ladder case reaches a certified optimum, and a sampled
    third of them is cross-checked against the exhaustive oracle."""
    flowsets = _ladder()
    results = benchmark.pedantic(
        lambda: _run_ladder(flowsets), rounds=1, iterations=1
    )
    assert all(r.certified for r in results)
    cases = [
        (flowset, model) for flowset in flowsets for model in MODELS
    ]
    for index in range(0, len(cases), 3):
        flowset, model = cases[index]
        oracle = exhaustive_allocation(
            flowset, lo=1, hi=HI, cost_model=model
        )
        fast = results[index]
        assert fast.feasible == oracle.feasible
        assert fast.cost == oracle.cost


def test_pruning_beats_exhaustive_box():
    """The monotonicity pruning must keep mean evaluations well under
    the exhaustive relevant-router box (4x is a comfortable floor; the
    search sits far above it today)."""
    metrics = allocate_metrics(repeats=1)
    assert metrics["pruning_factor"] >= 4.0
    assert metrics["evals_per_s"] > 0
