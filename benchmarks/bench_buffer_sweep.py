"""Benchmark + regeneration of the Section VI buffer-size claim.

"We have performed the same experiments with a range of different buffer
sizes between 2 and 100 [...] in every case, the analysis was able to
guarantee schedulability of a smaller number of flow sets when considering
routers with larger buffers."

The IBN schedulability percentage must be monotonically non-increasing in
the buffer depth.
"""

from repro.experiments.buffer_sweep import buffer_sweep
from repro.experiments.report import render_sweep, sweep_csv
from repro.experiments.scale import get_scale

from _common import emit, emit_csv

SCALE = get_scale()


def test_buffer_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: buffer_sweep(
            (4, 4),
            SCALE.buffer_depths,
            num_flows=SCALE.buffer_flow_count,
            sets=SCALE.buffer_sets,
            seed=SCALE.seed,
        ),
        rounds=1,
        iterations=1,
    )
    values = result.series["IBN"]
    assert values == sorted(values, reverse=True), "monotonicity violated"
    text = render_sweep(
        result,
        title=(
            "Section VI buffer sweep: IBN schedulability vs buffer depth "
            f"({SCALE.buffer_flow_count} flows on 4x4, scale={SCALE.name})"
        ),
    )
    emit("buffer_sweep", text)
    emit_csv("buffer_sweep", sweep_csv(result))
