"""Benchmark + regeneration of Figure 5: the AV benchmark across topologies.

Maps the autonomous-vehicle application substitute onto the paper's mesh
list (26 topologies at paper scale) with random mappings, and reports the
percentage of mappings certified schedulable by XLWX, IBN2 and IBN100.

Checked shape properties:

* IBN2 and IBN100 dominate XLWX on every topology;
* IBN2 >= IBN100 on every topology;
* a strictly positive IBN-over-XLWX gap somewhere in the sweep.
"""

from repro.experiments.av_topologies import av_topology_study
from repro.experiments.report import render_sweep, sweep_csv
from repro.experiments.scale import get_scale

from _common import emit, emit_csv

SCALE = get_scale()


def test_fig5(benchmark):
    result = benchmark.pedantic(
        lambda: av_topology_study(
            SCALE.fig5_topologies,
            SCALE.fig5_mappings,
            seed=SCALE.seed,
        ),
        rounds=1,
        iterations=1,
    )
    for i, topo in enumerate(result.x_values):
        assert result.series["IBN2"][i] >= result.series["XLWX"][i], topo
        assert result.series["IBN100"][i] >= result.series["XLWX"][i], topo
        assert result.series["IBN2"][i] >= result.series["IBN100"][i], topo
    assert result.max_gap("IBN2", "XLWX") > 0
    text = render_sweep(
        result,
        title=f"Figure 5: AV benchmark, scale={SCALE.name}",
    )
    text += (
        f"\nmax IBN2-XLWX gap: {result.max_gap('IBN2', 'XLWX'):.1f}% "
        "(paper: up to 67%)"
        f"\nmax IBN2-IBN100 gap: {result.max_gap('IBN2', 'IBN100'):.1f}% "
        "(paper: up to 6%)"
    )
    emit("fig5", text)
    emit_csv("fig5", sweep_csv(result))
