"""Microbenchmarks: analysis cost scaling and IBN design ablations.

Not a paper artefact, but the numbers DESIGN.md's engineering choices rest
on: the per-flow-set cost of each analysis as the set grows, the cost of
the shared interference graph, and the cost of IBN's two ablation knobs.
"""

import pytest

from repro.core.analyses.ibn import IBNAnalysis
from repro.core.analyses.sb import SBAnalysis
from repro.core.analyses.xlwx import XLWXAnalysis
from repro.core.engine import analyze
from repro.core.interference import InterferenceGraph
from repro.noc.platform import NoCPlatform
from repro.noc.topology import Mesh2D
from repro.workloads.synthetic import SyntheticConfig, synthetic_flowset

SEED = 20180319


def _flowset(num_flows, mesh=(4, 4)):
    platform = NoCPlatform(Mesh2D(*mesh), buf=2)
    return synthetic_flowset(
        platform, SyntheticConfig(num_flows=num_flows), seed=SEED
    )


@pytest.fixture(scope="module")
def flowset200():
    return _flowset(200)


@pytest.fixture(scope="module")
def graph200(flowset200):
    return InterferenceGraph(flowset200)


@pytest.mark.parametrize("num_flows", [50, 200, 400])
def test_interference_graph_construction(benchmark, num_flows):
    flowset = _flowset(num_flows)
    benchmark(lambda: InterferenceGraph(flowset))


@pytest.mark.parametrize(
    "analysis",
    [SBAnalysis(), XLWXAnalysis(), IBNAnalysis()],
    ids=lambda a: a.name,
)
def test_analysis_cost_200_flows(benchmark, flowset200, graph200, analysis):
    result = benchmark(
        lambda: analyze(flowset200, analysis, graph=graph200)
    )
    assert result.complete


@pytest.mark.parametrize(
    "variant",
    [
        IBNAnalysis(),
        IBNAnalysis(use_buffer_bound=False),
        IBNAnalysis(upstream_rule="any_upstream"),
    ],
    ids=["ibn", "ibn-no-min", "ibn-conservative-upstream"],
)
def test_ibn_ablations(benchmark, flowset200, graph200, variant):
    result = benchmark(lambda: analyze(flowset200, variant, graph=graph200))
    assert result.complete


def test_end_to_end_verdict_cost(benchmark):
    """Graph + all four Figure 4 curves for one 200-flow set."""
    from repro.experiments.schedulability_sweep import analyse_set, fig4_specs

    flowset = _flowset(200)
    flows = list(flowset.flows)
    platform = flowset.platform
    benchmark(lambda: analyse_set(flows, platform, fig4_specs()))
