"""Durable result tier: fsync cost, replication lag, failover time.

Three measurements over the durability machinery the chaos suite
exercises end to end (``store_failover`` / ``record_corruption``):

* **fsync throughput** — puts/s into a :class:`JsonlQueryStore` under
  each fsync policy (``none`` / ``batch`` / ``always``).  This is the
  price list for the ``--store-fsync`` knob: ``none`` rides the page
  cache, ``batch`` amortises one ``fsync`` per interval, ``always``
  pays a disk barrier per record.
* **replication lag** — median milliseconds between a locally-acked
  put on a primary :class:`StoreDaemon` and the record landing in its
  backup's store, plus puts/s when the primary runs with
  ``ack_mode="replicated"`` (every ack waits for the backup, so the
  rate *is* the durable-commit rate).
* **failover time** — SIGKILL-shaped loss of the primary (``stop()``
  drops every socket mid-flight), a supervisor-style ``promote`` of
  the backup, and the wall clock until a :class:`RemoteStore` group
  client completes its next write — with every previously-acked record
  still readable (``acked_lost`` must record 0).

``record_engine_bench.py`` imports :func:`durability_metrics` for the
``durability`` block of BENCH_engine.json; ``tools/bench_regress.py``
tracks ``durability.failover_time_s`` (lower) and
``durability.fsync_puts_per_s.always`` (higher).  The pytest gates
below enforce the invariants that make those numbers meaningful: every
mode's records survive a reload, replication delivers every put, a
replicated ack means the record is already on the backup, and failover
loses nothing.

Run the gates::

    PYTHONPATH=src python -m pytest benchmarks/bench_durability.py -q
"""

from __future__ import annotations

import statistics
import tempfile
import time
from pathlib import Path

from repro.serve.cache import JsonlQueryStore
from repro.serve.stored import RemoteStore, StoreClient, StoreDaemon

from _common import timed

#: Records per fsync-mode burst: large enough that per-put overhead,
#: not harness startup, dominates; small enough that the ``always``
#: mode (one disk barrier per record) stays in smoke-run territory.
FSYNC_PUTS = 128
#: Replication samples for the lag median.
LAG_SAMPLES = 24


def _result(index: int) -> dict:
    return {"verdict": index % 2 == 0, "worst_case": [index, index * 3]}


def _fsync_throughput(mode: str, puts: int = FSYNC_PUTS) -> float:
    with tempfile.TemporaryDirectory() as tmp:
        store = JsonlQueryStore(Path(tmp) / "queries", fsync=mode)
        elapsed, _ = timed(
            lambda: [store.put(f"job-{i}", _result(i)) for i in range(puts)]
        )
        assert len(store) == puts
        # Durability check: a fresh scan of the same file sees them all.
        reloaded = JsonlQueryStore(Path(tmp) / "queries")
        assert len(reloaded) == puts
    return round(puts / elapsed, 1)


def _wait_connected(primary: StoreDaemon, deadline_s: float = 5.0) -> None:
    """Block until the backup's stream is attached to ``primary``."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        with primary._ack_cond:
            if primary._replicas:
                return
        time.sleep(0.01)
    raise AssertionError("backup never attached to the primary")


def _pair(tmp: Path, ack_mode: str) -> tuple[StoreDaemon, StoreDaemon]:
    primary = StoreDaemon(tmp / "primary", ack_mode=ack_mode).start()
    backup = StoreDaemon(
        tmp / "backup", replica_of=f"{primary.host}:{primary.port}"
    ).start()
    _wait_connected(primary)
    return primary, backup


def _replication_lag_ms(primary: StoreDaemon, backup: StoreDaemon,
                        client: StoreClient) -> float:
    """Median ms from a locally-acked put to the backup holding it."""
    lags = []
    for i in range(LAG_SAMPLES):
        job = f"lag-{i}"
        start = time.perf_counter()
        client.request({"op": "put", "job": job, "result": _result(i)})
        while backup.store.get(job) is None:
            if time.perf_counter() - start > 5.0:
                raise AssertionError(f"{job} never reached the backup")
            time.sleep(0.0005)
        lags.append((time.perf_counter() - start) * 1000)
    return round(statistics.median(lags), 3)


def _failover(tmp: Path) -> dict:
    """Kill a replicated primary, promote the backup, time the gap."""
    primary, backup = _pair(tmp, ack_mode="replicated")
    group = (
        f"{primary.host}:{primary.port},{backup.host}:{backup.port}"
    )
    remote = RemoteStore([group], timeout=2.0, connect_timeout=0.5)
    acked = {}
    try:
        for i in range(32):
            acked[f"job-{i}"] = remote.put(f"job-{i}", _result(i))

        start = time.perf_counter()
        primary.stop()  # SIGKILL-shaped: every socket dropped mid-flight
        promote = StoreClient(f"{backup.host}:{backup.port}", timeout=2.0)
        assert promote.request({"op": "promote"})["ok"]
        promote.close()
        # First durable write after the loss closes the outage window.
        remote.put("post-failover", {"v": 1})
        failover_s = time.perf_counter() - start

        lost = sum(
            1 for job, result in acked.items()
            if remote.get(job) != result
        )
        return {
            "failover_time_s": round(failover_s, 3),
            "acked_puts": len(acked),
            "acked_lost": lost,
        }
    finally:
        remote.close()
        primary.stop()
        backup.stop()


def durability_metrics() -> dict:
    """The recorded ``durability`` block (see module docstring)."""
    block: dict[str, object] = {
        "fsync_puts_per_s": {
            mode: _fsync_throughput(mode)
            for mode in ("none", "batch", "always")
        }
    }

    with tempfile.TemporaryDirectory() as tmp:
        primary, backup = _pair(Path(tmp), ack_mode="local")
        client = StoreClient(f"{primary.host}:{primary.port}", timeout=2.0)
        try:
            block["replication_lag_ms"] = _replication_lag_ms(
                primary, backup, client
            )
        finally:
            client.close()
            primary.stop()
            backup.stop()

    with tempfile.TemporaryDirectory() as tmp:
        primary, backup = _pair(Path(tmp), ack_mode="replicated")
        client = StoreClient(f"{primary.host}:{primary.port}", timeout=5.0)
        try:
            elapsed, replies = timed(lambda: [
                client.request(
                    {"op": "put", "job": f"rep-{i}", "result": _result(i)}
                )
                for i in range(FSYNC_PUTS)
            ])
            assert all(r["ok"] and r["replicated"] for r in replies)
            block["replicated_puts_per_s"] = round(FSYNC_PUTS / elapsed, 1)
        finally:
            client.close()
            primary.stop()
            backup.stop()

    with tempfile.TemporaryDirectory() as tmp:
        block.update(_failover(Path(tmp)))
    assert block["acked_lost"] == 0, "failover lost acked puts"
    return block


# -- pytest gates ------------------------------------------------------


def test_every_fsync_mode_is_durable():
    rates = {
        mode: _fsync_throughput(mode, puts=32)
        for mode in ("none", "batch", "always")
    }
    assert all(rate > 0 for rate in rates.values()), rates


def test_replication_delivers_every_put(tmp_path):
    primary, backup = _pair(tmp_path, ack_mode="local")
    client = StoreClient(f"{primary.host}:{primary.port}", timeout=2.0)
    try:
        for i in range(50):
            client.request(
                {"op": "put", "job": f"job-{i}", "result": _result(i)}
            )
        deadline = time.monotonic() + 5.0
        while backup.store.end_offset < primary.store.end_offset:
            assert time.monotonic() < deadline, "backup never caught up"
            time.sleep(0.01)
        for i in range(50):
            assert backup.store.get(f"job-{i}") == _result(i)
    finally:
        client.close()
        primary.stop()
        backup.stop()


def test_replicated_ack_means_on_backup(tmp_path):
    primary, backup = _pair(tmp_path, ack_mode="replicated")
    client = StoreClient(f"{primary.host}:{primary.port}", timeout=5.0)
    try:
        reply = client.request(
            {"op": "put", "job": "j", "result": {"v": 9}}
        )
        assert reply == {"ok": True, "stored": True, "replicated": True}
        # No polling: the ack itself promised the backup has it.
        assert backup.store.get("j") == {"v": 9}
    finally:
        client.close()
        primary.stop()
        backup.stop()


def test_failover_loses_no_acked_put(tmp_path):
    outcome = _failover(tmp_path)
    assert outcome["acked_lost"] == 0
    assert outcome["acked_puts"] == 32
    assert outcome["failover_time_s"] < 10.0


if __name__ == "__main__":
    import json

    print(json.dumps(durability_metrics(), indent=2))
