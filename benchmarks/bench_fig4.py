"""Benchmark + regeneration of Figure 4: schedulability vs offered load.

Panel (a) sweeps flow counts on a 4×4 mesh, panel (b) on an 8×8 mesh,
with the SB / XLWX / IBN2 / IBN100 curves.  Scale (points, sets per
point) follows ``REPRO_SCALE`` — ``paper`` reproduces the full campaign
(40..430 and 80..520 flows, 100 sets per point).

Checked shape properties (the paper's claims):

* pointwise ordering SB >= IBN2 >= IBN100 >= XLWX;
* all curves start fully schedulable at the lightest load;
* a strictly positive IBN-over-XLWX gap somewhere in the sweep.
"""

from repro.experiments.report import render_sweep, sweep_csv
from repro.experiments.scale import get_scale
from repro.experiments.schedulability_sweep import schedulability_sweep

from _common import emit, emit_csv

SCALE = get_scale()


def _run_panel(mesh, counts):
    return schedulability_sweep(
        mesh,
        counts,
        SCALE.fig4_sets_per_point,
        seed=SCALE.seed,
    )


def _check_shape(result):
    for i in range(len(result.x_values)):
        sb = result.series["SB"][i]
        ibn2 = result.series["IBN2"][i]
        ibn100 = result.series["IBN100"][i]
        xlwx = result.series["XLWX"][i]
        assert sb >= ibn2 >= ibn100 >= xlwx, result.x_values[i]
    assert all(series[0] == 100.0 for series in result.series.values())
    assert result.max_gap("IBN2", "XLWX") > 0


def test_fig4a(benchmark):
    result = benchmark.pedantic(
        lambda: _run_panel((4, 4), SCALE.fig4a_flow_counts),
        rounds=1,
        iterations=1,
    )
    _check_shape(result)
    text = render_sweep(
        result,
        title=f"Figure 4(a): 4x4 mesh, scale={SCALE.name}",
    )
    text += (
        f"\nmax IBN2-XLWX gap: {result.max_gap('IBN2', 'XLWX'):.1f}% "
        "(paper: up to 58%)"
        f"\nmax IBN2-IBN100 gap: {result.max_gap('IBN2', 'IBN100'):.1f}% "
        "(paper: up to 8%)"
    )
    emit("fig4a", text)
    emit_csv("fig4a", sweep_csv(result))


def test_fig4b(benchmark):
    result = benchmark.pedantic(
        lambda: _run_panel((8, 8), SCALE.fig4b_flow_counts),
        rounds=1,
        iterations=1,
    )
    _check_shape(result)
    text = render_sweep(
        result,
        title=f"Figure 4(b): 8x8 mesh, scale={SCALE.name}",
    )
    text += (
        f"\nmax IBN2-XLWX gap: {result.max_gap('IBN2', 'XLWX'):.1f}% "
        "(paper: up to 45%)"
    )
    emit("fig4b", text)
    emit_csv("fig4b", sweep_csv(result))
