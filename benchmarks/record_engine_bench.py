"""Record the engine hot-path micro-benchmarks into BENCH_engine.json.

Run from the repository root::

    PYTHONPATH=src python benchmarks/record_engine_bench.py [label]

Each invocation appends one entry to ``BENCH_engine.json`` (a JSON list at
the repository root) with wall-clock timings of the three hot paths the
analysis kernel optimisation targets:

* ``graph_build_ms``       — :class:`InterferenceGraph` construction at
  50/200/400 flows on the 4x4 mesh;
* ``analyse_set_ms``       — one full Figure-4 verdict (graph + SB/XLWX/
  IBN2/IBN100) for a 200-flow set;
* ``fig4_ci_s``            — the whole ci-scale Figure 4(a) sweep;
* ``recurrence_ms``        — one SB and one IBN pass over a 200-flow set
  with a pre-built graph (isolates the fixed-point engine);
* ``sim``                  — the fast-lane simulator block: the didactic
  release-offset search and a single 8×8 periodic run, each timed on
  the fast simulator and on the frozen oracle
  (:mod:`repro.sim._reference`), with the resulting speedups.
* ``campaign``             — the campaign engine at smoke scale: jobs/sec
  through the scheduler for the ``examples/specs/campaign_smoke.json``
  spec (cold in-memory run) and the wall clock of a fully-stored resume
  replay (expansion + store load + aggregation, zero jobs executed).
* ``serve``                — the analysis service: ``POST /analyze``
  requests/s against a live server, cold (every request computed) and
  warm (every request answered from the LRU result cache); see
  ``bench_serve.py``.
* ``batch``                — the columnar batch engine: batched vs
  scalar scenarios/s at B ∈ {1, 32, 256} plus the end-to-end sweep
  comparison and the ci-scale Figure 4(a) wall clock; see
  ``bench_batch.py``.
* ``backend``              — the backend seam: the B = 256 batch
  recurrence and the 8×8 simulator run timed under every available
  backend (numpy always; cext when the C extension builds), with
  CPU-time speedups; see ``bench_backend.py``.  On numpy-only hosts
  the block records the numpy times and omits the speedups — the
  regression gate skips absent metrics.
* ``allocate``             — the buffer-allocation optimizer: frontier
  evaluations/s and time-to-certified-optimum over the didactic
  deadline ladder, plus the monotonicity-pruning factor versus the
  exhaustive depth box; see ``bench_allocate.py``.
* ``durability``           — the durable result tier: puts/s per fsync
  policy, primary→backup replication lag and replicated-ack commit
  rate, and the wall clock of a kill-the-primary failover with zero
  acked puts lost; see ``bench_durability.py``.
* ``chaos``                — the fault-injection suite at smoke scale
  (``tools/chaos.py``): scenarios passed and the wall-clock overhead
  the recovery machinery adds to a worker-killed CLI campaign.
* ``cluster``              — the sharded serving cluster: requests/s
  and p50/p99/p999 latency from concurrent keep-alive asyncio clients
  against real supervised front-ends plus a store daemon, as a short
  scaling curve over front-end counts; see ``bench_serve.py``.

The resulting trajectory lets future PRs compare against every past
revision; ``make bench-smoke`` runs this plus the pytest-benchmark
suite, and ``tools/bench_regress.py`` gates ``make smoke`` on the two
latest entries.  To keep the trajectory readable, appending an entry
drops older entries carrying the same (label, revision) pair — only
the latest smoke run per revision survives.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

from repro.core.analyses.ibn import IBNAnalysis
from repro.core.analyses.sb import SBAnalysis
from repro.core.engine import analyze
from repro.core.interference import InterferenceGraph
from repro.experiments.scale import get_scale
from repro.experiments.schedulability_sweep import (
    analyse_set,
    fig4_specs,
    schedulability_sweep,
)
from _common import (
    DIDACTIC_GRID,
    DIDACTIC_HORIZON,
    mesh8x8_scenario,
    reference_didactic_search,
    timed,
)
from repro.noc.platform import NoCPlatform
from repro.noc.topology import Mesh2D
from repro.sim._reference import ReferenceSimulator
from repro.sim.simulator import WormholeSimulator
from repro.sim.traffic import PeriodicReleases
from repro.sim.worstcase import offset_search
from repro.workloads.didactic import didactic_flowset
from repro.workloads.synthetic import SyntheticConfig, synthetic_flowset

SEED = 20180319
TARGET = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _flowset(num_flows: int):
    platform = NoCPlatform(Mesh2D(4, 4), buf=2)
    return synthetic_flowset(
        platform, SyntheticConfig(num_flows=num_flows), seed=SEED
    )


def _time_ms(fn, repeats: int = 7) -> float:
    """Best-of-N process-CPU milliseconds (see :func:`_timed`): these
    are millisecond-scale probes the regression gate
    (tools/bench_regress.py) compares at 20%, so they use CPU time and
    best-of-N to stay immune to scheduler noise on a busy host."""
    fn()  # warm caches (routes, imports) outside the measurement
    best = min(_timed(fn) for _ in range(repeats))
    return round(best * 1000, 2)


def _timed(fn) -> float:
    """Process-CPU seconds of one call.

    The kernel probes below are single-threaded pure compute, so CPU
    time *is* their cost — and unlike wall clock it cannot be inflated
    by whatever else a shared host is running, which matters because
    the regression gate compares these numbers across revisions.
    """
    start = time.process_time()
    fn()
    return time.process_time() - start


def collect() -> dict:
    metrics: dict[str, object] = {}

    builds = {}
    for n in (50, 200, 400):
        fs = _flowset(n)
        builds[str(n)] = _time_ms(lambda: InterferenceGraph(fs))
    metrics["graph_build_ms"] = builds

    fs200 = _flowset(200)
    flows = list(fs200.flows)
    platform = fs200.platform
    metrics["analyse_set_ms"] = _time_ms(
        lambda: analyse_set(flows, platform, fig4_specs())
    )

    graph = InterferenceGraph(fs200)
    metrics["recurrence_ms"] = {
        "SB": _time_ms(lambda: analyze(fs200, SBAnalysis(), graph=graph)),
        "IBN": _time_ms(lambda: analyze(fs200, IBNAnalysis(), graph=graph)),
    }

    scale = get_scale("ci")
    metrics["fig4_ci_s"] = round(
        _timed(
            lambda: schedulability_sweep(
                (4, 4),
                scale.fig4a_flow_counts,
                scale.fig4_sets_per_point,
                seed=scale.seed,
            )
        ),
        3,
    )

    metrics["sim"] = _sim_metrics()
    metrics["campaign"] = _campaign_metrics()
    metrics["serve"] = _serve_metrics()
    metrics["batch"] = _batch_metrics(metrics["fig4_ci_s"])
    metrics["allocate"] = _allocate_metrics()
    metrics["backend"] = _backend_metrics()
    metrics["durability"] = _durability_metrics()
    metrics["chaos"] = _chaos_metrics()
    metrics["cluster"] = _cluster_metrics()
    return metrics


def _durability_metrics() -> dict:
    """Durable-tier costs (see ``bench_durability.py``).

    Shares the measurement code with the benchmark so the recorded
    numbers measure exactly what its zero-loss gates enforce.
    """
    from bench_durability import durability_metrics

    return durability_metrics()


def _cluster_metrics() -> dict:
    """Sharded-cluster throughput at smoke scale (see ``bench_serve.py``).

    Real forked front-ends and a real store daemon, but a small load —
    the recorded numbers track the serving tier's trajectory, while
    ``bench_serve.py``'s CLI exists for full-size (10k-client) runs.
    """
    from bench_serve import cluster_load_metrics

    return cluster_load_metrics(
        frontends=(1, 2), clients=8, requests=400, distinct=8
    )


def _chaos_metrics() -> dict:
    """Fault-injection suite outcome (see ``tools/chaos.py``).

    The in-process scenarios only — the CLI-subprocess and live-server
    ones cost tens of seconds and are ``make chaos-smoke``'s job; the
    recorded block just needs a trackable scenarios-passed floor plus
    the recovery counters.
    """
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
    from chaos import chaos_metrics

    block = chaos_metrics(
        ["poison_quarantine", "crash_recovery", "hang_timeout"]
    )
    scenarios = block.pop("scenarios")
    block["recovery_overhead_s"] = scenarios["hang_timeout"]["recovery_s"]
    return block


def _batch_metrics(fig4_ci_s: float) -> dict:
    """Columnar batch engine: batched vs scalar scenario throughput.

    Shares the measurement code with ``bench_batch.py`` so the recorded
    numbers measure exactly what that benchmark's gates enforce; the
    already-measured ci-scale Figure 4(a) time rides along in the
    block instead of being re-run.
    """
    from bench_batch import batch_metrics

    block = batch_metrics()
    block["sweep"]["fig4_ci_s"] = fig4_ci_s
    return block


def _allocate_metrics() -> dict:
    """Allocation-optimizer search throughput (see ``bench_allocate.py``).

    Shares the measurement code with the benchmark so the recorded
    numbers measure exactly what its pruning gates enforce.
    """
    from bench_allocate import allocate_metrics

    return allocate_metrics()


def _backend_metrics() -> dict:
    """Backend seam speedups (see ``bench_backend.py``).

    Shares the measurement code with the benchmark so the recorded
    numbers measure exactly what its ≥3x gates enforce.
    """
    from bench_backend import backend_metrics

    return backend_metrics()


def _serve_metrics() -> dict:
    """Analysis-service throughput: cold vs. warm requests/s.

    Shares the load generator with ``bench_serve.py`` so the recorded
    numbers measure exactly what that benchmark's gates enforce.
    """
    from bench_serve import serve_load_metrics

    return serve_load_metrics()


def _campaign_metrics() -> dict:
    """Campaign-engine throughput on the smoke spec (see Makefile)."""
    import tempfile

    from repro.campaigns.engine import run_campaign
    from repro.campaigns.spec import load_spec

    spec_path = (
        Path(__file__).resolve().parent.parent
        / "examples" / "specs" / "campaign_smoke.json"
    )
    spec = load_spec(spec_path)
    # Best of seven: the smoke spec finishes in tens of milliseconds,
    # where a single scheduler hiccup would swamp the jobs/s metric the
    # regression gate watches.
    cold_s, cold = timed(lambda: run_campaign(spec))
    for _ in range(6):
        again_s, cold = timed(lambda: run_campaign(spec))
        cold_s = min(cold_s, again_s)
    with tempfile.TemporaryDirectory() as run_dir:
        run_campaign(spec, store=run_dir)
        resume_s, resumed = timed(lambda: run_campaign(spec, store=run_dir))
    assert resumed.stats.jobs_run == 0, "resume replay executed jobs"
    return {
        "jobs": cold.stats.jobs_total,
        "run_s": round(cold_s, 3),
        "jobs_per_s": round(cold.stats.jobs_total / cold_s, 2),
        "resume_replay_s": round(resume_s, 3),
    }


def _sim_metrics() -> dict:
    """Fast-simulator wall clocks plus speedups over the frozen oracle.

    Scenarios are shared with ``bench_sim_hotpath.py`` via
    ``benchmarks/_common.py`` so the recorded speedups measure exactly
    what the benchmark gates enforce.
    """
    # Best-of-N wall clocks: both sides of each speedup are sub-second
    # to a-few-second runs on this (often single-core) recording host,
    # where one host-steal burst inside a single timed window would
    # read as a 30%+ "regression" of the ratio.
    def best_of(fn, repeats=3):
        results = [timed(fn) for _ in range(repeats)]
        return min(seconds for seconds, _ in results), results[0][1]

    sim: dict[str, float] = {}
    didactic = didactic_flowset(buf=2)
    fast_s, _ = best_of(
        lambda: offset_search(
            didactic,
            {"t1": DIDACTIC_GRID},
            release_horizon=DIDACTIC_HORIZON,
        )
    )
    sim["didactic_search_s"] = round(fast_s, 3)
    ref_s, _ = best_of(lambda: reference_didactic_search(didactic))
    sim["didactic_search_reference_s"] = round(ref_s, 3)
    sim["didactic_search_speedup"] = round(
        sim["didactic_search_reference_s"] / sim["didactic_search_s"], 2
    )

    mesh_fs, horizon = mesh8x8_scenario()
    fast = WormholeSimulator(mesh_fs, PeriodicReleases())
    fast_s, fast_result = best_of(lambda: fast.run(horizon))
    sim["mesh8x8_run_s"] = round(fast_s, 3)
    sim["mesh8x8_cycles_per_s"] = round(
        fast_result.end_time / sim["mesh8x8_run_s"]
    )
    ref_s, _ = best_of(
        lambda: ReferenceSimulator(mesh_fs, PeriodicReleases()).run(horizon),
        repeats=2,  # the slowest probe: two runs bound the cost
    )
    sim["mesh8x8_reference_s"] = round(ref_s, 3)
    sim["mesh8x8_speedup"] = round(
        sim["mesh8x8_reference_s"] / sim["mesh8x8_run_s"], 2
    )
    return sim


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv: list[str]) -> int:
    from repro.core.backend import get_backend

    label = argv[1] if len(argv) > 1 else "run"
    entry = {
        "label": label,
        "revision": git_revision(),
        "backend": get_backend().name,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "metrics": collect(),
    }
    history = []
    if TARGET.exists():
        history = json.loads(TARGET.read_text(encoding="utf-8"))
    history.append(entry)
    history = dedupe(history)
    TARGET.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(entry, indent=2))
    print(f"[appended to {TARGET}]")
    return 0


def dedupe(history: list) -> list:
    """Keep only the newest entry per (label, revision, backend).

    Repeated ``make bench-smoke`` runs on one revision used to pile up
    identical-looking ``smoke`` entries; the trajectory only needs the
    freshest numbers per revision, while entries from other revisions
    (the actual milestones) are never touched.  Runs recorded under
    different active backends (``repro --backend ...`` sessions) are
    distinct measurements and all survive.
    """
    def key(entry: dict):
        return entry.get("label"), entry.get("revision"), entry.get("backend")

    keep_from = {key(entry): index for index, entry in enumerate(history)}
    return [
        entry
        for index, entry in enumerate(history)
        if keep_from[key(entry)] == index
    ]


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
