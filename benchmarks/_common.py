"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures.  Because
pytest captures stdout, every artefact is also written to
``benchmark_results/<name>.txt`` (and ``.csv`` where applicable) so the
regenerated tables and curves survive the run; use ``pytest -s`` to watch
them live.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmark_results"


def emit(name: str, text: str) -> Path:
    """Print an artefact and persist it under benchmark_results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / f"{name}.txt"
    target.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {target}]")
    return target


def emit_csv(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / f"{name}.csv"
    target.write_text(text, encoding="utf-8")
    return target
