"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures.  Because
pytest captures stdout, every artefact is also written to
``benchmark_results/<name>.txt`` (and ``.csv`` where applicable) so the
regenerated tables and curves survive the run; use ``pytest -s`` to watch
them live.
"""

from __future__ import annotations

import time
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmark_results"

#: Seed every simulator benchmark scenario derives from.
SIM_SEED = 20180319
#: The τ1 phase grid of the didactic offset-search benchmarks.
DIDACTIC_GRID = range(0, 200, 20)
DIDACTIC_HORIZON = 6001


def timed(fn):
    """(elapsed_seconds, result) of one call."""
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def mesh_flowset(mesh, num_flows, clock_hz=1e5):
    """The shared synthetic mesh scenario of the simulator benchmarks."""
    from repro.noc.platform import NoCPlatform
    from repro.noc.topology import Mesh2D
    from repro.workloads.synthetic import SyntheticConfig, synthetic_flowset

    platform = NoCPlatform(Mesh2D(*mesh), buf=2)
    return synthetic_flowset(
        platform,
        SyntheticConfig(num_flows=num_flows, clock_hz=clock_hz),
        seed=SIM_SEED,
    )


def mesh8x8_scenario():
    """(flowset, horizon) of the single-large-mesh benchmark run."""
    flowset = mesh_flowset((8, 8), 30)
    return flowset, max(f.period for f in flowset.flows) // 4


def reference_didactic_search(flowset, grid=DIDACTIC_GRID,
                              horizon=DIDACTIC_HORIZON):
    """The frozen oracle swept over the didactic τ1 phases; per-flow maxima.

    The baseline both the speedup gate (bench_sim_hotpath) and the
    BENCH_engine.json recorder compare the fast search against — keep
    the scenario changes in one place.
    """
    from repro.sim._reference import ReferenceSimulator
    from repro.sim.traffic import PeriodicReleases

    worst = {}
    for phase in grid:
        run = ReferenceSimulator(
            flowset, PeriodicReleases(offsets={"t1": phase})
        ).run(horizon)
        for name, latency in run.observer.worst.items():
            worst[name] = max(worst.get(name, 0), latency)
    return worst


def emit(name: str, text: str) -> Path:
    """Print an artefact and persist it under benchmark_results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / f"{name}.txt"
    target.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {target}]")
    return target


def emit_csv(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / f"{name}.csv"
    target.write_text(text, encoding="utf-8")
    return target
