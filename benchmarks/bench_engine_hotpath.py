"""Microbenchmarks for the analysis kernel's hot path.

Covers the three layers the vectorized-kernel work targets, so future
changes have a trajectory to compare against (``BENCH_engine.json`` keeps
the recorded history — see ``benchmarks/record_engine_bench.py``):

* interference-graph construction (bitmask/incidence-matrix build) at
  several flow counts, plus the eager suffix table;
* the fixed-point engine: a full single-analysis pass and the per-flow
  recurrence with a shared graph;
* warm-started fixed points: the four-analysis Figure-4 verdict chain
  (shared graph + bisection + warm starts) against four cold runs.
"""

import pytest

from repro.core.analyses.ibn import IBNAnalysis
from repro.core.analyses.sb import SBAnalysis
from repro.core.analyses.xlwx import XLWXAnalysis
from repro.core.engine import analyze, compare, is_schedulable
from repro.core.interference import InterferenceGraph
from repro.experiments.schedulability_sweep import fig4_specs, spec_verdicts
from repro.noc.platform import NoCPlatform
from repro.noc.topology import Mesh2D
from repro.workloads.synthetic import SyntheticConfig, synthetic_flowset

SEED = 20180319


def _flowset(num_flows, mesh=(4, 4)):
    platform = NoCPlatform(Mesh2D(*mesh), buf=2)
    return synthetic_flowset(
        platform, SyntheticConfig(num_flows=num_flows), seed=SEED
    )


@pytest.fixture(scope="module")
def flowset200():
    return _flowset(200)


@pytest.fixture(scope="module")
def graph200(flowset200):
    return InterferenceGraph(flowset200)


@pytest.mark.parametrize("num_flows", [50, 200, 400])
def test_graph_build(benchmark, num_flows):
    """Construction cost of the contention geometry (the O(n²) layer)."""
    flowset = _flowset(num_flows)
    benchmark(lambda: InterferenceGraph(flowset))


def test_graph_build_8x8(benchmark):
    """Same on the sparser Figure 4(b) platform (more links, longer routes)."""
    flowset = _flowset(400, mesh=(8, 8))
    benchmark(lambda: InterferenceGraph(flowset))


@pytest.mark.parametrize(
    "analysis",
    [SBAnalysis(), XLWXAnalysis(), IBNAnalysis()],
    ids=lambda a: a.name,
)
def test_single_analysis_pass(benchmark, flowset200, graph200, analysis):
    """One cold analysis over 200 flows with a pre-built graph: isolates
    the term loops and the recurrence solver."""
    result = benchmark(lambda: analyze(flowset200, analysis, graph=graph200))
    assert result.complete


def test_recurrence_only(benchmark, flowset200, graph200):
    """Engine pass with all interference terms at zero cost (SB): the
    closest proxy for raw recurrence/fixed-point overhead."""
    result = benchmark(
        lambda: analyze(flowset200, SBAnalysis(), graph=graph200,
                        stop_at_deadline=False)
    )
    assert result.complete


def test_four_analyses_cold(benchmark, flowset200):
    """Baseline for the warm-start comparison: four independent runs over
    a freshly built graph (matching what compare() pays per call)."""

    def run():
        graph = InterferenceGraph(flowset200)
        for analysis in (SBAnalysis(), IBNAnalysis(), IBNAnalysis(),
                         XLWXAnalysis()):
            analyze(flowset200, analysis, graph=graph)

    benchmark(run)


def test_four_analyses_warm_chained(benchmark, flowset200):
    """compare(): same four analyses warm-started along the pointwise
    order (graph build included, as in a real campaign)."""
    analyses = [SBAnalysis(), IBNAnalysis(), IBNAnalysis(), XLWXAnalysis()]
    benchmark(lambda: compare(flowset200, analyses, stop_at_deadline=True))


def test_verdict_chain(benchmark, flowset200):
    """The sweep kernel: one full Figure-4 verdict (graph + bisected,
    warm-started chain over SB/XLWX/IBN2/IBN100)."""
    specs = fig4_specs()
    result = benchmark(lambda: spec_verdicts(flowset200, specs))
    assert set(result) == {spec.label for spec in specs}


def test_verdict_chain_all_cold(benchmark, flowset200):
    """Reference for test_verdict_chain: every spec decided independently."""
    specs = fig4_specs()

    def run():
        graph = InterferenceGraph(flowset200)
        platform = flowset200.platform
        verdicts = {}
        for spec in specs:
            if spec.buf is None or spec.buf == platform.buf:
                variant = flowset200
            else:
                variant = flowset200.on_platform(platform.with_buffers(spec.buf))
            verdicts[spec.label] = is_schedulable(
                variant, spec.analysis, graph=graph
            )
        return verdicts

    benchmark(run)
