"""Benchmark + regeneration of the paper's Tables I and II (Section V).

``test_table2_analysis`` checks the analysis columns against the paper's
published numbers **exactly**; ``test_table2_simulation`` regenerates the
simulation columns with the cycle-accurate simulator (worst observed
latency over a τ1 offset sweep) and checks the orderings the paper's
argument rests on.
"""

import pytest

from repro.experiments.didactic_table import PAPER_TABLE2, didactic_tables
from repro.experiments.scale import get_scale

from _common import emit

SCALE = get_scale()


def test_table2_analysis(benchmark):
    tables = benchmark.pedantic(
        lambda: didactic_tables(with_simulation=False),
        rounds=3,
        iterations=1,
    )
    for label in ("R_SB", "R_XLWX", "R_IBN_b10", "R_IBN_b2"):
        assert tables.table2[label] == PAPER_TABLE2[label], label
    emit("table2_analysis", tables.render())


def test_table2_simulation(benchmark):
    tables = benchmark.pedantic(
        lambda: didactic_tables(
            with_simulation=True,
            offset_step=SCALE.didactic_offset_step,
        ),
        rounds=1,
        iterations=1,
    )
    sim10 = tables.table2["R_sim_b10"]
    sim2 = tables.table2["R_sim_b2"]
    # The orderings the paper draws its conclusions from:
    assert sim10["t3"] > PAPER_TABLE2["R_SB"]["t3"]  # SB unsafe under MPB
    assert sim10["t3"] > sim2["t3"]  # deeper buffers, more MPB
    for name in ("t1", "t2", "t3"):
        assert sim2[name] <= tables.table2["R_IBN_b2"][name]
        assert sim10[name] <= tables.table2["R_IBN_b10"][name]
    emit("table2_full", tables.render())
