"""Batched analysis kernel: scenarios/s versus the scalar loop.

Measurements (shared with ``record_engine_bench.py``, which stores
them as the ``batch`` block of BENCH_engine.json):

* **kernel** — B ∈ {1, 32, 256} scenarios analysed by IBN under the
  sweep's settings (``early_exit=True``), batched versus a scalar
  :func:`~repro.core.engine.analyze` loop.  Both sides get pre-built
  interference graphs and start **cold**, exactly like a sweep
  touching fresh flow sets: the scalar engine pays its first-touch
  up/down-partition memo fills, the batch engine pays its per-graph
  structure build.  B = 1 is recorded honestly — the array assembly
  *loses* there, which is why the consumers fall back to the scalar
  engine for tiny rounds.
* **sweep** — a Figure-4-shaped schedulability sweep end to end (flow
  generation, graphs, bisected verdict chain): the campaign path
  (block executor + batched bisection) versus the pre-batch per-set
  ``spec_verdicts`` loop.  (``record_engine_bench`` copies its
  already-measured ``fig4_ci_s`` into the stored block rather than
  re-running the whole ci sweep here.)

The pytest gate enforces the ≥3x sweep-throughput claim on the
kernel's sweep-shaped workload (B = 256).

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch.py -q
"""

from __future__ import annotations

from repro.core.analyses.ibn import IBNAnalysis
from repro.core.batch import Scenario, analyze_batch
from repro.core.engine import analyze
from repro.core.interference import InterferenceGraph
from repro.experiments.schedulability_sweep import (
    fig4_specs,
    schedulability_sweep,
    spec_verdicts,
)
from repro.flows.flowset import FlowSet
from repro.noc.platform import NoCPlatform
from repro.noc.topology import Mesh2D
from repro.util.rng import spawn_rng
from repro.workloads.synthetic import SyntheticConfig, synthetic_flows

from _common import timed

SEED = 20180319

#: The end-to-end sweep comparison: one load point heavy enough that
#: the verdict chain does real work, with enough sets to fill a block.
SWEEP_POINT = 200
SWEEP_SETS = 32


def _flowsets(count: int, num_flows: int) -> list[FlowSet]:
    platform = NoCPlatform(Mesh2D(4, 4), buf=2)
    out = []
    for index in range(count):
        rng = spawn_rng(SEED, "bench-batch", num_flows, index)
        flows = synthetic_flows(
            SyntheticConfig(num_flows=num_flows),
            platform.topology.num_nodes,
            rng,
        )
        out.append(FlowSet(platform, flows))
    return out


def _fresh_graphs(flowsets) -> list[InterferenceGraph]:
    """New graph objects: cold memo tables on either engine's side."""
    return [InterferenceGraph(flowset) for flowset in flowsets]


def _timed_cold(fn, reps: int = 2) -> tuple[float, float]:
    """(best wall seconds, best CPU seconds) over cold repetitions.

    ``fn`` receives a repetition index and must rebuild whatever state
    keeps the run cold (fresh graphs).  The CPU-time minimum is what
    the gates compare: on a busy single-core host, wall clock measures
    the neighbours, process time measures the code.
    """
    import time

    walls, cpus = [], []
    for rep in range(reps):
        w0, c0 = time.perf_counter(), time.process_time()
        fn(rep)
        walls.append(time.perf_counter() - w0)
        cpus.append(time.process_time() - c0)
    return min(walls), min(cpus)


def batch_kernel_metrics(
    sizes: tuple[int, ...] = (1, 32, 256), num_flows: int = 96
) -> dict:
    """Cold-start batched vs scalar analysis throughput per batch size."""
    analysis = IBNAnalysis()
    rows = []
    for size in sizes:
        flowsets = _flowsets(size, num_flows)
        pools = {
            (side, rep): _fresh_graphs(flowsets)
            for side in ("scalar", "batch")
            for rep in range(2)
        }

        def scalar_loop(rep: int) -> None:
            for flowset, graph in zip(flowsets, pools[("scalar", rep)]):
                analyze(flowset, analysis, graph=graph, early_exit=True)

        def batch_run(rep: int) -> None:
            analyze_batch(
                [
                    Scenario(flowset, analysis, graph=graph)
                    for flowset, graph in zip(
                        flowsets, pools[("batch", rep)]
                    )
                ],
                early_exit=True,
            )

        scalar_s, scalar_cpu = _timed_cold(scalar_loop)
        batch_s, batch_cpu = _timed_cold(batch_run)
        rows.append({
            "B": size,
            "batch_s": round(batch_s, 4),
            "scalar_s": round(scalar_s, 4),
            "batch_cpu_s": round(batch_cpu, 4),
            "scalar_cpu_s": round(scalar_cpu, 4),
            "batch_scenarios_per_s": round(size / batch_s, 1),
            "scalar_scenarios_per_s": round(size / scalar_s, 1),
            "speedup": round(scalar_s / batch_s, 2),
            "cpu_speedup": round(scalar_cpu / batch_cpu, 2),
        })
    return {"num_flows": num_flows, "sizes": rows}


def sweep_throughput_metrics() -> dict:
    """Figure-4-shaped sweep: batched campaign path vs scalar loop."""
    batched_s, _ = timed(
        lambda: schedulability_sweep(
            (4, 4), [SWEEP_POINT], SWEEP_SETS, seed=SEED
        )
    )

    def scalar_sweep() -> None:
        platform = NoCPlatform(Mesh2D(4, 4), buf=2)
        specs = fig4_specs()
        config = SyntheticConfig(num_flows=SWEEP_POINT)
        for set_index in range(SWEEP_SETS):
            rng = spawn_rng(SEED, "synthetic", SWEEP_POINT, set_index)
            flows = synthetic_flows(
                config, platform.topology.num_nodes, rng
            )
            spec_verdicts(FlowSet(platform, flows), specs)

    scalar_s, _ = timed(scalar_sweep)
    return {
        "num_flows": SWEEP_POINT,
        "sets": SWEEP_SETS,
        "batched_s": round(batched_s, 3),
        "scalar_s": round(scalar_s, 3),
        "batched_scenarios_per_s": round(SWEEP_SETS / batched_s, 1),
        "scalar_scenarios_per_s": round(SWEEP_SETS / scalar_s, 1),
        "speedup": round(scalar_s / batched_s, 2),
    }


def batch_metrics() -> dict:
    """The ``batch`` block recorded in BENCH_engine.json."""
    return {
        "kernel": batch_kernel_metrics(),
        "sweep": sweep_throughput_metrics(),
    }


def test_batch_equivalence():
    """Batched results must match the scalar oracle field for field."""
    analysis = IBNAnalysis()
    flowsets = _flowsets(48, 96)
    scenarios = [
        Scenario(flowset, analysis, graph=graph)
        for flowset, graph in zip(flowsets, _fresh_graphs(flowsets))
    ]
    batch = analyze_batch(scenarios, early_exit=True)
    for flowset, result in zip(flowsets, batch):
        cold = analyze(flowset, analysis, early_exit=True)
        assert result.flows == cold.flows
        assert result.complete == cold.complete


def test_sweep_throughput_gate():
    """The batched kernel must sustain ≥3x the scalar loop's
    sweep-shaped scenario throughput at production batch sizes.

    Gated on process CPU time so neighbours on a shared host cannot
    flake the build; the wall-clock numbers are recorded alongside.
    """
    metrics = batch_kernel_metrics(sizes=(256,))
    assert metrics["sizes"][0]["cpu_speedup"] >= 3.0, metrics


def test_sweep_end_to_end_improves():
    """End to end — generation, graphs, bisection and all — the
    batched campaign path must clearly beat the per-set loop."""
    metrics = sweep_throughput_metrics()
    assert metrics["speedup"] >= 1.5, metrics
