"""Ablation: routing sensitivity (XY vs YX dimension order).

Not a paper artefact.  Same synthetic traffic, two minimal dimension-order
routings: zero-load latencies are identical, so any verdict difference is
a contention-placement effect.  Checked shape: per routing, the safe-
analysis ordering IBN >= XLWX still holds pointwise, and both routings
certify everything at the lightest load.
"""

from repro.experiments.report import render_sweep, sweep_csv
from repro.experiments.routing_study import routing_comparison
from repro.experiments.scale import get_scale

from _common import emit, emit_csv

SCALE = get_scale()


def test_routing_sensitivity(benchmark):
    counts = SCALE.fig4a_flow_counts[: max(3, len(SCALE.fig4a_flow_counts) // 2)]
    result = benchmark.pedantic(
        lambda: routing_comparison(
            (4, 4), counts, SCALE.fig4_sets_per_point, seed=SCALE.seed
        ),
        rounds=1,
        iterations=1,
    )
    for routing in ("XY", "YX"):
        for i in range(len(result.x_values)):
            assert (
                result.series[f"IBN-{routing}"][i]
                >= result.series[f"XLWX-{routing}"][i]
            )
        assert result.series[f"IBN-{routing}"][0] == 100.0
    text = render_sweep(
        result,
        title=f"Routing sensitivity on 4x4 (scale={SCALE.name})",
    )
    emit("routing_sensitivity", text)
    emit_csv("routing_sensitivity", sweep_csv(result))
